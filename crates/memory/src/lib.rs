//! # amped-memory — per-device memory footprint model
//!
//! The AMPeD paper adjusts batch sizes “to fit into the GPU memory” during
//! validation and names a comprehensive memory model as future work. This
//! crate implements that model: per-accelerator bytes for weights,
//! gradients, optimizer states and activations under any
//! tensor/pipeline/data-parallel mapping, ZeRO stage and pipeline schedule,
//! plus a solver for the largest microbatch that fits.
//!
//! Activation sizing follows the standard Megatron-LM accounting
//! (`s·b·h·(34 + 5·a·s/h)` bytes per layer per microbatch at 2-byte
//! activations), generalized to arbitrary activation widths.
//!
//! # Example
//!
//! ```
//! use amped_core::{Parallelism, Precision, TransformerModel};
//! use amped_memory::{MemoryModel, OptimizerSpec, PipelineSchedule};
//!
//! # fn main() -> Result<(), amped_core::Error> {
//! let model = TransformerModel::builder("gpt-1.3b")
//!     .layers(24).hidden_size(2048).heads(16).seq_len(1024).vocab_size(50257)
//!     .build()?;
//! let mapping = Parallelism::builder().tp(2, 1).pp(4, 1).build()?;
//! let mem = MemoryModel::new(&model, &mapping)
//!     .with_optimizer(OptimizerSpec::adam_mixed_precision())
//!     .with_schedule(PipelineSchedule::OneFOneB);
//! let fp = mem.footprint(8.0, 4);
//! assert!(fp.total() > 0.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod kv;

pub use kv::{KvCacheModel, KvCapacityFailure, KvFootprint, ServeBatchFit};

use amped_core::{Parallelism, Precision, TransformerModel, ZeroStage};
use serde::{Deserialize, Serialize};

/// Optimizer state size per parameter, in bytes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OptimizerSpec {
    name: String,
    state_bytes_per_param: f64,
}

impl OptimizerSpec {
    /// An optimizer carrying `state_bytes_per_param` bytes of state per
    /// parameter.
    pub fn new(name: impl Into<String>, state_bytes_per_param: f64) -> Self {
        OptimizerSpec {
            name: name.into(),
            state_bytes_per_param: state_bytes_per_param.max(0.0),
        }
    }

    /// Mixed-precision Adam: fp32 master weights + first and second moments
    /// = 12 bytes of state per parameter.
    pub fn adam_mixed_precision() -> Self {
        Self::new("adam-mixed", 12.0)
    }

    /// Plain SGD with momentum: one fp32 buffer.
    pub fn sgd_momentum() -> Self {
        Self::new("sgd-momentum", 4.0)
    }

    /// Stateless SGD.
    pub fn sgd() -> Self {
        Self::new("sgd", 0.0)
    }

    /// Optimizer name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Bytes of optimizer state per parameter.
    pub fn state_bytes_per_param(&self) -> f64 {
        self.state_bytes_per_param
    }
}

impl Default for OptimizerSpec {
    fn default() -> Self {
        Self::adam_mixed_precision()
    }
}

/// Which activations are kept for the backward pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[derive(Default)]
pub enum RecomputePolicy {
    /// Store every intermediate (fastest, most memory).
    #[default]
    None,
    /// Megatron-style *selective* recomputation: the attention score and
    /// softmax tensors (the `5·a·s/h` term, which dominates at long
    /// sequences) are recomputed; linear-layer inputs are kept.
    Selective,
    /// Full recomputation: keep only the stage-boundary tensor per
    /// microbatch plus one layer's working set, recompute the rest.
    Full,
}


/// Which pipeline schedule holds activations in flight.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[derive(Default)]
pub enum PipelineSchedule {
    /// GPipe: all forward microbatches before any backward — every stage
    /// holds activations for all `N_ub` microbatches at the peak.
    GPipe,
    /// 1F1B: at most `N_PP` microbatches in flight per stage.
    #[default]
    OneFOneB,
}


/// Per-device memory footprint in bytes.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct MemoryFootprint {
    /// Model weights resident on the device.
    pub weights: f64,
    /// Gradient buffers.
    pub gradients: f64,
    /// Optimizer state.
    pub optimizer: f64,
    /// Peak activation storage.
    pub activations: f64,
}

impl MemoryFootprint {
    /// Total bytes.
    pub fn total(&self) -> f64 {
        self.weights + self.gradients + self.optimizer + self.activations
    }

    /// Bytes a checkpoint of this device's state must persist: weights plus
    /// optimizer state. Gradients and activations are transient and are not
    /// part of a restartable snapshot.
    pub fn checkpoint_bytes(&self) -> f64 {
        self.weights + self.optimizer
    }

    /// Which term first pushes this footprint past `capacity_bytes`,
    /// walking the same left-to-right accumulation as
    /// [`MemoryFootprint::total`]. Only meaningful when the total exceeds
    /// the capacity; an oversized footprint always blames exactly one term.
    pub fn capacity_failure(&self, capacity_bytes: f64) -> CapacityFailure {
        if self.weights > capacity_bytes {
            CapacityFailure::Weights
        } else if self.weights + self.gradients > capacity_bytes {
            CapacityFailure::Gradients
        } else if self.weights + self.gradients + self.optimizer > capacity_bytes {
            CapacityFailure::Optimizer
        } else {
            CapacityFailure::Activations
        }
    }
}

/// Which capacity inequality failed when a mapping fits under no
/// microbatch size, in the order the terms of
/// [`MemoryFootprint::total`] accumulate: a device that cannot even hold
/// the weights is reported as `Weights`, not `Activations`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CapacityFailure {
    /// Resident weights alone exceed the device capacity.
    Weights,
    /// Weights fit, but weights + gradient buffers do not.
    Gradients,
    /// Weights + gradients fit, but adding optimizer state does not.
    Optimizer,
    /// Static state fits; peak activations overflow even at the smallest
    /// microbatch.
    Activations,
}

impl CapacityFailure {
    /// Stable lowercase name, matching the JSON artifact field.
    pub fn name(&self) -> &'static str {
        match self {
            CapacityFailure::Weights => "weights",
            CapacityFailure::Gradients => "gradients",
            CapacityFailure::Optimizer => "optimizer",
            CapacityFailure::Activations => "activations",
        }
    }
}

impl std::fmt::Display for CapacityFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The largest feasible power-of-two microbatch point on the trial
/// ladder, as found by [`MemoryModel::solve_max_microbatch`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MicrobatchFit {
    /// Index on the power-of-two ladder: the trial size is `2^ladder_index`.
    pub ladder_index: u32,
    /// The trial microbatch size, `2^ladder_index` samples.
    pub trial_microbatch: usize,
    /// Microbatches per minibatch at that size:
    /// `ceil(replica / trial_microbatch)`.
    pub num_microbatches: usize,
}

impl std::fmt::Display for MemoryFootprint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        use amped_core::units::format_bytes;
        write!(
            f,
            "weights {} + grads {} + optimizer {} + activations {} = {}",
            format_bytes(self.weights),
            format_bytes(self.gradients),
            format_bytes(self.optimizer),
            format_bytes(self.activations),
            format_bytes(self.total())
        )
    }
}

/// The per-device memory model.
#[derive(Debug, Clone)]
pub struct MemoryModel<'a> {
    model: &'a TransformerModel,
    parallelism: &'a Parallelism,
    // `TransformerModel::total_parameters` walks the layer stack; the
    // footprint needs it on every call, so it is computed once here.
    total_params: f64,
    precision: Precision,
    optimizer: OptimizerSpec,
    schedule: PipelineSchedule,
    recompute: RecomputePolicy,
}

impl<'a> MemoryModel<'a> {
    /// A memory model for `model` under `parallelism`, with default fp16
    /// precision, mixed-precision Adam and the 1F1B schedule.
    pub fn new(model: &'a TransformerModel, parallelism: &'a Parallelism) -> Self {
        MemoryModel {
            model,
            parallelism,
            total_params: model.total_parameters(),
            precision: Precision::default(),
            optimizer: OptimizerSpec::default(),
            schedule: PipelineSchedule::default(),
            recompute: RecomputePolicy::None,
        }
    }

    /// Override the precision.
    pub fn with_precision(mut self, precision: Precision) -> Self {
        self.precision = precision;
        self
    }

    /// Override the optimizer.
    pub fn with_optimizer(mut self, optimizer: OptimizerSpec) -> Self {
        self.optimizer = optimizer;
        self
    }

    /// Override the pipeline schedule.
    pub fn with_schedule(mut self, schedule: PipelineSchedule) -> Self {
        self.schedule = schedule;
        self
    }

    /// Enable full activation recomputation (store only stage-boundary
    /// activations plus one layer's working set). Shorthand for
    /// [`MemoryModel::with_recompute`] with [`RecomputePolicy::Full`].
    pub fn with_activation_recompute(mut self, yes: bool) -> Self {
        self.recompute = if yes {
            RecomputePolicy::Full
        } else {
            RecomputePolicy::None
        };
        self
    }

    /// Choose the recomputation policy.
    pub fn with_recompute(mut self, policy: RecomputePolicy) -> Self {
        self.recompute = policy;
        self
    }

    /// Parameters resident per device: the model sharded over TP × PP
    /// (ZeRO-3 additionally shards over DP).
    pub fn params_per_device(&self) -> f64 {
        let p = self.parallelism;
        let shard = self.total_params / (p.tp() as f64 * p.pp() as f64);
        match p.zero().stage {
            ZeroStage::Parameters => shard / p.dp() as f64,
            _ => shard,
        }
    }

    /// Microbatches a stage holds activations for at its peak.
    pub fn microbatches_in_flight(&self, num_microbatches: usize) -> usize {
        match self.schedule {
            PipelineSchedule::GPipe => num_microbatches,
            PipelineSchedule::OneFOneB => num_microbatches.min(self.parallelism.pp()),
        }
    }

    /// Activation elements stored per layer for one microbatch of `ub`
    /// samples: `s·ub·h·(17 + 2.5·a·s/h)` elements (the Megatron formula at
    /// element granularity); selective recomputation drops the quadratic
    /// attention term, full recomputation is handled in
    /// [`MemoryModel::footprint`].
    pub fn activation_elems_per_layer(&self, ub: f64) -> f64 {
        let s = self.model.seq_len() as f64;
        let h = self.model.hidden_size() as f64;
        let a = self.model.num_heads() as f64;
        match self.recompute {
            RecomputePolicy::Selective => s * ub * h * 17.0,
            _ => s * ub * h * (17.0 + 2.5 * a * s / h),
        }
    }

    /// Full per-device footprint for microbatch size `ub` and
    /// `num_microbatches` microbatches per minibatch.
    pub fn footprint(&self, ub: f64, num_microbatches: usize) -> MemoryFootprint {
        let p = self.parallelism;
        let dp = p.dp() as f64;
        let params = self.params_per_device();
        let params_unsharded = self.total_params / (p.tp() as f64 * p.pp() as f64);

        let weights = params * self.precision.param_bits as f64 / 8.0;

        let grad_params = match p.zero().stage {
            ZeroStage::Gradients | ZeroStage::Parameters => params_unsharded / dp,
            _ => params_unsharded,
        };
        let gradients = grad_params * self.precision.grad_bits as f64 / 8.0;

        let opt_params = match p.zero().stage {
            ZeroStage::None => params_unsharded,
            _ => params_unsharded / dp,
        };
        let optimizer = opt_params * self.optimizer.state_bytes_per_param;

        let layers_per_stage =
            (self.model.num_layers() as f64 / p.pp() as f64).ceil().max(1.0);
        let act_bytes_per_elem = self.precision.act_bits as f64 / 8.0;
        let in_flight = self.microbatches_in_flight(num_microbatches) as f64;
        let tp = p.tp() as f64;
        let per_layer = if self.recompute == RecomputePolicy::Full {
            // Boundary tensor per microbatch; one layer's full working set
            // is amortized across the stage (added below).
            self.model.seq_len() as f64 * ub * self.model.hidden_size() as f64
        } else {
            self.activation_elems_per_layer(ub)
        };
        let mut activations =
            per_layer * layers_per_stage * in_flight * act_bytes_per_elem / tp;
        if self.recompute == RecomputePolicy::Full {
            activations += self.activation_elems_per_layer(ub) * act_bytes_per_elem / tp;
        }

        MemoryFootprint {
            weights,
            gradients,
            optimizer,
            activations,
        }
    }

    /// Per-pipeline-stage footprints, exposing the asymmetry the uniform
    /// [`MemoryModel::footprint`] averages away: stages split the layer
    /// stack contiguously (sizes differing by at most one layer), and with
    /// `gather_on_last_stage` the final stage additionally buffers every
    /// microbatch's output tensor — the torchgpipe behaviour that caps the
    /// paper's Fig. 2b scaling at 8 GPUs.
    pub fn stage_footprints(
        &self,
        ub: f64,
        num_microbatches: usize,
        gather_on_last_stage: bool,
    ) -> Vec<MemoryFootprint> {
        let p = self.parallelism;
        let pp = p.pp();
        let stack_len = self.model.layer_stack().len();
        let base = stack_len / pp;
        let extra = stack_len % pp;
        let uniform = self.footprint(ub, num_microbatches);
        let mean_layers = stack_len as f64 / pp as f64;
        let mut out = Vec::with_capacity(pp);
        for s in 0..pp {
            let layers = (base + usize::from(s < extra)) as f64;
            let scale = layers / mean_layers;
            let mut fp = MemoryFootprint {
                weights: uniform.weights * scale,
                gradients: uniform.gradients * scale,
                optimizer: uniform.optimizer * scale,
                activations: uniform.activations * scale,
            };
            if gather_on_last_stage && s + 1 == pp {
                // The gathered outputs: one boundary tensor per microbatch.
                let elems = self.model.seq_len() as f64
                    * ub
                    * self.model.hidden_size() as f64
                    * num_microbatches as f64;
                fp.activations += elems * self.precision.act_bits as f64 / 8.0;
            }
            out.push(fp);
        }
        out
    }

    /// Whether the footprint at (`ub`, `num_microbatches`) fits a device
    /// with `capacity_bytes` of memory.
    pub fn fits(&self, ub: f64, num_microbatches: usize, capacity_bytes: f64) -> bool {
        self.footprint(ub, num_microbatches).total() <= capacity_bytes
    }

    /// The largest integral microbatch size that fits in `capacity_bytes`,
    /// or `None` if even `ub = 1` does not fit. `num_microbatches` is held
    /// fixed (the caller decides the schedule).
    pub fn max_microbatch(
        &self,
        num_microbatches: usize,
        capacity_bytes: f64,
        upper_bound: usize,
    ) -> Option<usize> {
        if !self.fits(1.0, num_microbatches, capacity_bytes) {
            return None;
        }
        let (mut lo, mut hi) = (1usize, upper_bound.max(1));
        while lo < hi {
            let mid = lo + (hi - lo).div_ceil(2);
            if self.fits(mid as f64, num_microbatches, capacity_bytes) {
                lo = mid;
            } else {
                hi = mid - 1;
            }
        }
        Some(lo)
    }

    /// The largest feasible point on the power-of-two microbatch trial
    /// ladder, solved in closed form from the capacity inequality instead
    /// of trial-evaluating the footprint at every rung.
    ///
    /// The ladder is the one the search tuner walks: trial sizes
    /// `1, 2, 4, … ≤ replica`, each pricing `ceil(replica / trial)`
    /// microbatches of `replica_batch / n_ub` samples. Static bytes
    /// (weights, gradients, optimizer state) do not depend on the rung, and
    /// peak activation bytes are `ub · (α · in_flight + β)` for
    /// schedule-dependent constants, so the minimum feasible microbatch
    /// count — and from it the ladder index — falls out of the inequality
    /// directly. The closed-form index is then confirmed against the exact
    /// [`MemoryModel::fits`] predicate (an O(1) walk when the algebra and
    /// the float evaluation agree, which is always in practice), so the
    /// result is *bit-identical* to the brute-force trial loop whenever the
    /// ladder's feasibility flags form a monotone prefix — which they do,
    /// because activation memory is monotone in the microbatch size.
    ///
    /// Returns `Err` with the failing capacity inequality when even the
    /// smallest rung (`trial = 1`, the most feasible point) overflows.
    pub fn solve_max_microbatch(
        &self,
        replica: usize,
        replica_batch: f64,
        capacity_bytes: f64,
    ) -> std::result::Result<MicrobatchFit, CapacityFailure> {
        let replica = replica.max(1);
        let rungs = replica.ilog2() + 1;
        let point = |k: u32| {
            let n_ub = replica.div_ceil(1usize << k);
            (replica_batch / n_ub as f64, n_ub)
        };
        let fits_at = |k: u32| {
            let (ub, n_ub) = point(k);
            self.fits(ub, n_ub, capacity_bytes)
        };

        let mut k = self
            .closed_form_rung(replica, replica_batch, capacity_bytes)
            .min(rungs - 1);
        // Confirm the algebraic guess against the exact footprint: walk
        // down while infeasible, then up while the next rung still fits.
        while !fits_at(k) {
            if k == 0 {
                let (ub, n_ub) = point(0);
                return Err(self.footprint(ub, n_ub).capacity_failure(capacity_bytes));
            }
            k -= 1;
        }
        while k + 1 < rungs && fits_at(k + 1) {
            k += 1;
        }
        Ok(MicrobatchFit {
            ladder_index: k,
            trial_microbatch: 1usize << k,
            num_microbatches: replica.div_ceil(1usize << k),
        })
    }

    /// The algebraic ladder-index guess behind
    /// [`MemoryModel::solve_max_microbatch`]: activation bytes at a rung
    /// with `n_ub` microbatches of `ub = replica_batch / n_ub` samples are
    /// `ub · (α · in_flight(n_ub) + β)` where `α` covers the per-layer
    /// stored tensors and `β` the full-recompute working set, so the
    /// minimum feasible `n_ub` solves the capacity inequality directly.
    fn closed_form_rung(&self, replica: usize, replica_batch: f64, capacity_bytes: f64) -> u32 {
        let static_bytes = self.footprint(0.0, 1).total();
        let budget = capacity_bytes - static_bytes;
        if budget <= 0.0 {
            return 0;
        }
        let layers_per_stage =
            (self.model.num_layers() as f64 / self.parallelism.pp() as f64).ceil().max(1.0);
        let act_bytes_per_elem = self.precision.act_bits as f64 / 8.0;
        let tp = self.parallelism.tp() as f64;
        let (alpha, beta) = if self.recompute == RecomputePolicy::Full {
            let boundary = self.model.seq_len() as f64 * self.model.hidden_size() as f64;
            (
                boundary * layers_per_stage * act_bytes_per_elem / tp,
                self.activation_elems_per_layer(1.0) * act_bytes_per_elem / tp,
            )
        } else {
            (
                self.activation_elems_per_layer(1.0) * layers_per_stage * act_bytes_per_elem
                    / tp,
                0.0,
            )
        };
        let rb = replica_batch;
        // Minimum real-valued n_ub with activations ≤ budget; the in-flight
        // count saturates at pp under 1F1B, making activations flat in the
        // deep regime under GPipe-like accounting.
        let shallow = || {
            // in_flight = n_ub: activations = rb·α + rb·β / n_ub.
            if budget > rb * alpha {
                if beta > 0.0 {
                    (rb * beta / (budget - rb * alpha)).max(1.0)
                } else {
                    1.0
                }
            } else {
                f64::INFINITY
            }
        };
        let n_req = match self.schedule {
            PipelineSchedule::GPipe => shallow(),
            PipelineSchedule::OneFOneB => {
                let pp = self.parallelism.pp() as f64;
                // Deep regime n_ub ≥ pp: activations = rb·(α·pp + β) / n_ub.
                let deep = rb * (alpha * pp + beta) / budget;
                if deep >= pp {
                    deep
                } else {
                    shallow()
                }
            }
        };
        if !n_req.is_finite() || n_req <= 1.0 {
            return if n_req.is_finite() { replica.ilog2() } else { 0 };
        }
        // Largest k with ceil(replica / 2^k) ≥ n_req.
        let ratio = replica as f64 / n_req;
        if ratio < 1.0 {
            0
        } else {
            (ratio.log2().floor() as u32).min(replica.ilog2())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amped_core::ZeroConfig;

    fn model() -> TransformerModel {
        TransformerModel::builder("gpt-1.3b")
            .layers(24)
            .hidden_size(2048)
            .heads(16)
            .seq_len(1024)
            .vocab_size(50257)
            .build()
            .unwrap()
    }

    #[test]
    fn single_device_holds_everything() {
        let m = model();
        let p = Parallelism::single();
        let mem = MemoryModel::new(&m, &p);
        let fp = mem.footprint(1.0, 1);
        // ~1.4B params at 2 bytes ~ 2.9 GB weights.
        assert!(fp.weights > 2e9 && fp.weights < 4e9, "weights = {}", fp.weights);
        // Adam states at 12 B/param dominate.
        assert!(fp.optimizer > 5.0 * fp.weights);
    }

    #[test]
    fn tp_pp_shard_weights() {
        let m = model();
        let p1 = Parallelism::single();
        let p8 = Parallelism::builder().tp(2, 1).pp(4, 1).build().unwrap();
        let f1 = MemoryModel::new(&m, &p1).footprint(1.0, 1);
        let f8 = MemoryModel::new(&m, &p8).footprint(1.0, 1);
        assert!((f1.weights / f8.weights - 8.0).abs() < 1e-9);
    }

    #[test]
    fn zero_stages_shard_progressively() {
        let m = model();
        let make = |stage| {
            Parallelism::builder()
                .dp(8, 1)
                .zero(ZeroConfig::stage(stage, 0.0))
                .build()
                .unwrap()
        };
        let p0 = make(ZeroStage::None);
        let p1 = make(ZeroStage::OptimizerStates);
        let p2 = make(ZeroStage::Gradients);
        let p3 = make(ZeroStage::Parameters);
        let f =
            |p: &Parallelism| MemoryModel::new(&m, p).footprint(1.0, 1);
        let (f0, f1v, f2, f3) = (f(&p0), f(&p1), f(&p2), f(&p3));
        assert!(f1v.optimizer < f0.optimizer);
        assert_eq!(f1v.gradients, f0.gradients);
        assert!(f2.gradients < f1v.gradients);
        assert!(f3.weights < f2.weights);
        assert!(f3.total() < f2.total() && f2.total() < f1v.total() && f1v.total() < f0.total());
    }

    #[test]
    fn gpipe_holds_more_activations_than_1f1b() {
        let m = model();
        let p = Parallelism::builder().pp(4, 1).build().unwrap();
        let gpipe = MemoryModel::new(&m, &p).with_schedule(PipelineSchedule::GPipe);
        let ofob = MemoryModel::new(&m, &p).with_schedule(PipelineSchedule::OneFOneB);
        let fg = gpipe.footprint(2.0, 32);
        let fo = ofob.footprint(2.0, 32);
        assert!((fg.activations / fo.activations - 8.0).abs() < 1e-9); // 32 vs 4 in flight
    }

    #[test]
    fn recompute_slashes_activation_memory() {
        let m = model();
        let p = Parallelism::builder().pp(4, 1).build().unwrap();
        let plain = MemoryModel::new(&m, &p).footprint(4.0, 16);
        let rc = MemoryModel::new(&m, &p)
            .with_activation_recompute(true)
            .footprint(4.0, 16);
        assert!(rc.activations < 0.2 * plain.activations);
    }

    #[test]
    fn selective_recompute_sits_between_none_and_full() {
        let m = model();
        let p = Parallelism::builder().pp(4, 1).build().unwrap();
        let act = |policy| {
            MemoryModel::new(&m, &p)
                .with_recompute(policy)
                .footprint(4.0, 16)
                .activations
        };
        let none = act(RecomputePolicy::None);
        let selective = act(RecomputePolicy::Selective);
        let full = act(RecomputePolicy::Full);
        assert!(full < selective && selective < none);
        // Selective drops exactly the quadratic attention term.
        let s = 1024.0_f64;
        let h = 2048.0_f64;
        let a = 16.0_f64;
        let expected_ratio = 17.0 / (17.0 + 2.5 * a * s / h);
        assert!((selective / none - expected_ratio).abs() < 1e-9);
    }

    #[test]
    fn activations_grow_linearly_with_microbatch() {
        let m = model();
        let p = Parallelism::single();
        let mem = MemoryModel::new(&m, &p);
        let a1 = mem.footprint(1.0, 1).activations;
        let a4 = mem.footprint(4.0, 1).activations;
        assert!((a4 / a1 - 4.0).abs() < 1e-9);
    }

    #[test]
    fn max_microbatch_solver() {
        let m = model();
        let p = Parallelism::builder().tp(2, 1).pp(4, 1).build().unwrap();
        let mem = MemoryModel::new(&m, &p).with_optimizer(OptimizerSpec::sgd());
        let cap = 32e9; // a V100-class device
        let best = mem.max_microbatch(4, cap, 4096).unwrap();
        assert!(best >= 1);
        assert!(mem.fits(best as f64, 4, cap));
        assert!(!mem.fits((best + 1) as f64, 4, cap));
        // An impossible capacity yields None.
        assert_eq!(mem.max_microbatch(4, 1e6, 4096), None);
    }

    /// The reference the closed-form solve must reproduce: walk every rung
    /// of the power-of-two trial ladder and keep the last one that fits.
    fn brute_force_ladder(
        mem: &MemoryModel,
        replica: usize,
        replica_batch: f64,
        cap: f64,
    ) -> Option<u32> {
        let mut best = None;
        for k in 0..=replica.max(1).ilog2() {
            let n_ub = replica.max(1).div_ceil(1 << k);
            if mem.fits(replica_batch / n_ub as f64, n_ub, cap) {
                best = Some(k);
            }
        }
        best
    }

    #[test]
    fn closed_form_solve_matches_trial_ladder() {
        let m = model();
        let p = Parallelism::builder().tp(2, 1).pp(4, 1).dp(2, 1).build().unwrap();
        for schedule in [PipelineSchedule::GPipe, PipelineSchedule::OneFOneB] {
            for recompute in
                [RecomputePolicy::None, RecomputePolicy::Selective, RecomputePolicy::Full]
            {
                for cap in [16e9, 32e9, 80e9, 640e9] {
                    let mem = MemoryModel::new(&m, &p)
                        .with_schedule(schedule)
                        .with_recompute(recompute)
                        .with_optimizer(OptimizerSpec::sgd());
                    let replica = 256usize;
                    let rb = 256.0;
                    let expect = brute_force_ladder(&mem, replica, rb, cap);
                    match mem.solve_max_microbatch(replica, rb, cap) {
                        Ok(fit) => {
                            assert_eq!(Some(fit.ladder_index), expect);
                            assert_eq!(fit.trial_microbatch, 1 << fit.ladder_index);
                            assert_eq!(
                                fit.num_microbatches,
                                replica.div_ceil(fit.trial_microbatch)
                            );
                        }
                        Err(_) => assert_eq!(expect, None, "{schedule:?}/{recompute:?}/{cap}"),
                    }
                }
            }
        }
    }

    #[test]
    fn infeasible_solve_names_the_failing_inequality() {
        let m = model();
        let p = Parallelism::single();
        let mem = MemoryModel::new(&m, &p);
        // Static terms from the model itself, so the thresholds stay robust
        // to parameter-count accounting changes.
        let fp = mem.footprint(0.0, 1);
        let cases = [
            (fp.weights * 0.5, CapacityFailure::Weights),
            (fp.weights + 0.5 * fp.gradients, CapacityFailure::Gradients),
            (
                fp.weights + fp.gradients + 0.5 * fp.optimizer,
                CapacityFailure::Optimizer,
            ),
            // ~1 GB of activation headroom < the ~3.7 GB a single ub = 1
            // microbatch stores on this model.
            (fp.total() + 1e9, CapacityFailure::Activations),
        ];
        for (cap, expect) in cases {
            assert_eq!(mem.solve_max_microbatch(64, 64.0, cap), Err(expect), "cap {cap}");
        }
        assert_eq!(CapacityFailure::Gradients.to_string(), "gradients");
    }

    #[test]
    fn last_stage_gather_dominates_under_recompute() {
        // With full recomputation only boundary tensors persist, so the
        // torchgpipe gather on the last stage dominates its activations.
        let m = model();
        let p = Parallelism::builder().pp(4, 1).build().unwrap();
        let mem = MemoryModel::new(&m, &p).with_activation_recompute(true);
        let stages = mem.stage_footprints(2.0, 64, true);
        assert_eq!(stages.len(), 4);
        assert!(
            stages[3].activations > 1.5 * stages[0].activations,
            "last {} vs first {}",
            stages[3].activations,
            stages[0].activations
        );
        // Without the gather, per-stage totals track the uniform model.
        let plain = mem.stage_footprints(2.0, 64, false);
        let sum: f64 = plain.iter().map(|f| f.total()).sum();
        let uniform = mem.footprint(2.0, 64).total() * 4.0;
        assert!((sum - uniform).abs() / uniform < 1e-9);
    }

    #[test]
    fn gather_grows_with_microbatch_count() {
        // The paper's Fig. 2b saturation: scaling the pipeline (and with it
        // N_ub = N_PP) keeps growing the last GPU's gathered volume, which
        // is why the global batch could not scale past 8 GPUs.
        let m = model();
        let p8 = Parallelism::builder().pp(8, 1).build().unwrap();
        let p16 = Parallelism::builder().pp(16, 1).build().unwrap();
        let gathered = |p: &Parallelism, n_ub: usize| {
            let mem = MemoryModel::new(&m, p);
            let pp = p.pp();
            let with = mem.stage_footprints(4.0, n_ub, true)[pp - 1].activations;
            let without = mem.stage_footprints(4.0, n_ub, false)[pp - 1].activations;
            with - without
        };
        let g8 = gathered(&p8, 8);
        let g16 = gathered(&p16, 16);
        assert!(
            (g16 / g8 - 2.0).abs() < 1e-9,
            "gathered volume doubles with the microbatch count: {g8} -> {g16}"
        );
    }

    #[test]
    fn checkpoint_bytes_excludes_transient_state() {
        let m = model();
        let p = Parallelism::single();
        let fp = MemoryModel::new(&m, &p).footprint(4.0, 8);
        assert_eq!(fp.checkpoint_bytes(), fp.weights + fp.optimizer);
        assert!(fp.checkpoint_bytes() < fp.total());
    }

    #[test]
    fn optimizer_presets() {
        assert_eq!(OptimizerSpec::adam_mixed_precision().state_bytes_per_param(), 12.0);
        assert_eq!(OptimizerSpec::sgd().state_bytes_per_param(), 0.0);
        assert_eq!(OptimizerSpec::default().name(), "adam-mixed");
    }

    #[test]
    fn display_footprint() {
        let m = model();
        let p = Parallelism::single();
        let fp = MemoryModel::new(&m, &p).footprint(1.0, 1);
        let s = fp.to_string();
        assert!(s.contains("weights") && s.contains("GiB"));
    }
}
