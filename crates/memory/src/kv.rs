//! KV-cache memory model for inference serving.
//!
//! Decoding attends to every previously processed token, so each layer
//! keeps its key and value tensors resident: `2 · h` elements per token
//! per layer, sharded across tensor-parallel ranks (heads split over TP)
//! and pipeline stages (layers split over PP). Unlike training, a serving
//! replica holds no gradients or optimizer state — device memory is
//! weights plus the KV cache, and the cache grows linearly with both the
//! context length and the batch of concurrent requests.
//!
//! [`KvCacheModel`] prices that footprint and solves the two capacity
//! questions a serving planner asks — the largest batch at a given
//! context, and the longest context at a given batch — in closed form,
//! confirmed against the exact footprint predicate exactly as
//! [`MemoryModel::solve_max_microbatch`](crate::MemoryModel::solve_max_microbatch)
//! does for training microbatches.
//!
//! # Example
//!
//! ```
//! use amped_core::{Parallelism, TransformerModel};
//! use amped_memory::KvCacheModel;
//!
//! # fn main() -> Result<(), amped_core::Error> {
//! let model = TransformerModel::builder("gpt-1.3b")
//!     .layers(24).hidden_size(2048).heads(16).seq_len(1024).vocab_size(50257)
//!     .build()?;
//! let mapping = Parallelism::builder().tp(2, 1).build()?;
//! let kv = KvCacheModel::new(&model, &mapping);
//! let fit = kv.solve_max_batch(256, 2048, 80e9).unwrap();
//! assert!(fit.max_batch >= 1);
//! # Ok(())
//! # }
//! ```

use amped_core::{Parallelism, Precision, TransformerModel};
use serde::{Deserialize, Serialize};

/// Per-device serving memory footprint in bytes.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct KvFootprint {
    /// Model weights resident on the device (sharded over TP × PP).
    pub weights: f64,
    /// Peak KV-cache bytes: batch × context × per-token share.
    pub kv_cache: f64,
}

impl KvFootprint {
    /// Total bytes.
    pub fn total(&self) -> f64 {
        self.weights + self.kv_cache
    }

    /// Which term first pushes this footprint past `capacity_bytes`,
    /// walking the same left-to-right accumulation as
    /// [`KvFootprint::total`]. Only meaningful when the total exceeds the
    /// capacity.
    pub fn capacity_failure(&self, capacity_bytes: f64) -> KvCapacityFailure {
        if self.weights > capacity_bytes {
            KvCapacityFailure::Weights
        } else {
            KvCapacityFailure::KvCache
        }
    }
}

impl std::fmt::Display for KvFootprint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        use amped_core::units::format_bytes;
        write!(
            f,
            "weights {} + kv cache {} = {}",
            format_bytes(self.weights),
            format_bytes(self.kv_cache),
            format_bytes(self.total())
        )
    }
}

/// Which capacity inequality failed when a serving configuration fits
/// under no batch (or context), in accumulation order: a device that
/// cannot even hold its weight shard is reported as `Weights`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum KvCapacityFailure {
    /// Resident weights alone exceed the device capacity.
    Weights,
    /// Weights fit, but the KV cache overflows even at the smallest
    /// batch/context.
    KvCache,
}

impl KvCapacityFailure {
    /// Stable lowercase name, matching the JSON artifact field.
    pub fn name(&self) -> &'static str {
        match self {
            KvCapacityFailure::Weights => "weights",
            KvCapacityFailure::KvCache => "kv_cache",
        }
    }
}

impl std::fmt::Display for KvCapacityFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The largest feasible power-of-two batch on the serving trial ladder,
/// as found by [`KvCacheModel::solve_max_batch`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServeBatchFit {
    /// Index on the power-of-two ladder: the batch is `2^ladder_index`.
    pub ladder_index: u32,
    /// The batch size, `2^ladder_index` concurrent requests.
    pub max_batch: usize,
}

/// The per-device serving memory model.
#[derive(Debug, Clone)]
pub struct KvCacheModel<'a> {
    model: &'a TransformerModel,
    parallelism: &'a Parallelism,
    total_params: f64,
    weight_bits: u32,
    kv_bits: u32,
}

impl<'a> KvCacheModel<'a> {
    /// A KV-cache model for `model` served under `parallelism`, with fp16
    /// weights and an fp16 cache.
    pub fn new(model: &'a TransformerModel, parallelism: &'a Parallelism) -> Self {
        KvCacheModel {
            model,
            parallelism,
            total_params: model.total_parameters(),
            weight_bits: Precision::default().param_bits,
            kv_bits: 16,
        }
    }

    /// Take the weight width from a training [`Precision`] (its
    /// `param_bits`).
    pub fn with_precision(mut self, precision: Precision) -> Self {
        self.weight_bits = precision.param_bits;
        self
    }

    /// Override the KV-cache element width in bits.
    pub fn with_kv_bits(mut self, kv_bits: u32) -> Self {
        self.kv_bits = kv_bits.max(1);
        self
    }

    /// Layers resident per pipeline stage: `ceil(L / N_PP)`.
    pub fn layers_per_stage(&self) -> f64 {
        let pp = self.parallelism.pp() as f64;
        (self.model.num_layers() as f64 / pp).ceil().max(1.0)
    }

    /// Weight bytes resident per device: the model sharded over TP × PP.
    /// Serving replicas (the DP dimension) each hold a full shard — there
    /// is no ZeRO in inference.
    pub fn weights_per_device(&self) -> f64 {
        let p = self.parallelism;
        self.total_params / (p.tp() as f64 * p.pp() as f64) * self.weight_bits as f64 / 8.0
    }

    /// KV-cache bytes one token of context costs this device: keys and
    /// values (`2 · h` elements) for each resident layer, with the head
    /// dimension sharded over TP.
    pub fn kv_bytes_per_token(&self) -> f64 {
        let h = self.model.hidden_size() as f64;
        let tp = self.parallelism.tp() as f64;
        2.0 * self.layers_per_stage() * h * (self.kv_bits as f64 / 8.0) / tp
    }

    /// Full per-device footprint for `batch` concurrent requests at
    /// `context_tokens` of cached context each.
    pub fn footprint(&self, batch: usize, context_tokens: usize) -> KvFootprint {
        KvFootprint {
            weights: self.weights_per_device(),
            kv_cache: batch as f64 * context_tokens as f64 * self.kv_bytes_per_token(),
        }
    }

    /// Whether the footprint at (`batch`, `context_tokens`) fits a device
    /// with `capacity_bytes` of memory.
    pub fn fits(&self, batch: usize, context_tokens: usize, capacity_bytes: f64) -> bool {
        self.footprint(batch, context_tokens).total() <= capacity_bytes
    }

    /// The largest feasible point on the power-of-two serving batch ladder
    /// (`1, 2, 4, … ≤ batch_bound`) at `context_tokens` of context, solved
    /// in closed form from the capacity inequality and confirmed against
    /// the exact [`KvCacheModel::fits`] predicate — the serving mirror of
    /// [`MemoryModel::solve_max_microbatch`](crate::MemoryModel::solve_max_microbatch).
    ///
    /// The cache is linear in the batch, so the feasibility flags along
    /// the ladder form a monotone prefix and the confirmed closed-form
    /// index is bit-identical to the brute-force trial loop.
    ///
    /// # Errors
    ///
    /// Returns the failing capacity inequality when even a single request
    /// does not fit.
    pub fn solve_max_batch(
        &self,
        batch_bound: usize,
        context_tokens: usize,
        capacity_bytes: f64,
    ) -> std::result::Result<ServeBatchFit, KvCapacityFailure> {
        let bound = batch_bound.max(1);
        let rungs = bound.ilog2() + 1;
        let fits_at = |k: u32| self.fits(1usize << k, context_tokens, capacity_bytes);

        // Closed form: batch · context · per_token ≤ capacity − weights.
        let budget = capacity_bytes - self.weights_per_device();
        let per_request = context_tokens as f64 * self.kv_bytes_per_token();
        let mut k = if budget >= per_request && per_request > 0.0 {
            ((budget / per_request).log2().floor() as u32).min(rungs - 1)
        } else {
            0
        };
        // Confirm the algebraic guess against the exact footprint: walk
        // down while infeasible, then up while the next rung still fits.
        while !fits_at(k) {
            if k == 0 {
                return Err(self
                    .footprint(1, context_tokens)
                    .capacity_failure(capacity_bytes));
            }
            k -= 1;
        }
        while k + 1 < rungs && fits_at(k + 1) {
            k += 1;
        }
        Ok(ServeBatchFit {
            ladder_index: k,
            max_batch: 1usize << k,
        })
    }

    /// The longest context (in tokens) `batch` concurrent requests can
    /// reach before the cache overflows `capacity_bytes`, in closed form:
    /// `floor((capacity − weights) / (batch · per_token))`, confirmed
    /// against the exact footprint at the returned context and its
    /// successor.
    ///
    /// # Errors
    ///
    /// Returns the failing capacity inequality when even one token of
    /// context does not fit.
    pub fn solve_max_context(
        &self,
        batch: usize,
        capacity_bytes: f64,
    ) -> std::result::Result<usize, KvCapacityFailure> {
        let batch = batch.max(1);
        let budget = capacity_bytes - self.weights_per_device();
        let per_token = batch as f64 * self.kv_bytes_per_token();
        if budget < per_token || per_token <= 0.0 {
            return Err(self.footprint(batch, 1).capacity_failure(capacity_bytes));
        }
        let mut c = (budget / per_token).floor() as usize;
        // Float division can land one token off the exact predicate on
        // either side; settle against `fits` directly.
        while c > 1 && !self.fits(batch, c, capacity_bytes) {
            c -= 1;
        }
        while self.fits(batch, c + 1, capacity_bytes) {
            c += 1;
        }
        if !self.fits(batch, c, capacity_bytes) {
            return Err(self.footprint(batch, 1).capacity_failure(capacity_bytes));
        }
        Ok(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> TransformerModel {
        TransformerModel::builder("gpt-1.3b")
            .layers(24)
            .hidden_size(2048)
            .heads(16)
            .seq_len(1024)
            .vocab_size(50257)
            .build()
            .unwrap()
    }

    #[test]
    fn kv_bytes_match_hand_arithmetic() {
        let m = model();
        let p = Parallelism::single();
        let kv = KvCacheModel::new(&m, &p);
        // 2 (K+V) · 24 layers · 2048 hidden · 2 bytes = 196608 bytes/token.
        assert_eq!(kv.kv_bytes_per_token(), 196_608.0);
        let quant = KvCacheModel::new(&m, &p).with_kv_bits(8);
        assert_eq!(quant.kv_bytes_per_token(), 98_304.0);
    }

    #[test]
    fn tp_and_pp_shard_the_cache() {
        let m = model();
        let p1 = Parallelism::single();
        let p8 = Parallelism::builder().tp(2, 1).pp(4, 1).build().unwrap();
        let kv1 = KvCacheModel::new(&m, &p1);
        let kv8 = KvCacheModel::new(&m, &p8);
        // TP divides by 2, PP keeps 6 of 24 layers: 8× less per device.
        assert!((kv1.kv_bytes_per_token() / kv8.kv_bytes_per_token() - 8.0).abs() < 1e-12);
        assert!((kv1.weights_per_device() / kv8.weights_per_device() - 8.0).abs() < 1e-9);
    }

    #[test]
    fn footprint_is_linear_in_batch_and_context() {
        let m = model();
        let p = Parallelism::single();
        let kv = KvCacheModel::new(&m, &p);
        let base = kv.footprint(1, 1024).kv_cache;
        assert_eq!(kv.footprint(4, 1024).kv_cache, 4.0 * base);
        assert_eq!(kv.footprint(1, 4096).kv_cache, 4.0 * base);
        assert_eq!(kv.footprint(2, 2048).kv_cache, 4.0 * base);
    }

    #[test]
    fn max_batch_solver_matches_exact_predicate() {
        let m = model();
        let p = Parallelism::single();
        let kv = KvCacheModel::new(&m, &p);
        let cap = 16e9;
        let fit = kv.solve_max_batch(4096, 2048, cap).unwrap();
        assert!(kv.fits(fit.max_batch, 2048, cap));
        assert!(!kv.fits(fit.max_batch * 2, 2048, cap));
        assert_eq!(fit.max_batch, 1usize << fit.ladder_index);
    }

    #[test]
    fn infeasible_solves_blame_the_right_term() {
        let m = model();
        let p = Parallelism::single();
        let kv = KvCacheModel::new(&m, &p);
        let weights = kv.weights_per_device();
        assert_eq!(
            kv.solve_max_batch(64, 1024, weights * 0.5),
            Err(KvCapacityFailure::Weights)
        );
        // Weights fit with one token of headroom, the cache does not.
        assert_eq!(
            kv.solve_max_batch(64, 1024, weights + kv.kv_bytes_per_token()),
            Err(KvCapacityFailure::KvCache)
        );
        assert_eq!(
            kv.solve_max_context(1, weights * 0.5),
            Err(KvCapacityFailure::Weights)
        );
        assert_eq!(KvCapacityFailure::KvCache.to_string(), "kv_cache");
    }

    #[test]
    fn max_context_is_exact() {
        let m = model();
        let p = Parallelism::builder().tp(4, 1).build().unwrap();
        let kv = KvCacheModel::new(&m, &p);
        let cap = 32e9;
        let c = kv.solve_max_context(8, cap).unwrap();
        assert!(kv.fits(8, c, cap));
        assert!(!kv.fits(8, c + 1, cap));
    }

    #[test]
    fn display_footprint() {
        let m = model();
        let p = Parallelism::single();
        let fp = KvCacheModel::new(&m, &p).footprint(8, 4096);
        let s = fp.to_string();
        assert!(s.contains("weights") && s.contains("kv cache"));
    }
}
