//! Property test for the closed-form max-microbatch solve: on randomized
//! model/parallelism/schedule/capacity inputs it must agree exactly with
//! the brute-force power-of-two trial loop it replaces — the same ladder
//! the search tuner walks — including the zero-feasible-variant edge case,
//! where the failing capacity inequality must match the footprint at the
//! most feasible rung.

use amped_core::{Parallelism, Precision, TransformerModel};
use amped_memory::{
    CapacityFailure, MemoryModel, OptimizerSpec, PipelineSchedule, RecomputePolicy,
};
use proptest::prelude::*;

/// Largest fitting rung of the trial ladder, by exhaustive evaluation.
fn brute_force_ladder(
    mem: &MemoryModel,
    replica: usize,
    replica_batch: f64,
    cap: f64,
) -> Option<u32> {
    let mut best = None;
    for k in 0..=replica.ilog2() {
        let n_ub = replica.div_ceil(1 << k);
        if mem.fits(replica_batch / n_ub as f64, n_ub, cap) {
            best = Some(k);
        }
    }
    best
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn closed_form_solve_agrees_with_trial_loop(
        (layers, heads_ix, hidden_per_head) in (2usize..40, 0usize..3, 8usize..65),
        (seq_exp, vocab) in (6u32..12, 1000usize..60000),
        (tp_exp, pp_exp, dp_exp) in (0u32..4, 0u32..4, 0u32..4),
        (replica_exp, cap_exp) in (0u32..13, 0u8..4),
        (schedule_ix, recompute_ix, opt_ix) in (0u8..2, 0u8..3, 0u8..3),
        cap_frac in 0.01f64..1.0,
    ) {
        let heads = [4usize, 8, 16][heads_ix];
        let Ok(model) = TransformerModel::builder("prop-m")
            .layers(layers)
            .hidden_size(heads * hidden_per_head)
            .heads(heads)
            .seq_len(1 << seq_exp)
            .vocab_size(vocab)
            .build()
        else {
            return Ok(());
        };
        let Ok(parallelism) = Parallelism::builder()
            .tp(1 << tp_exp, 1)
            .pp(1 << pp_exp, 1)
            .dp(1 << dp_exp, 1)
            .build()
        else {
            return Ok(());
        };
        let schedule = [PipelineSchedule::GPipe, PipelineSchedule::OneFOneB][schedule_ix as usize];
        let recompute = [
            RecomputePolicy::None,
            RecomputePolicy::Selective,
            RecomputePolicy::Full,
        ][recompute_ix as usize];
        let optimizer = [
            OptimizerSpec::adam_mixed_precision(),
            OptimizerSpec::sgd_momentum(),
            OptimizerSpec::sgd(),
        ][opt_ix as usize]
            .clone();
        let mem = MemoryModel::new(&model, &parallelism)
            .with_precision(Precision::fp16())
            .with_schedule(schedule)
            .with_recompute(recompute)
            .with_optimizer(optimizer);

        let replica = 1usize << replica_exp;
        let replica_batch = replica as f64;
        // Capacities spanning hopeless (a fraction of the static bytes)
        // through generous (far above any rung's peak).
        let static_bytes = mem.footprint(0.0, 1).total();
        let peak = mem
            .footprint(replica_batch, 1)
            .total()
            .max(static_bytes + 1.0);
        let cap = match cap_exp {
            0 => static_bytes * cap_frac,
            1 => static_bytes + (peak - static_bytes) * cap_frac,
            2 => peak * (1.0 + cap_frac),
            _ => 80e9,
        };

        // The ladder's feasibility flags must form a monotone prefix —
        // activation memory is monotone in the microbatch size — which is
        // the contract that lets the batch path derive every rung's flag
        // from the single solved index.
        let flags: Vec<bool> = (0..=replica.ilog2())
            .map(|k| {
                let n_ub = replica.div_ceil(1 << k);
                mem.fits(replica_batch / n_ub as f64, n_ub, cap)
            })
            .collect();
        for w in flags.windows(2) {
            prop_assert!(w[0] || !w[1], "non-monotone ladder: {flags:?}");
        }

        match (mem.solve_max_microbatch(replica, replica_batch, cap),
               brute_force_ladder(&mem, replica, replica_batch, cap)) {
            (Ok(fit), Some(k)) => {
                prop_assert_eq!(fit.ladder_index, k);
                prop_assert_eq!(fit.trial_microbatch, 1usize << k);
                prop_assert_eq!(fit.num_microbatches, replica.div_ceil(1usize << k));
            }
            (Err(failure), None) => {
                let n_ub = replica; // rung 0: the most feasible point
                let expect = mem
                    .footprint(replica_batch / n_ub as f64, n_ub)
                    .capacity_failure(cap);
                prop_assert_eq!(failure, expect);
                // An infeasible ladder never blames a term that fits on its
                // own: the named inequality really is violated.
                let weights_blamed_correctly = failure != CapacityFailure::Weights
                    || mem.footprint(0.0, 1).weights > cap;
                prop_assert!(weights_blamed_correctly);
            }
            (got, expect) => {
                prop_assert!(false, "solver {got:?} vs brute force {expect:?}");
            }
        }
    }
}
