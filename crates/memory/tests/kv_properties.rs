//! Property tests for the serving KV-cache model: the footprint must be
//! monotone (indeed linear) in context length and batch, and the
//! closed-form max-batch solve must agree exactly with a brute-force walk
//! of the power-of-two batch ladder — the same discipline
//! `solve_max_microbatch` is held to for training.

use amped_core::{Parallelism, Precision, TransformerModel};
use amped_memory::{KvCacheModel, KvCapacityFailure};
use proptest::prelude::*;

/// Largest fitting rung of the serving batch ladder, by exhaustive
/// evaluation.
fn brute_force_batch_ladder(
    kv: &KvCacheModel,
    batch_bound: usize,
    context: usize,
    cap: f64,
) -> Option<u32> {
    let mut best = None;
    for k in 0..=batch_bound.ilog2() {
        if kv.fits(1usize << k, context, cap) {
            best = Some(k);
        }
    }
    best
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn kv_footprint_is_monotone_in_context_and_batch(
        (layers, heads_ix, hidden_per_head) in (2usize..40, 0usize..3, 8usize..65),
        (tp_exp, pp_exp) in (0u32..4, 0u32..4),
        (batch, context) in (1usize..128, 1usize..16384),
        kv_bits_ix in 0usize..3,
    ) {
        let heads = [4usize, 8, 16][heads_ix];
        let kv_bits = [8u32, 16, 32][kv_bits_ix];
        let Ok(model) = TransformerModel::builder("prop-kv")
            .layers(layers)
            .hidden_size(heads * hidden_per_head)
            .heads(heads)
            .seq_len(2048)
            .vocab_size(32000)
            .build()
        else {
            return Ok(());
        };
        let Ok(parallelism) = Parallelism::builder()
            .tp(1 << tp_exp, 1)
            .pp(1 << pp_exp, 1)
            .build()
        else {
            return Ok(());
        };
        let kv = KvCacheModel::new(&model, &parallelism)
            .with_precision(Precision::fp16())
            .with_kv_bits(kv_bits);

        let base = kv.footprint(batch, context);
        let more_context = kv.footprint(batch, context + 1);
        let more_batch = kv.footprint(batch + 1, context);
        prop_assert!(more_context.kv_cache > base.kv_cache);
        prop_assert!(more_batch.kv_cache > base.kv_cache);
        prop_assert_eq!(more_context.weights, base.weights);
        prop_assert_eq!(more_batch.weights, base.weights);
        // Linearity: doubling either axis doubles the cache bytes.
        let double_b = kv.footprint(2 * batch, context);
        let double_c = kv.footprint(batch, 2 * context);
        prop_assert!((double_b.kv_cache - 2.0 * base.kv_cache).abs() <= 1e-6 * base.kv_cache);
        prop_assert!((double_c.kv_cache - 2.0 * base.kv_cache).abs() <= 1e-6 * base.kv_cache);
    }

    #[test]
    fn closed_form_max_batch_agrees_with_trial_loop(
        (layers, heads_ix, hidden_per_head) in (2usize..40, 0usize..3, 8usize..65),
        (tp_exp, pp_exp) in (0u32..4, 0u32..4),
        (bound_exp, context_exp) in (0u32..13, 4u32..15),
        kv_bits_ix in 0usize..3,
        (cap_mode, cap_frac) in (0u8..4, 0.01f64..1.0),
    ) {
        let heads = [4usize, 8, 16][heads_ix];
        let kv_bits = [8u32, 16, 32][kv_bits_ix];
        let Ok(model) = TransformerModel::builder("prop-kv-solve")
            .layers(layers)
            .hidden_size(heads * hidden_per_head)
            .heads(heads)
            .seq_len(2048)
            .vocab_size(32000)
            .build()
        else {
            return Ok(());
        };
        let Ok(parallelism) = Parallelism::builder()
            .tp(1 << tp_exp, 1)
            .pp(1 << pp_exp, 1)
            .build()
        else {
            return Ok(());
        };
        let kv = KvCacheModel::new(&model, &parallelism)
            .with_precision(Precision::fp16())
            .with_kv_bits(kv_bits);

        let bound = 1usize << bound_exp;
        let context = 1usize << context_exp;
        // Capacities spanning hopeless (below the weight shard) through
        // generous (above the full-ladder peak).
        let weights = kv.weights_per_device();
        let peak = kv.footprint(bound, context).total();
        let cap = match cap_mode {
            0 => weights * cap_frac,
            1 => weights + (peak - weights) * cap_frac,
            2 => peak * (1.0 + cap_frac),
            _ => 80e9,
        };

        // The ladder's feasibility flags form a monotone prefix: the cache
        // is linear in the batch.
        let flags: Vec<bool> = (0..=bound.ilog2())
            .map(|k| kv.fits(1usize << k, context, cap))
            .collect();
        for w in flags.windows(2) {
            prop_assert!(w[0] || !w[1], "non-monotone ladder: {flags:?}");
        }

        match (
            kv.solve_max_batch(bound, context, cap),
            brute_force_batch_ladder(&kv, bound, context, cap),
        ) {
            (Ok(fit), Some(k)) => {
                prop_assert_eq!(fit.ladder_index, k);
                prop_assert_eq!(fit.max_batch, 1usize << k);
            }
            (Err(failure), None) => {
                let expect = kv.footprint(1, context).capacity_failure(cap);
                prop_assert_eq!(failure, expect);
                let weights_blamed_correctly =
                    failure != KvCapacityFailure::Weights || weights > cap;
                prop_assert!(weights_blamed_correctly);
            }
            (got, expect) => {
                prop_assert!(false, "solver {got:?} vs brute force {expect:?}");
            }
        }
    }

    #[test]
    fn max_context_solve_is_exact(
        (layers, heads_ix, hidden_per_head) in (2usize..40, 0usize..3, 8usize..65),
        tp_exp in 0u32..4,
        batch_exp in 0u32..8,
        cap_gb in 1.0f64..200.0,
    ) {
        let heads = [4usize, 8, 16][heads_ix];
        let Ok(model) = TransformerModel::builder("prop-kv-ctx")
            .layers(layers)
            .hidden_size(heads * hidden_per_head)
            .heads(heads)
            .seq_len(2048)
            .vocab_size(32000)
            .build()
        else {
            return Ok(());
        };
        let Ok(parallelism) = Parallelism::builder().tp(1 << tp_exp, 1).build() else {
            return Ok(());
        };
        let kv = KvCacheModel::new(&model, &parallelism);
        let batch = 1usize << batch_exp;
        let cap = cap_gb * 1e9;
        match kv.solve_max_context(batch, cap) {
            Ok(c) => {
                prop_assert!(kv.fits(batch, c, cap));
                prop_assert!(!kv.fits(batch, c + 1, cap));
            }
            Err(_) => {
                prop_assert!(!kv.fits(batch, 1, cap));
            }
        }
    }
}
