//! Collective operation kinds and their analytical cost.

use serde::{Deserialize, Serialize};

/// A collective communication operation over a group of participants.
///
/// These are the communication patterns distributed transformer training
/// needs: tensor parallelism issues [`AllReduce`](Collective::AllReduce)s of
/// activations, ZeRO-style data parallelism uses
/// [`ReduceScatter`](Collective::ReduceScatter)/[`AllGather`](Collective::AllGather),
/// mixture-of-experts routing issues [`AllToAll`](Collective::AllToAll)s,
/// and pipeline parallelism sends activations
/// [`PointToPoint`](Collective::PointToPoint).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum Collective {
    /// Every participant ends with the element-wise reduction of all inputs.
    AllReduce,
    /// Every participant ends with one distinct `1/N` shard of the reduction.
    ReduceScatter,
    /// Every participant ends with the concatenation of all shards.
    AllGather,
    /// Every participant sends a distinct `1/N` slice to every other one.
    AllToAll,
    /// One root distributes its payload to all participants.
    Broadcast,
    /// A single source–destination transfer (pipeline stage boundary).
    PointToPoint,
}

impl std::fmt::Display for Collective {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Collective::AllReduce => "all-reduce",
            Collective::ReduceScatter => "reduce-scatter",
            Collective::AllGather => "all-gather",
            Collective::AllToAll => "all-to-all",
            Collective::Broadcast => "broadcast",
            Collective::PointToPoint => "point-to-point",
        };
        f.write_str(s)
    }
}

/// Analytical cost of a collective on a topology: the AMPeD topology factor
/// and the serialized step count.
///
/// Combine with a payload and a link with [`CollectiveCost::time`]:
/// `t = steps · latency + payload_bits · factor / bandwidth`.
///
/// # Example
///
/// ```
/// use amped_topo::CollectiveCost;
/// let c = CollectiveCost::new(1.75, 14);
/// let t = c.time(1e9, 5e-6, 2.4e12);
/// assert!((t - (14.0 * 5e-6 + 1e9 * 1.75 / 2.4e12)).abs() < 1e-15);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CollectiveCost {
    /// Payload crossings per participant (the paper's `T`).
    pub factor: f64,
    /// Number of serialized latency-bearing phases.
    pub steps: usize,
}

impl CollectiveCost {
    /// A cost with the given factor and step count.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or not finite.
    pub fn new(factor: f64, steps: usize) -> Self {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "topology factor must be finite and non-negative, got {factor}"
        );
        CollectiveCost { factor, steps }
    }

    /// The zero cost of a collective over at most one participant.
    pub fn free() -> Self {
        CollectiveCost {
            factor: 0.0,
            steps: 0,
        }
    }

    /// Whether this collective moves no data at all.
    pub fn is_free(&self) -> bool {
        self.factor == 0.0 && self.steps == 0
    }

    /// Wall-clock time of the collective:
    /// `steps · latency_s + payload_bits · factor / bandwidth_bps`.
    ///
    /// `payload_bits` is the *logical* payload per participant (e.g. the full
    /// gradient buffer); the factor accounts for the algorithmic volume
    /// inflation. Returns `0.0` for a free cost regardless of payload.
    ///
    /// # Panics
    ///
    /// Panics if `bandwidth_bps` is not strictly positive while data must
    /// move (`factor > 0` and `payload_bits > 0`).
    pub fn time(&self, payload_bits: f64, latency_s: f64, bandwidth_bps: f64) -> f64 {
        if self.is_free() {
            return 0.0;
        }
        let volume = payload_bits * self.factor;
        if volume > 0.0 {
            assert!(
                bandwidth_bps > 0.0,
                "bandwidth must be positive to move {volume} bits"
            );
        }
        self.steps as f64 * latency_s + if volume > 0.0 { volume / bandwidth_bps } else { 0.0 }
    }
}

/// Time of a hierarchical all-reduce: reduce-scatter inside groups of
/// `intra_n` on the intra link, all-reduce of the `1/intra_n` shards across
/// `inter_n` groups on the inter link, then all-gather back — the structure
/// the paper's Eq. 10 assumes for gradients.
///
/// # Example
///
/// ```
/// use amped_topo::{hierarchical_all_reduce_time, Topology};
/// let flat = Topology::Ring
///     .cost(amped_topo::Collective::AllReduce, 64)
///     .time(1e9, 1e-5, 1e11);
/// let hier = hierarchical_all_reduce_time(
///     1e9,
///     Topology::Ring, 8, 1e-6, 2.4e12,
///     Topology::Ring, 8, 1e-5, 1e11,
/// );
/// assert!(hier < flat, "hierarchy must beat a flat ring over slow links");
/// ```
#[allow(clippy::too_many_arguments)]
pub fn hierarchical_all_reduce_time(
    payload_bits: f64,
    intra_topology: crate::Topology,
    intra_n: usize,
    intra_latency_s: f64,
    intra_bw_bps: f64,
    inter_topology: crate::Topology,
    inter_n: usize,
    inter_latency_s: f64,
    inter_bw_bps: f64,
) -> f64 {
    let rs = intra_topology
        .cost(Collective::ReduceScatter, intra_n)
        .time(payload_bits, intra_latency_s, intra_bw_bps);
    let ag = intra_topology
        .cost(Collective::AllGather, intra_n)
        .time(payload_bits, intra_latency_s, intra_bw_bps);
    let shard = payload_bits / intra_n.max(1) as f64;
    let inter = inter_topology
        .cost(Collective::AllReduce, inter_n)
        .time(shard, inter_latency_s, inter_bw_bps);
    rs + inter + ag
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hierarchical_collapses_to_inter_only_groups_of_one() {
        let t = crate::hierarchical_all_reduce_time(
            1e9,
            crate::Topology::Ring,
            1,
            1e-6,
            1e12,
            crate::Topology::Ring,
            8,
            1e-5,
            1e11,
        );
        let flat = crate::Topology::Ring
            .cost(Collective::AllReduce, 8)
            .time(1e9, 1e-5, 1e11);
        assert!((t - flat).abs() / flat < 1e-12);
    }

    #[test]
    fn free_cost_is_zero_time() {
        assert_eq!(CollectiveCost::free().time(1e12, 1.0, 1.0), 0.0);
    }

    #[test]
    fn time_decomposes_into_latency_and_bandwidth_terms() {
        let c = CollectiveCost::new(2.0, 4);
        let lat_only = c.time(0.0, 1e-6, 1e9);
        assert!((lat_only - 4e-6).abs() < 1e-18);
        let both = c.time(1e9, 1e-6, 1e9);
        assert!((both - (4e-6 + 2.0)).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn zero_bandwidth_with_payload_panics() {
        CollectiveCost::new(1.0, 1).time(8.0, 0.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "topology factor")]
    fn negative_factor_rejected() {
        CollectiveCost::new(-1.0, 0);
    }

    #[test]
    fn display_names() {
        assert_eq!(Collective::AllToAll.to_string(), "all-to-all");
        assert_eq!(Collective::PointToPoint.to_string(), "point-to-point");
    }
}
