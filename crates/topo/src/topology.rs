//! Physical interconnect topologies and their collective cost models.

use serde::{Deserialize, Serialize};

use crate::collective::{Collective, CollectiveCost};

/// The physical arrangement of links between the participants of a
/// communication group.
///
/// The topology determines two things for every [`Collective`]:
///
/// * the **topology factor** `T`: the number of times the payload crosses a
///   link, divided by the number of participants (the paper's `T_intra`,
///   `T_inter`, `T_MoE` — e.g. `2(N−1)/N` for a ring all-reduce);
/// * the number of serialized **steps**, which multiply the per-hop latency.
///
/// # Example
///
/// ```
/// use amped_topo::{Collective, Topology};
/// let t = Topology::FullyConnected.cost(Collective::AllToAll, 16);
/// assert!((t.factor - 15.0 / 16.0).abs() < 1e-12);
/// assert_eq!(t.steps, 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum Topology {
    /// A unidirectional ring; the canonical substrate of bandwidth-optimal
    /// all-reduce (`2(N−1)` steps, factor `2(N−1)/N`).
    Ring,
    /// A full crossbar (e.g. NVSwitch inside an HGX node, or a non-blocking
    /// fat-tree between nodes). Bandwidth-optimal collectives keep the ring
    /// factor (each port still moves `2(N−1)/N · V` bytes) but latency terms
    /// collapse to a constant number of phases.
    FullyConnected,
    /// A binary reduction tree: latency scales with `2·log2(N)` steps; each
    /// participant still moves `2(N−1)/N · V` in the bandwidth-optimal
    /// formulation (reduce + broadcast pipelined).
    Tree,
    /// Direct point-to-point neighbour links only (a pipeline). Only
    /// meaningful for [`Collective::PointToPoint`]; other collectives fall
    /// back to ring behaviour over the chain.
    Chain,
    /// A 2-D torus of `rows × cols` participants: collectives decompose
    /// into a ring phase per dimension, halving the serialized step count
    /// relative to one long ring while keeping the bandwidth-optimal
    /// per-participant volume.
    Torus2d {
        /// Ring length of the first dimension.
        rows: usize,
        /// Ring length of the second dimension.
        cols: usize,
    },
}

impl Topology {
    /// Cost of running `collective` over `n` participants on this topology.
    ///
    /// For `n <= 1` every collective is free (no communication partner).
    ///
    /// # Example
    ///
    /// ```
    /// use amped_topo::{Collective, Topology};
    /// assert_eq!(Topology::Ring.cost(Collective::AllReduce, 1).steps, 0);
    /// ```
    pub fn cost(self, collective: Collective, n: usize) -> CollectiveCost {
        if n <= 1 {
            return CollectiveCost::free();
        }
        let nf = n as f64;
        let ring_ar = CollectiveCost::new(2.0 * (nf - 1.0) / nf, 2 * (n - 1));
        let ring_half = CollectiveCost::new((nf - 1.0) / nf, n - 1);
        match (self, collective) {
            (Topology::Ring | Topology::Chain, Collective::AllReduce) => ring_ar,
            (Topology::Ring | Topology::Chain, Collective::ReduceScatter)
            | (Topology::Ring | Topology::Chain, Collective::AllGather)
            | (Topology::Ring | Topology::Chain, Collective::AllToAll)
            | (Topology::Ring | Topology::Chain, Collective::Broadcast) => ring_half,
            (Topology::FullyConnected, Collective::AllReduce) => {
                // Same per-port volume as a ring, but only two latency phases
                // (reduce-scatter + all-gather through the switch).
                CollectiveCost::new(2.0 * (nf - 1.0) / nf, 2)
            }
            (Topology::FullyConnected, Collective::ReduceScatter)
            | (Topology::FullyConnected, Collective::AllGather)
            | (Topology::FullyConnected, Collective::AllToAll)
            | (Topology::FullyConnected, Collective::Broadcast) => {
                CollectiveCost::new((nf - 1.0) / nf, 1)
            }
            (Topology::Tree, Collective::AllReduce) => {
                CollectiveCost::new(2.0 * (nf - 1.0) / nf, 2 * nf.log2().ceil() as usize)
            }
            (Topology::Tree, Collective::ReduceScatter)
            | (Topology::Tree, Collective::AllGather)
            | (Topology::Tree, Collective::AllToAll)
            | (Topology::Tree, Collective::Broadcast) => {
                CollectiveCost::new((nf - 1.0) / nf, nf.log2().ceil() as usize)
            }
            (Topology::Torus2d { rows, cols }, Collective::AllReduce) => {
                // Ring reduce-scatter + all-gather along each dimension.
                let (r, c) = (rows.max(1), cols.max(1));
                let steps = 2 * (r.saturating_sub(1)) + 2 * (c.saturating_sub(1));
                CollectiveCost::new(2.0 * (nf - 1.0) / nf, steps.max(1))
            }
            (Topology::Torus2d { rows, cols }, _) => {
                let (r, c) = (rows.max(1), cols.max(1));
                let steps = r.saturating_sub(1) + c.saturating_sub(1);
                CollectiveCost::new((nf - 1.0) / nf, steps.max(1))
            }
            (_, Collective::PointToPoint) => CollectiveCost::new(1.0, 1),
        }
    }

    /// The paper's all-reduce topology factor `T` (Eq. 6/11): payload
    /// crossings per participant.
    pub fn allreduce_factor(self, n: usize) -> f64 {
        self.cost(Collective::AllReduce, n).factor
    }

    /// The paper's all-to-all topology factor `T_MoE` (Eq. 9), which equals
    /// `(N−1)/N` in the default pairwise-exchange case.
    pub fn alltoall_factor(self, n: usize) -> f64 {
        self.cost(Collective::AllToAll, n).factor
    }
}

impl Default for Topology {
    /// Ring is the default because it is what the paper assumes for both
    /// intra- and inter-node all-reduce.
    fn default() -> Self {
        Topology::Ring
    }
}

impl std::fmt::Display for Topology {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Topology::Ring => "ring",
            Topology::FullyConnected => "fully-connected",
            Topology::Tree => "tree",
            Topology::Chain => "chain",
            Topology::Torus2d { .. } => "2d-torus",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_allreduce_matches_paper_formula() {
        for n in 2..=64 {
            let c = Topology::Ring.cost(Collective::AllReduce, n);
            let nf = n as f64;
            assert!((c.factor - 2.0 * (nf - 1.0) / nf).abs() < 1e-12, "n={n}");
            assert_eq!(c.steps, 2 * (n - 1));
        }
    }

    #[test]
    fn pairwise_alltoall_matches_paper_formula() {
        // Eq. 9: T_MoE = (N_nodes - 1) / N_nodes in the pairwise case.
        for n in 2..=32 {
            let c = Topology::Ring.cost(Collective::AllToAll, n);
            let nf = n as f64;
            assert!((c.factor - (nf - 1.0) / nf).abs() < 1e-12);
            assert_eq!(c.steps, n - 1);
        }
    }

    #[test]
    fn single_participant_is_free() {
        for topo in [
            Topology::Ring,
            Topology::FullyConnected,
            Topology::Tree,
            Topology::Chain,
        ] {
            for coll in [
                Collective::AllReduce,
                Collective::ReduceScatter,
                Collective::AllGather,
                Collective::AllToAll,
                Collective::Broadcast,
                Collective::PointToPoint,
            ] {
                let c = topo.cost(coll, 1);
                assert_eq!(c.factor, 0.0);
                assert_eq!(c.steps, 0);
                let c0 = topo.cost(coll, 0);
                assert_eq!(c0.factor, 0.0);
            }
        }
    }

    #[test]
    fn switch_has_constant_latency_phases() {
        let c8 = Topology::FullyConnected.cost(Collective::AllReduce, 8);
        let c64 = Topology::FullyConnected.cost(Collective::AllReduce, 64);
        assert_eq!(c8.steps, c64.steps);
        assert!(c64.factor > c8.factor);
    }

    #[test]
    fn tree_latency_is_logarithmic() {
        let c = Topology::Tree.cost(Collective::AllReduce, 16);
        assert_eq!(c.steps, 8); // 2 * log2(16)
    }

    #[test]
    fn factors_bounded_by_two() {
        for n in 2..=128 {
            for topo in [Topology::Ring, Topology::FullyConnected, Topology::Tree] {
                let c = topo.cost(Collective::AllReduce, n);
                assert!(c.factor > 0.0 && c.factor < 2.0);
            }
        }
    }

    #[test]
    fn torus_has_fewer_steps_than_one_ring() {
        let n = 64;
        let torus = Topology::Torus2d { rows: 8, cols: 8 };
        let ring = Topology::Ring;
        let t = torus.cost(Collective::AllReduce, n);
        let r = ring.cost(Collective::AllReduce, n);
        assert!(t.steps < r.steps, "torus {} vs ring {}", t.steps, r.steps);
        assert!((t.factor - r.factor).abs() < 1e-12, "same per-port volume");
        assert_eq!(t.steps, 2 * 7 + 2 * 7);
    }

    #[test]
    fn torus_alltoall_cost() {
        let t = Topology::Torus2d { rows: 4, cols: 4 }.cost(Collective::AllToAll, 16);
        assert_eq!(t.steps, 6);
        assert!((t.factor - 15.0 / 16.0).abs() < 1e-12);
        assert_eq!(
            Topology::Torus2d { rows: 4, cols: 4 }.to_string(),
            "2d-torus"
        );
    }

    #[test]
    fn display_is_stable() {
        assert_eq!(Topology::Ring.to_string(), "ring");
        assert_eq!(Topology::FullyConnected.to_string(), "fully-connected");
    }
}
