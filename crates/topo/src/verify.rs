//! Structural checks over [`Schedule`]s, used by tests and by the simulator's
//! debug assertions.

use crate::schedule::Schedule;

/// A violation found by [`check_schedule`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScheduleViolation {
    /// A transfer names a rank outside `0..num_ranks`.
    RankOutOfRange {
        /// The offending rank id.
        rank: usize,
        /// The number of ranks the schedule declares.
        num_ranks: usize,
    },
    /// A transfer sends a payload to its own source.
    SelfTransfer {
        /// The rank sending to itself.
        rank: usize,
    },
    /// Steps are not contiguous from zero (a gap means dead barrier phases).
    NonContiguousSteps {
        /// First missing step index.
        missing: usize,
    },
}

impl std::fmt::Display for ScheduleViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScheduleViolation::RankOutOfRange { rank, num_ranks } => {
                write!(f, "rank {rank} out of range (num_ranks = {num_ranks})")
            }
            ScheduleViolation::SelfTransfer { rank } => {
                write!(f, "rank {rank} transfers to itself")
            }
            ScheduleViolation::NonContiguousSteps { missing } => {
                write!(f, "step {missing} has no transfers but later steps do")
            }
        }
    }
}

/// Check a schedule for structural violations. Returns all violations found
/// (empty means the schedule is well-formed).
///
/// # Example
///
/// ```
/// use amped_topo::{verify::check_schedule, Schedule};
/// assert!(check_schedule(&Schedule::ring_all_reduce(8, 1 << 20)).is_empty());
/// ```
pub fn check_schedule(schedule: &Schedule) -> Vec<ScheduleViolation> {
    let mut violations = Vec::new();
    let n = schedule.num_ranks();
    let mut seen_steps = vec![false; schedule.num_steps()];
    for t in schedule.transfers() {
        if t.src >= n {
            violations.push(ScheduleViolation::RankOutOfRange {
                rank: t.src,
                num_ranks: n,
            });
        }
        if t.dst >= n {
            violations.push(ScheduleViolation::RankOutOfRange {
                rank: t.dst,
                num_ranks: n,
            });
        }
        if t.src == t.dst {
            violations.push(ScheduleViolation::SelfTransfer { rank: t.src });
        }
        if t.step < seen_steps.len() {
            seen_steps[t.step] = true;
        }
    }
    if let Some(missing) = seen_steps.iter().position(|&s| !s) {
        violations.push(ScheduleViolation::NonContiguousSteps { missing });
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::TransferStep;

    #[test]
    fn builtin_schedules_are_well_formed() {
        for n in [2usize, 3, 7, 16] {
            for s in [
                Schedule::ring_all_reduce(n, 4096),
                Schedule::ring_reduce_scatter(n, 4096),
                Schedule::ring_all_gather(n, 4096),
                Schedule::pairwise_all_to_all(n, 4096),
                Schedule::tree_broadcast(n, 4096),
            ] {
                assert!(check_schedule(&s).is_empty(), "n={n} schedule={s:?}");
            }
        }
    }

    #[test]
    fn detects_self_transfer() {
        let s = Schedule::point_to_point(3, 3, 10);
        let v = check_schedule(&s);
        assert!(v.contains(&ScheduleViolation::SelfTransfer { rank: 3 }));
    }

    #[test]
    fn violation_messages_are_nonempty() {
        let v = ScheduleViolation::RankOutOfRange {
            rank: 9,
            num_ranks: 4,
        };
        assert!(v.to_string().contains("9"));
    }

    #[test]
    fn detects_step_gap() {
        // Hand-build a schedule with a gap by serializing through serde.
        let json = serde_json::json!({
            "transfers": [
                {"step": 0, "src": 0, "dst": 1, "bytes": 1},
                {"step": 2, "src": 1, "dst": 0, "bytes": 1}
            ],
            "num_ranks": 2
        });
        let s: Schedule = serde_json::from_value(json).unwrap();
        let v = check_schedule(&s);
        assert!(v.contains(&ScheduleViolation::NonContiguousSteps { missing: 1 }));
        let _ = TransferStep {
            step: 0,
            src: 0,
            dst: 1,
            bytes: 1,
        };
    }
}
