//! Interconnect topologies and collective-communication primitives.
//!
//! This crate is the shared communication substrate of the AMPeD workspace.
//! It serves two consumers:
//!
//! * the **analytical model** (`amped-core`) consumes [`CollectiveCost`]
//!   values — the *topology factor* `T` and the number of serialized
//!   communication *steps* of a collective on a given [`Topology`] — exactly
//!   as Eq. 6/9/11 of the AMPeD paper use them (e.g. a ring all-reduce over
//!   `N` accelerators has `T = 2(N-1)/N` and `2(N-1)` steps);
//! * the **discrete-event simulator** (`amped-sim`) consumes explicit
//!   [`schedule`]s — per-step `src → dst` transfer lists that it executes on
//!   contended links.
//!
//! # Example
//!
//! ```
//! use amped_topo::{Collective, Topology};
//!
//! let ring = Topology::Ring;
//! let cost = ring.cost(Collective::AllReduce, 8);
//! assert!((cost.factor - 2.0 * 7.0 / 8.0).abs() < 1e-12);
//! assert_eq!(cost.steps, 14);
//!
//! // Time for an 8 MiB all-reduce over 8 ranks on 800 Gbit/s links with 1 us latency:
//! let t = cost.time(8.0 * 1024.0 * 1024.0 * 8.0, 1e-6, 800e9);
//! assert!(t > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod collective;
pub mod schedule;
pub mod topology;
pub mod verify;

pub use collective::{hierarchical_all_reduce_time, Collective, CollectiveCost};
pub use schedule::{Schedule, TransferStep};
pub use topology::Topology;
