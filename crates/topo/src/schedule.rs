//! Explicit per-step transfer schedules for the discrete-event simulator.
//!
//! While the analytical model only needs aggregate factors, the simulator in
//! `amped-sim` executes collectives as sequences of point-to-point transfers
//! over contended links. A [`Schedule`] is that sequence: transfers with the
//! same `step` may proceed in parallel, consecutive steps are serialized by a
//! dependency barrier.

use serde::{Deserialize, Serialize};

/// One point-to-point transfer inside a collective schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TransferStep {
    /// Phase index; transfers sharing a step run concurrently.
    pub step: usize,
    /// Sending rank (group-local, `0..n`).
    pub src: usize,
    /// Receiving rank (group-local, `0..n`).
    pub dst: usize,
    /// Payload of this transfer in bytes.
    pub bytes: u64,
}

/// A collective lowered to point-to-point transfers.
///
/// # Example
///
/// ```
/// use amped_topo::Schedule;
/// let s = Schedule::ring_all_reduce(4, 4096);
/// assert_eq!(s.num_steps(), 6); // 2 * (4 - 1)
/// assert_eq!(s.total_bytes(), 4 * 6 * 1024); // each rank sends 1 KiB shard per step
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Schedule {
    transfers: Vec<TransferStep>,
    num_ranks: usize,
}

impl Schedule {
    /// An empty schedule over `num_ranks` ranks (what collectives over a
    /// single rank lower to).
    pub fn empty(num_ranks: usize) -> Self {
        Schedule {
            transfers: Vec::new(),
            num_ranks,
        }
    }

    /// Bandwidth-optimal ring all-reduce of a `bytes`-sized buffer over `n`
    /// ranks: `n−1` reduce-scatter steps followed by `n−1` all-gather steps,
    /// each rank exchanging a `bytes/n` shard with its ring neighbour.
    ///
    /// Shards are rounded up to whole bytes so the schedule never moves less
    /// than the logical payload.
    pub fn ring_all_reduce(n: usize, bytes: u64) -> Self {
        if n <= 1 {
            return Schedule::empty(n.max(1));
        }
        let shard = bytes.div_ceil(n as u64);
        let mut transfers = Vec::with_capacity(2 * (n - 1) * n);
        for step in 0..2 * (n - 1) {
            for src in 0..n {
                transfers.push(TransferStep {
                    step,
                    src,
                    dst: (src + 1) % n,
                    bytes: shard,
                });
            }
        }
        Schedule {
            transfers,
            num_ranks: n,
        }
    }

    /// Ring reduce-scatter: `n−1` neighbour-exchange steps of `bytes/n`
    /// shards; each rank ends with one fully reduced shard.
    pub fn ring_reduce_scatter(n: usize, bytes: u64) -> Self {
        Self::ring_half(n, bytes)
    }

    /// Ring all-gather: `n−1` neighbour-exchange steps of `bytes/n` shards;
    /// each rank ends with the full concatenated buffer.
    pub fn ring_all_gather(n: usize, bytes: u64) -> Self {
        Self::ring_half(n, bytes)
    }

    fn ring_half(n: usize, bytes: u64) -> Self {
        if n <= 1 {
            return Schedule::empty(n.max(1));
        }
        let shard = bytes.div_ceil(n as u64);
        let mut transfers = Vec::with_capacity((n - 1) * n);
        for step in 0..(n - 1) {
            for src in 0..n {
                transfers.push(TransferStep {
                    step,
                    src,
                    dst: (src + 1) % n,
                    bytes: shard,
                });
            }
        }
        Schedule {
            transfers,
            num_ranks: n,
        }
    }

    /// Pairwise-exchange all-to-all: `n−1` steps; at step `k` every rank `r`
    /// exchanges its `bytes/n` slice with rank `r ⊕-style partner (r+k+1) mod n`.
    ///
    /// This is the default all-to-all the paper assumes for MoE routing
    /// (topology factor `(N−1)/N`).
    pub fn pairwise_all_to_all(n: usize, bytes: u64) -> Self {
        if n <= 1 {
            return Schedule::empty(n.max(1));
        }
        let slice = bytes.div_ceil(n as u64);
        let mut transfers = Vec::with_capacity((n - 1) * n);
        for step in 0..(n - 1) {
            for src in 0..n {
                let dst = (src + step + 1) % n;
                transfers.push(TransferStep {
                    step,
                    src,
                    dst,
                    bytes: slice,
                });
            }
        }
        Schedule {
            transfers,
            num_ranks: n,
        }
    }

    /// Recursive halving–doubling all-reduce for power-of-two groups:
    /// `2·log2(n)` steps (reduce-scatter by recursive halving, all-gather by
    /// recursive doubling). Latency-optimal for small payloads; the
    /// per-rank volume matches the ring's `2(n−1)/n · bytes`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a power of two (use
    /// [`Schedule::ring_all_reduce`] otherwise).
    pub fn halving_doubling_all_reduce(n: usize, bytes: u64) -> Self {
        if n <= 1 {
            return Schedule::empty(n.max(1));
        }
        assert!(n.is_power_of_two(), "halving-doubling requires a power-of-two group, got {n}");
        let stages = n.trailing_zeros() as usize;
        let mut transfers = Vec::new();
        // Reduce-scatter: at stage k, partners are distance n/2^(k+1) apart
        // and exchange half of the data they still own.
        let mut step = 0usize;
        for k in 0..stages {
            let chunk = bytes.div_ceil(2u64 << k);
            let dist = n >> (k + 1);
            for src in 0..n {
                let dst = src ^ dist;
                transfers.push(TransferStep {
                    step,
                    src,
                    dst,
                    bytes: chunk,
                });
            }
            step += 1;
        }
        // All-gather mirrors the pattern in reverse.
        for k in (0..stages).rev() {
            let chunk = bytes.div_ceil(2u64 << k);
            let dist = n >> (k + 1);
            for src in 0..n {
                let dst = src ^ dist;
                transfers.push(TransferStep {
                    step,
                    src,
                    dst,
                    bytes: chunk,
                });
            }
            step += 1;
        }
        Schedule {
            transfers,
            num_ranks: n,
        }
    }

    /// Binomial-tree broadcast from rank 0: `ceil(log2 n)` doubling steps.
    pub fn tree_broadcast(n: usize, bytes: u64) -> Self {
        if n <= 1 {
            return Schedule::empty(n.max(1));
        }
        let mut transfers = Vec::new();
        let mut have = 1usize; // ranks 0..have already hold the payload
        let mut step = 0usize;
        while have < n {
            let senders = have.min(n - have);
            for s in 0..senders {
                transfers.push(TransferStep {
                    step,
                    src: s,
                    dst: have + s,
                    bytes,
                });
            }
            have += senders;
            step += 1;
        }
        Schedule {
            transfers,
            num_ranks: n,
        }
    }

    /// A single point-to-point transfer (pipeline boundary).
    pub fn point_to_point(src: usize, dst: usize, bytes: u64) -> Self {
        Schedule {
            transfers: vec![TransferStep {
                step: 0,
                src,
                dst,
                bytes,
            }],
            num_ranks: src.max(dst) + 1,
        }
    }

    /// The transfers in schedule order.
    pub fn transfers(&self) -> &[TransferStep] {
        &self.transfers
    }

    /// Number of group-local ranks this schedule spans.
    pub fn num_ranks(&self) -> usize {
        self.num_ranks
    }

    /// Number of serialized steps (0 for an empty schedule).
    pub fn num_steps(&self) -> usize {
        self.transfers.iter().map(|t| t.step + 1).max().unwrap_or(0)
    }

    /// Total bytes crossing links over the whole schedule.
    pub fn total_bytes(&self) -> u64 {
        self.transfers.iter().map(|t| t.bytes).sum()
    }

    /// Bytes sent by the busiest single rank (the per-participant volume the
    /// analytical topology factor describes).
    pub fn max_bytes_per_rank(&self) -> u64 {
        let mut per_rank = vec![0u64; self.num_ranks];
        for t in &self.transfers {
            per_rank[t.src] += t.bytes;
        }
        per_rank.into_iter().max().unwrap_or(0)
    }

    /// Iterate over transfers grouped by step, in ascending step order.
    pub fn steps(&self) -> impl Iterator<Item = (usize, Vec<TransferStep>)> + '_ {
        let n = self.num_steps();
        (0..n).map(move |s| {
            (
                s,
                self.transfers
                    .iter()
                    .copied()
                    .filter(|t| t.step == s)
                    .collect(),
            )
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_all_reduce_volume_matches_factor() {
        // Per-rank volume must equal 2(n-1)/n * bytes (up to shard rounding).
        for n in [2usize, 4, 8, 16] {
            let bytes = 1 << 20;
            let s = Schedule::ring_all_reduce(n, bytes);
            let expect = 2.0 * (n as f64 - 1.0) / n as f64 * bytes as f64;
            let got = s.max_bytes_per_rank() as f64;
            assert!(
                (got - expect).abs() / expect < 0.01,
                "n={n} got={got} expect={expect}"
            );
            assert_eq!(s.num_steps(), 2 * (n - 1));
        }
    }

    #[test]
    fn alltoall_every_pair_communicates() {
        let n = 6;
        let s = Schedule::pairwise_all_to_all(n, 6000);
        let mut pairs = std::collections::HashSet::new();
        for t in s.transfers() {
            assert_ne!(t.src, t.dst);
            pairs.insert((t.src, t.dst));
        }
        assert_eq!(pairs.len(), n * (n - 1));
        assert_eq!(s.num_steps(), n - 1);
    }

    #[test]
    fn broadcast_reaches_everyone() {
        for n in [2usize, 3, 5, 8, 13] {
            let s = Schedule::tree_broadcast(n, 100);
            let mut have = vec![false; n];
            have[0] = true;
            for (_, batch) in s.steps() {
                for t in &batch {
                    assert!(have[t.src], "sender {} has no data yet", t.src);
                    have[t.dst] = true;
                }
            }
            assert!(have.iter().all(|&h| h), "n={n}");
            assert_eq!(s.num_steps(), (n as f64).log2().ceil() as usize);
        }
    }

    #[test]
    fn halving_doubling_matches_ring_volume_with_fewer_steps() {
        for n in [2usize, 4, 8, 16, 32] {
            let bytes = 1 << 20;
            let hd = Schedule::halving_doubling_all_reduce(n, bytes);
            let ring = Schedule::ring_all_reduce(n, bytes);
            assert_eq!(hd.num_steps(), 2 * n.trailing_zeros() as usize);
            assert!(hd.num_steps() <= ring.num_steps());
            // Per-rank volume: sum over stages of bytes/2^(k+1), twice
            // = 2 * bytes * (1 - 1/n) = ring volume.
            let v_hd = hd.max_bytes_per_rank() as f64;
            let v_ring = ring.max_bytes_per_rank() as f64;
            assert!(
                (v_hd - v_ring).abs() / v_ring < 0.01,
                "n={n}: hd={v_hd} ring={v_ring}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn halving_doubling_rejects_non_power_of_two() {
        Schedule::halving_doubling_all_reduce(6, 1024);
    }

    #[test]
    fn halving_doubling_partners_are_symmetric() {
        let s = Schedule::halving_doubling_all_reduce(8, 8192);
        for (_, batch) in s.steps() {
            for t in &batch {
                assert!(
                    batch.iter().any(|u| u.src == t.dst && u.dst == t.src),
                    "every exchange must be mutual"
                );
            }
        }
    }

    #[test]
    fn trivial_groups_are_empty() {
        assert!(Schedule::ring_all_reduce(1, 1 << 30).transfers().is_empty());
        assert!(Schedule::pairwise_all_to_all(0, 42).transfers().is_empty());
        assert_eq!(Schedule::ring_all_reduce(1, 1).num_steps(), 0);
    }

    #[test]
    fn point_to_point_is_single_transfer() {
        let s = Schedule::point_to_point(2, 5, 999);
        assert_eq!(s.transfers().len(), 1);
        assert_eq!(s.total_bytes(), 999);
        assert_eq!(s.num_ranks(), 6);
    }

    #[test]
    fn ring_each_rank_sends_once_per_step() {
        let s = Schedule::ring_all_reduce(8, 1 << 16);
        for (_, batch) in s.steps() {
            let mut senders = std::collections::HashSet::new();
            let mut receivers = std::collections::HashSet::new();
            for t in &batch {
                assert!(senders.insert(t.src), "duplicate sender in step");
                assert!(receivers.insert(t.dst), "duplicate receiver in step");
            }
        }
    }
}
