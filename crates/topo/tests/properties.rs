//! Property tests over topologies and collective schedules.

use amped_topo::{verify::check_schedule, Collective, Schedule, Topology};
use proptest::prelude::*;

proptest! {
    #[test]
    fn all_generators_produce_well_formed_schedules(
        n in 1usize..=24,
        kib in 1u64..=128,
    ) {
        let bytes = kib * 1024;
        let schedules = vec![
            Schedule::ring_all_reduce(n, bytes),
            Schedule::ring_reduce_scatter(n, bytes),
            Schedule::ring_all_gather(n, bytes),
            Schedule::pairwise_all_to_all(n, bytes),
            Schedule::tree_broadcast(n, bytes),
        ];
        for s in schedules {
            prop_assert!(check_schedule(&s).is_empty(), "{s:?}");
        }
    }

    #[test]
    fn halving_doubling_is_well_formed_and_volume_optimal(
        pow in 1u32..=5,
        kib in 1u64..=128,
    ) {
        let n = 1usize << pow;
        let bytes = kib * 1024;
        let s = Schedule::halving_doubling_all_reduce(n, bytes);
        prop_assert!(check_schedule(&s).is_empty());
        let per_rank = s.max_bytes_per_rank() as f64;
        let optimal = 2.0 * (n as f64 - 1.0) / n as f64 * bytes as f64;
        prop_assert!(per_rank >= optimal - 1.0);
        prop_assert!(per_rank <= optimal + 2.0 * n as f64);
    }

    #[test]
    fn costs_are_bounded_and_consistent(
        n in 2usize..=64,
    ) {
        let topologies = [
            Topology::Ring,
            Topology::FullyConnected,
            Topology::Tree,
            Topology::Chain,
            Topology::Torus2d { rows: 2, cols: n.div_ceil(2) },
        ];
        for topo in topologies {
            for coll in [
                Collective::AllReduce,
                Collective::ReduceScatter,
                Collective::AllGather,
                Collective::AllToAll,
                Collective::Broadcast,
            ] {
                let c = topo.cost(coll, n);
                prop_assert!(c.factor > 0.0 && c.factor < 2.0, "{topo} {coll}");
                prop_assert!(c.steps >= 1);
                // The all-reduce moves exactly twice a reduce-scatter.
            }
            let ar = topo.cost(Collective::AllReduce, n).factor;
            let rs = topo.cost(Collective::ReduceScatter, n).factor;
            prop_assert!((ar - 2.0 * rs).abs() < 1e-12, "{topo}");
        }
    }

    #[test]
    fn time_is_monotone_in_payload_and_bandwidth(
        n in 2usize..=32,
        payload in 1.0f64..1e12,
    ) {
        let c = Topology::Ring.cost(Collective::AllReduce, n);
        let t1 = c.time(payload, 1e-6, 1e11);
        let t2 = c.time(payload * 2.0, 1e-6, 1e11);
        let t3 = c.time(payload, 1e-6, 2e11);
        prop_assert!(t2 > t1);
        prop_assert!(t3 < t1);
    }

    #[test]
    fn bigger_groups_never_shrink_allreduce_factors(
        n in 2usize..=63,
    ) {
        for topo in [Topology::Ring, Topology::FullyConnected, Topology::Tree] {
            let a = topo.cost(Collective::AllReduce, n).factor;
            let b = topo.cost(Collective::AllReduce, n + 1).factor;
            prop_assert!(b >= a, "{topo}: factor({n})={a} factor({})={b}", n + 1);
        }
    }
}
