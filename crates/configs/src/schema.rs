//! The scenario schema: one static description of every section and field
//! a scenario document may carry, used by *both* front-ends for
//! validation, flag mapping, and the self-describing `amped schema` /
//! `GET /v1/schema` documents.
//!
//! This is the single source of truth the resolution pipeline
//! ([`crate::pipeline`]) merges and validates against. Adding a new
//! scenario section means adding one [`SectionSpec`] row here (plus its
//! struct in [`crate::scenario`]); the unknown-key rejection, the flag
//! collector, the schema endpoint and the provenance labels all follow.

use amped_core::{Error, Result};
use serde_json::Value;

/// The version stamped into every JSON artifact (`schema_version`) and
/// into the schema document itself. Bump on any breaking change to the
/// scenario document or artifact shapes.
pub const SCHEMA_VERSION: &str = "1";

/// The JSON shape of one field (or scalar section).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FieldType {
    /// A non-negative integer.
    Integer,
    /// A number (integer or float).
    Number,
    /// An `[intra, inter]` pair of non-negative integers.
    Pair,
    /// A boolean.
    Boolean,
    /// A string.
    Text,
    /// A nested object (checked structurally, not by type).
    Object,
}

impl FieldType {
    /// The name used in the schema document.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            FieldType::Integer => "integer",
            FieldType::Number => "number",
            FieldType::Pair => "pair",
            FieldType::Boolean => "boolean",
            FieldType::Text => "string",
            FieldType::Object => "object",
        }
    }
}

/// One field inside an object-valued section.
#[derive(Debug, Clone, Copy)]
pub struct FieldSpec {
    /// The JSON key.
    pub name: &'static str,
    /// The value shape.
    pub ty: FieldType,
    /// Whether a complete scenario must carry it.
    pub required: bool,
    /// Whether `null` is an accepted value (optional fields).
    pub nullable: bool,
    /// The CLI flag (and serve query parameter) that sets this field.
    pub flag: Option<&'static str>,
    /// The default, rendered as documentation (informative only).
    pub default: Option<&'static str>,
    /// One-line description.
    pub doc: &'static str,
}

/// How one section's value behaves.
#[derive(Debug, Clone, Copy)]
pub enum SectionKind {
    /// Preset reference (`{ "preset": NAME }`) or inline spec.
    Spec {
        /// The fields of the inline form.
        inline: &'static [FieldSpec],
    },
    /// A plain object of fields, merged field-by-field across overlays.
    Object(&'static [FieldSpec]),
    /// A scalar JSON value, replaced wholesale.
    Scalar(FieldType),
}

/// One top-level scenario section.
#[derive(Debug, Clone, Copy)]
pub struct SectionSpec {
    /// The JSON key.
    pub name: &'static str,
    /// Whether a complete scenario must carry it.
    pub required: bool,
    /// The section shape and merge behavior.
    pub kind: SectionKind,
    /// The CLI flag that sets the whole section (preset/scalar sections).
    pub flag: Option<&'static str>,
    /// Informative default.
    pub default: Option<&'static str>,
    /// One-line description.
    pub doc: &'static str,
}

impl SectionSpec {
    /// Whether overlays merge this section field-by-field (object
    /// sections) instead of replacing it wholesale.
    #[must_use]
    pub fn merges_fields(&self) -> bool {
        matches!(self.kind, SectionKind::Object(_))
    }

    /// The field list, when the section is object-valued.
    #[must_use]
    pub fn fields(&self) -> &'static [FieldSpec] {
        match self.kind {
            SectionKind::Spec { inline } => inline,
            SectionKind::Object(fields) => fields,
            SectionKind::Scalar(_) => &[],
        }
    }
}

const MODEL_FIELDS: &[FieldSpec] = &[
    field("name", FieldType::Text, true, "model name"),
    field("num_layers", FieldType::Integer, true, "transformer layers (L)"),
    field("hidden_size", FieldType::Integer, true, "hidden dimensionality (h)"),
    field("num_heads", FieldType::Integer, true, "attention heads (a)"),
    field("seq_len", FieldType::Integer, true, "sequence length (s)"),
    field("vocab_size", FieldType::Integer, true, "vocabulary size (V)"),
    field("ffn_mult", FieldType::Number, true, "feed-forward expansion factor"),
    nullable_field("moe", FieldType::Object, "mixture-of-experts config, or null"),
    field("include_head", FieldType::Boolean, true, "model the output head"),
];

/// The nested `model.moe` object.
pub const MOE_FIELDS: &[FieldSpec] = &[
    field("num_experts", FieldType::Integer, true, "experts per MoE layer (E)"),
    field("top_k", FieldType::Integer, true, "experts activated per token"),
    field("layer_interval", FieldType::Integer, true, "every k-th layer is MoE"),
    field("capacity_factor", FieldType::Number, true, "per-expert capacity headroom"),
];

const ACCELERATOR_FIELDS: &[FieldSpec] = &[
    field("name", FieldType::Text, true, "accelerator name"),
    field("frequency_hz", FieldType::Number, true, "clock frequency (f)"),
    field("num_cores", FieldType::Integer, true, "cores / SMs (N_cores)"),
    field("mac_units_per_core", FieldType::Integer, true, "MAC units per core (N_FU)"),
    field("mac_unit_width", FieldType::Integer, true, "lanes per MAC unit (W_FU)"),
    field("mac_unit_bits", FieldType::Integer, true, "native MAC precision, bits"),
    field("nonlin_units", FieldType::Integer, true, "non-linear units"),
    field("nonlin_unit_width", FieldType::Integer, true, "lanes per non-linear unit"),
    field("nonlin_unit_bits", FieldType::Integer, true, "native non-linear precision, bits"),
    field("memory_bytes", FieldType::Number, true, "device memory capacity, bytes"),
    field("memory_bandwidth_bytes_per_sec", FieldType::Number, true, "memory bandwidth, B/s"),
    field("offchip_bandwidth_bits_per_sec", FieldType::Number, true, "off-chip I/O, bit/s"),
    field("tdp_watts", FieldType::Number, true, "TDP, watts"),
    field("idle_power_fraction", FieldType::Number, true, "idle power as a TDP fraction"),
];

const SYSTEM_FIELDS: &[FieldSpec] = &[
    flagged("nodes", FieldType::Integer, "nodes", Some("1"), "number of nodes"),
    flagged("accels_per_node", FieldType::Integer, "per-node", Some("8"), "accelerators per node"),
    flagged("intra_gbps", FieldType::Number, "intra-gbps", Some("2400"), "intra-node bandwidth per accelerator, Gbit/s"),
    flagged("inter_gbps", FieldType::Number, "inter-gbps", Some("200"), "per-NIC inter-node bandwidth, Gbit/s"),
    flagged("nics_per_node", FieldType::Integer, "nics", Some("accels_per_node"), "NICs per node"),
];

const PARALLELISM_FIELDS: &[FieldSpec] = &[
    pair_flagged("tp", "tp", "tensor-parallel [intra, inter] degrees"),
    pair_flagged("pp", "pp", "pipeline-parallel [intra, inter] degrees"),
    pair_flagged("dp", "dp", "data-parallel [intra, inter] degrees (default: fill the cluster)"),
    FieldSpec {
        name: "microbatches",
        ty: FieldType::Integer,
        required: false,
        nullable: true,
        flag: Some("microbatches"),
        default: None,
        doc: "explicit microbatch count (default: solved)",
    },
];

const TRAINING_FIELDS: &[FieldSpec] = &[
    flagged("global_batch", FieldType::Integer, "batch", Some("512"), "global batch size in sequences"),
    flagged("num_batches", FieldType::Integer, "batches", Some("1"), "number of optimizer steps"),
];

const RESILIENCE_FIELDS: &[FieldSpec] = &[
    flagged("node_mtbf_hours", FieldType::Number, "mtbf", None, "per-node mean time between failures, hours"),
    flagged("restart_s", FieldType::Number, "restart", Some("300"), "restart cost after a failure, seconds"),
    flagged("ckpt_write_gbps", FieldType::Number, "ckpt-gbps", Some("16"), "checkpoint write bandwidth per device, Gbit/s"),
    FieldSpec {
        name: "interval_s",
        ty: FieldType::Number,
        required: false,
        nullable: true,
        flag: Some("ckpt-interval"),
        default: Some("Young/Daly optimum"),
        doc: "fixed checkpoint interval, seconds",
    },
];

const INFERENCE_FIELDS: &[FieldSpec] = &[
    flagged("prompt_tokens", FieldType::Integer, "prompt", Some("512"), "prompt (prefill) length in tokens"),
    flagged("decode_tokens", FieldType::Integer, "decode", Some("128"), "generated (decode) tokens per request"),
    flagged("batch", FieldType::Integer, "serve-batch", Some("1"), "concurrent sequences per model replica"),
    flagged("kv_bits", FieldType::Integer, "kv-bits", Some("16"), "KV-cache element precision, bits"),
];

const FAILURE_DOMAIN_FIELDS: &[FieldSpec] = &[
    FieldSpec {
        name: "shape",
        ty: FieldType::Pair,
        required: false,
        nullable: false,
        flag: Some("domains"),
        default: Some("[8, 4]"),
        doc: "[nodes per rack, racks per pod]",
    },
    FieldSpec {
        name: "rack_mtbf_hours",
        ty: FieldType::Number,
        required: false,
        nullable: true,
        flag: Some("rack-mtbf"),
        default: None,
        doc: "per-rack mean time between outages, hours (null = no rack tier)",
    },
    FieldSpec {
        name: "pod_mtbf_hours",
        ty: FieldType::Number,
        required: false,
        nullable: true,
        flag: Some("pod-mtbf"),
        default: None,
        doc: "per-pod mean time between outages, hours (null = no pod tier)",
    },
    FieldSpec {
        name: "preemption_mtbf_hours",
        ty: FieldType::Number,
        required: false,
        nullable: true,
        flag: Some("preemption-mtbf"),
        default: None,
        doc: "per-node mean time between spot preemptions, hours (null = no preemption)",
    },
    flagged("regrow_delay_s", FieldType::Number, "regrow-delay", Some("600"), "capacity-regrow delay for elastic (shrink/regrow) recovery, seconds"),
    flagged("placement", FieldType::Text, "placement", Some("auto"), "device layout: auto, replica-major, or stage-major"),
];

const fn field(name: &'static str, ty: FieldType, required: bool, doc: &'static str) -> FieldSpec {
    FieldSpec { name, ty, required, nullable: false, flag: None, default: None, doc }
}

const fn nullable_field(name: &'static str, ty: FieldType, doc: &'static str) -> FieldSpec {
    FieldSpec { name, ty, required: false, nullable: true, flag: None, default: None, doc }
}

const fn flagged(
    name: &'static str,
    ty: FieldType,
    flag: &'static str,
    default: Option<&'static str>,
    doc: &'static str,
) -> FieldSpec {
    FieldSpec { name, ty, required: false, nullable: false, flag: Some(flag), default, doc }
}

const fn pair_flagged(name: &'static str, flag: &'static str, doc: &'static str) -> FieldSpec {
    FieldSpec {
        name,
        ty: FieldType::Pair,
        required: false,
        nullable: false,
        flag: Some(flag),
        default: Some("[1, 1]"),
        doc,
    }
}

/// Every top-level section, in canonical document order.
pub const SECTIONS: &[SectionSpec] = &[
    SectionSpec {
        name: "model",
        required: true,
        kind: SectionKind::Spec { inline: MODEL_FIELDS },
        flag: Some("model"),
        default: Some("gpt3-175b"),
        doc: "the transformer: { \"preset\": NAME } or an inline spec",
    },
    SectionSpec {
        name: "accelerator",
        required: true,
        kind: SectionKind::Spec { inline: ACCELERATOR_FIELDS },
        flag: Some("accel"),
        default: Some("a100"),
        doc: "the accelerator: { \"preset\": NAME } or an inline spec",
    },
    SectionSpec {
        name: "system",
        required: true,
        kind: SectionKind::Object(SYSTEM_FIELDS),
        flag: None,
        default: None,
        doc: "cluster shape and link speeds",
    },
    SectionSpec {
        name: "parallelism",
        required: true,
        kind: SectionKind::Object(PARALLELISM_FIELDS),
        flag: None,
        default: None,
        doc: "parallel degrees as [intra, inter] pairs",
    },
    SectionSpec {
        name: "training",
        required: true,
        kind: SectionKind::Object(TRAINING_FIELDS),
        flag: None,
        default: None,
        doc: "batch size and count",
    },
    SectionSpec {
        name: "precision_bits",
        required: false,
        kind: SectionKind::Scalar(FieldType::Integer),
        flag: Some("bits"),
        default: Some("16"),
        doc: "uniform operand precision in bits",
    },
    SectionSpec {
        name: "efficiency",
        required: false,
        kind: SectionKind::Scalar(FieldType::Number),
        flag: Some("eff"),
        default: Some("calibrated case-study curve"),
        doc: "constant efficiency override in (0, 1]",
    },
    SectionSpec {
        name: "activation_recompute",
        required: false,
        kind: SectionKind::Scalar(FieldType::Boolean),
        flag: Some("recompute"),
        default: Some("false"),
        doc: "enable activation recomputation",
    },
    SectionSpec {
        name: "resilience",
        required: false,
        kind: SectionKind::Object(RESILIENCE_FIELDS),
        flag: None,
        default: None,
        doc: "failure/checkpoint parameters for expected-time analysis",
    },
    SectionSpec {
        name: "failure_domains",
        required: false,
        kind: SectionKind::Object(FAILURE_DOMAIN_FIELDS),
        flag: None,
        default: None,
        doc: "correlated failure domains (rack/pod outage tiers, spot preemption, elastic recovery)",
    },
    SectionSpec {
        name: "inference",
        required: false,
        kind: SectionKind::Object(INFERENCE_FIELDS),
        flag: None,
        default: None,
        doc: "serving workload (prefill/decode request shape) for `amped infer`",
    },
];

/// Look up a section spec by its JSON key.
#[must_use]
pub fn section(name: &str) -> Option<&'static SectionSpec> {
    SECTIONS.iter().find(|s| s.name == name)
}

/// The section names in canonical order, comma-joined for error messages.
fn section_names() -> String {
    SECTIONS
        .iter()
        .map(|s| s.name)
        .collect::<Vec<_>>()
        .join(", ")
}

fn field_names(fields: &[FieldSpec]) -> String {
    fields.iter().map(|f| f.name).collect::<Vec<_>>().join(", ")
}

/// The CLI flag (serve query parameter) that sets `path`
/// (`"system.nodes"` → `"nodes"`, `"model"` → `"model"`), if any.
#[must_use]
pub fn flag_for_path(path: &str) -> Option<&'static str> {
    match path.split_once('.') {
        None => section(path)?.flag,
        Some((sec, fld)) => section(sec)?
            .fields()
            .iter()
            .find(|f| f.name == fld)
            .and_then(|f| f.flag),
    }
}

/// Whether a JSON value matches a field type (not checking nested
/// objects, which have their own specs).
fn type_matches(ty: FieldType, v: &Value) -> bool {
    match ty {
        FieldType::Integer => matches!(v, Value::Int(i) if *i >= 0),
        FieldType::Number => matches!(v, Value::Int(_) | Value::Float(_)),
        FieldType::Pair => match v.as_array() {
            Some(items) => {
                items.len() == 2 && items.iter().all(|i| matches!(i, Value::Int(n) if *n >= 0))
            }
            None => false,
        },
        FieldType::Boolean => matches!(v, Value::Bool(_)),
        FieldType::Text => matches!(v, Value::Str(_)),
        FieldType::Object => v.as_object().is_some(),
    }
}

fn describe(ty: FieldType) -> &'static str {
    match ty {
        FieldType::Integer => "a non-negative integer",
        FieldType::Number => "a number",
        FieldType::Pair => "an array of 2 elements (non-negative integers)",
        FieldType::Boolean => "a boolean",
        FieldType::Text => "a string",
        FieldType::Object => "an object",
    }
}

fn shown(v: &Value) -> String {
    serde_json::to_string(v).unwrap_or_else(|_| "<value>".to_string())
}

/// Check one field value against its spec, naming `path` in any failure.
fn check_field(path: &str, spec: &FieldSpec, v: &Value) -> Result<()> {
    if v.is_null() {
        if spec.nullable {
            return Ok(());
        }
        return Err(Error::usage(format!(
            "scenario.{path}: expected {}, got null",
            describe(spec.ty)
        )));
    }
    if !type_matches(spec.ty, v) {
        return Err(Error::usage(format!(
            "scenario.{path}: expected {}, got {}",
            describe(spec.ty),
            shown(v)
        )));
    }
    Ok(())
}

/// Check the keys and value shapes of one object section against a field
/// list: every key must be known, every value must match its type.
/// Missing keys are fine — overlays are partial by design.
fn check_object(section_path: &str, fields: &'static [FieldSpec], entries: &[(String, Value)]) -> Result<()> {
    for (key, value) in entries {
        let Some(spec) = fields.iter().find(|f| f.name == key) else {
            return Err(Error::usage(format!(
                "scenario.{section_path}: unknown field `{key}` (expected one of: {})",
                field_names(fields)
            )));
        };
        let path = format!("{section_path}.{key}");
        if spec.ty == FieldType::Object {
            // The only nested object today is `model.moe`.
            if let Some(nested) = value.as_object() {
                check_object(&path, MOE_FIELDS, nested)?;
            } else if !value.is_null() {
                return Err(Error::usage(format!(
                    "scenario.{path}: expected an object or null, got {}",
                    shown(value)
                )));
            }
        } else {
            check_field(&path, spec, value)?;
        }
    }
    Ok(())
}

/// Check a preset-or-inline section: a `preset` reference may carry no
/// other keys; an inline spec may only carry the inline fields.
fn check_spec_section(name: &str, inline: &'static [FieldSpec], entries: &[(String, Value)]) -> Result<()> {
    if entries.iter().any(|(k, _)| k == "preset") {
        if let Some((extra, _)) = entries.iter().find(|(k, _)| k != "preset") {
            return Err(Error::usage(format!(
                "scenario.{name}: unknown field `{extra}` alongside `preset` \
                 (a preset reference carries no other fields)"
            )));
        }
        let v = &entries.iter().find(|(k, _)| k == "preset").expect("checked").1;
        if v.as_str().is_none() {
            return Err(Error::usage(format!(
                "scenario.{name}.preset: expected a string, got {}",
                shown(v)
            )));
        }
        return Ok(());
    }
    check_object(name, inline, entries)
}

/// Validate a scenario document — or a *partial* overlay of one — against
/// the schema: the root must be an object, every section must be known,
/// every field inside a known section must be known and carry a value of
/// the right shape. Missing sections/fields are NOT errors here (overlays
/// are partial; completeness is checked after merging, by
/// [`crate::scenario::ScenarioConfig::from_document`]).
///
/// # Errors
///
/// Returns [`Error::Usage`] naming the offending `scenario.<section>` (and
/// field) path.
pub fn validate_fragment(doc: &Value) -> Result<()> {
    let entries = doc
        .as_object()
        .ok_or_else(|| Error::usage("scenario: the document root must be a JSON object"))?;
    for (key, value) in entries {
        let Some(spec) = section(key) else {
            return Err(Error::usage(format!(
                "scenario: unknown section `{key}` (expected one of: {})",
                section_names()
            )));
        };
        // `null` means "unset / remove" for any section in an overlay;
        // required-section enforcement happens on the merged document.
        if value.is_null() {
            continue;
        }
        match spec.kind {
            SectionKind::Spec { inline } => {
                if let Some(entries) = value.as_object() {
                    check_spec_section(spec.name, inline, entries)?;
                }
                // Non-object values fall through to the deserializer's
                // typed per-section error.
            }
            SectionKind::Object(fields) => {
                if let Some(entries) = value.as_object() {
                    check_object(spec.name, fields, entries)?;
                }
            }
            SectionKind::Scalar(ty) => {
                if !type_matches(ty, value) {
                    return Err(Error::usage(format!(
                        "scenario.{key}: expected {}, got {}",
                        describe(ty),
                        shown(value)
                    )));
                }
            }
        }
    }
    Ok(())
}

fn field_value(f: &FieldSpec) -> Value {
    let mut entries = vec![
        ("name".to_string(), Value::Str(f.name.to_string())),
        ("type".to_string(), Value::Str(f.ty.name().to_string())),
        ("required".to_string(), Value::Bool(f.required)),
        ("nullable".to_string(), Value::Bool(f.nullable)),
        ("doc".to_string(), Value::Str(f.doc.to_string())),
    ];
    if let Some(flag) = f.flag {
        entries.push(("flag".to_string(), Value::Str(format!("--{flag}"))));
    }
    if let Some(default) = f.default {
        entries.push(("default".to_string(), Value::Str(default.to_string())));
    }
    if f.name == "moe" {
        entries.push((
            "fields".to_string(),
            Value::Array(MOE_FIELDS.iter().map(field_value).collect()),
        ));
    }
    Value::Object(entries)
}

/// The versioned, self-describing schema document served by
/// `amped schema` and `GET /v1/schema`: every section, field, type, flag
/// mapping and preset name, generated from the same tables the validator
/// and the flag collector run on.
#[must_use]
pub fn schema_value() -> Value {
    let mut sections: Vec<(String, Value)> = Vec::with_capacity(SECTIONS.len());
    for s in SECTIONS {
        let mut entries = vec![
            ("required".to_string(), Value::Bool(s.required)),
            (
                "merge".to_string(),
                Value::Str(if s.merges_fields() { "fields" } else { "replace" }.to_string()),
            ),
            ("doc".to_string(), Value::Str(s.doc.to_string())),
        ];
        if let Some(flag) = s.flag {
            entries.push(("flag".to_string(), Value::Str(format!("--{flag}"))));
        }
        if let Some(default) = s.default {
            entries.push(("default".to_string(), Value::Str(default.to_string())));
        }
        match s.kind {
            SectionKind::Spec { inline } => {
                let presets: Vec<Value> = match s.name {
                    "model" => crate::registry::model_names(),
                    _ => crate::registry::accelerator_names(),
                }
                .iter()
                .map(|n| Value::Str((*n).to_string()))
                .collect();
                entries.push(("presets".to_string(), Value::Array(presets)));
                entries.push((
                    "fields".to_string(),
                    Value::Array(inline.iter().map(field_value).collect()),
                ));
            }
            SectionKind::Object(fields) => {
                entries.push((
                    "fields".to_string(),
                    Value::Array(fields.iter().map(field_value).collect()),
                ));
            }
            SectionKind::Scalar(ty) => {
                entries.push(("type".to_string(), Value::Str(ty.name().to_string())));
            }
        }
        sections.push((s.name.to_string(), Value::Object(entries)));
    }
    serde_json::json!({
        "schema_version": SCHEMA_VERSION,
        "layers": [
            "built-in defaults",
            "scenario preset (--preset / ?preset=)",
            "scenario file (--config / request body)",
            "flags (--<flag> / ?<flag>=)"
        ],
        "scenario": Value::Object(sections),
        "scenario_presets": Value::Array(
            crate::registry::scenario_names()
                .iter()
                .map(|n| Value::Str((*n).to_string()))
                .collect()
        ),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn err(json: &str) -> String {
        let doc: Value = serde_json::from_str(json).unwrap();
        let e = validate_fragment(&doc).unwrap_err();
        assert!(matches!(e, Error::Usage { .. }), "not a usage error: {e:?}");
        e.to_string()
    }

    #[test]
    fn partial_overlays_validate() {
        for json in [
            "{}",
            r#"{ "model": { "preset": "gpt3-175b" } }"#,
            r#"{ "system": { "nodes": 4 } }"#,
            r#"{ "parallelism": { "tp": [8, 1] } }"#,
            r#"{ "resilience": null, "efficiency": 0.5 }"#,
        ] {
            let doc: Value = serde_json::from_str(json).unwrap();
            validate_fragment(&doc).unwrap_or_else(|e| panic!("{json}: {e}"));
        }
    }

    #[test]
    fn unknown_sections_and_fields_are_named() {
        assert!(err(r#"{ "paralelism": {} }"#).contains("unknown section `paralelism`"));
        let msg = err(r#"{ "system": { "nodez": 4 } }"#);
        assert!(msg.contains("scenario.system: unknown field `nodez`"), "{msg}");
        assert!(msg.contains("nics_per_node"), "lists the valid fields: {msg}");
    }

    #[test]
    fn field_types_are_checked_with_paths() {
        let msg = err(r#"{ "system": { "nodes": "many" } }"#);
        assert!(msg.contains("scenario.system.nodes"), "{msg}");
        assert!(msg.contains("non-negative integer"), "{msg}");
        let msg = err(r#"{ "parallelism": { "tp": [1, 2, 3] } }"#);
        assert!(msg.contains("scenario.parallelism.tp"), "{msg}");
        assert!(msg.contains("2 elements"), "{msg}");
        let msg = err(r#"{ "training": { "global_batch": true } }"#);
        assert!(msg.contains("scenario.training.global_batch"), "{msg}");
        let msg = err(r#"{ "precision_bits": "high" }"#);
        assert!(msg.contains("scenario.precision_bits"), "{msg}");
        let msg = err(r#"{ "activation_recompute": 3 }"#);
        assert!(msg.contains("boolean"), "{msg}");
    }

    #[test]
    fn preset_references_reject_stray_fields() {
        let msg = err(r#"{ "model": { "preset": "gpt3-175b", "num_layers": 4 } }"#);
        assert!(msg.contains("scenario.model: unknown field `num_layers`"), "{msg}");
        assert!(msg.contains("alongside `preset`"), "{msg}");
        let msg = err(r#"{ "accelerator": { "preset": 42 } }"#);
        assert!(msg.contains("scenario.accelerator.preset"), "{msg}");
    }

    #[test]
    fn inline_specs_reject_unknown_fields_including_moe() {
        let msg = err(r#"{ "model": { "layers": 4 } }"#);
        assert!(msg.contains("scenario.model: unknown field `layers`"), "{msg}");
        let msg = err(r#"{ "model": { "moe": { "experts": 8 } } }"#);
        assert!(msg.contains("scenario.model.moe: unknown field `experts`"), "{msg}");
        let msg = err(r#"{ "accelerator": { "cores": 108 } }"#);
        assert!(msg.contains("scenario.accelerator: unknown field `cores`"), "{msg}");
    }

    #[test]
    fn flags_map_to_field_paths() {
        assert_eq!(flag_for_path("system.nodes"), Some("nodes"));
        assert_eq!(flag_for_path("system.accels_per_node"), Some("per-node"));
        assert_eq!(flag_for_path("model"), Some("model"));
        assert_eq!(flag_for_path("precision_bits"), Some("bits"));
        assert_eq!(flag_for_path("resilience.interval_s"), Some("ckpt-interval"));
        assert_eq!(flag_for_path("model.num_layers"), None);
        assert_eq!(flag_for_path("nonsense"), None);
    }

    #[test]
    fn schema_document_is_self_describing() {
        let schema = schema_value();
        assert_eq!(
            schema.get("schema_version").and_then(Value::as_str),
            Some(SCHEMA_VERSION)
        );
        let scenario = schema.get("scenario").unwrap().as_object().unwrap();
        assert_eq!(scenario.len(), SECTIONS.len());
        let model = schema.get("scenario").unwrap().get("model").unwrap();
        assert!(model
            .get("presets")
            .unwrap()
            .as_array()
            .unwrap()
            .iter()
            .any(|p| p.as_str() == Some("gpt3-175b")));
        let system = schema.get("scenario").unwrap().get("system").unwrap();
        let fields = system.get("fields").unwrap().as_array().unwrap();
        assert!(fields
            .iter()
            .any(|f| f.get("flag").and_then(Value::as_str) == Some("--per-node")));
        // Every shipped section spec round-trips: each field in the tables
        // appears in the rendered schema.
        for s in SECTIONS {
            let rendered = schema.get("scenario").unwrap().get(s.name).unwrap();
            match s.kind {
                SectionKind::Scalar(_) => assert!(rendered.get("type").is_some(), "{}", s.name),
                _ => assert_eq!(
                    rendered.get("fields").unwrap().as_array().unwrap().len(),
                    s.fields().len(),
                    "{}",
                    s.name
                ),
            }
        }
    }
}
