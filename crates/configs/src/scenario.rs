//! Scenario files: a complete (model, accelerator, system, parallelism,
//! training) bundle as one serde document, so experiments can be defined,
//! versioned and shared as JSON instead of code.

use amped_core::{
    AcceleratorSpec, EfficiencyModel, ElasticParams, EngineOptions, Error, FailureDomainTree,
    Link, Parallelism, Precision, ResilienceParams, Result, SystemSpec, TrainingConfig,
    TransformerModel,
};
use serde::{Deserialize, Serialize};

/// A self-contained experiment definition.
///
/// Presets can be referenced by name (`"preset:a100"`) or spelled out
/// inline; see [`ScenarioConfig::resolve`].
///
/// # Example
///
/// ```
/// use amped_configs::scenario::ScenarioConfig;
///
/// let json = r#"{
///   "model": { "preset": "megatron-145b" },
///   "accelerator": { "preset": "a100" },
///   "system": { "nodes": 128, "accels_per_node": 8,
///               "intra_gbps": 2400.0, "inter_gbps": 200.0, "nics_per_node": 8 },
///   "parallelism": { "tp": [8, 1], "pp": [1, 2], "dp": [1, 64] },
///   "training": { "global_batch": 8192, "num_batches": 10 },
///   "precision_bits": 16
/// }"#;
/// let scenario = ScenarioConfig::from_json(json).unwrap();
/// let resolved = scenario.resolve().unwrap();
/// assert_eq!(resolved.system.total_accelerators(), 1024);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScenarioConfig {
    /// The transformer (preset reference or inline spec).
    pub model: ModelRef,
    /// The accelerator (preset reference or inline spec).
    pub accelerator: AcceleratorRef,
    /// The cluster shape and links.
    pub system: SystemConfig,
    /// The parallelism mapping.
    pub parallelism: ParallelismConfig,
    /// Batch size and count.
    pub training: TrainingSection,
    /// Uniform precision in bits (default 16).
    #[serde(default = "default_bits")]
    pub precision_bits: u32,
    /// Constant efficiency override in (0, 1]; `None` uses the calibrated
    /// case-study curve.
    #[serde(default)]
    pub efficiency: Option<f64>,
    /// Enable activation recomputation (default false).
    #[serde(default)]
    pub activation_recompute: bool,
    /// Failure/checkpoint parameters for expected-time (goodput) analysis
    /// (optional; omitting it keeps the scenario purely fault-free).
    #[serde(default)]
    pub resilience: Option<ResilienceSection>,
    /// Correlated failure domains — rack/pod outage tiers, spot
    /// preemption, and elastic recovery (optional; requires `resilience`).
    #[serde(default)]
    pub failure_domains: Option<FailureDomainsSection>,
    /// Serving workload (prefill/decode request shape) for `amped infer`
    /// (optional; omitting it keeps the scenario training-only).
    #[serde(default)]
    pub inference: Option<InferenceSection>,
}

fn default_bits() -> u32 {
    16
}

/// Failure and checkpoint parameters as they appear in scenario files —
/// operator-facing units (hours, Gbit/s) that convert to the seconds and
/// bytes/s the core [`ResilienceParams`] model expects.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ResilienceSection {
    /// Per-node mean time between failures, hours (e.g. 4380 = 6 months).
    pub node_mtbf_hours: f64,
    /// Restart cost after a failure, seconds (default 300).
    #[serde(default = "default_restart_s")]
    pub restart_s: f64,
    /// Checkpoint write bandwidth per device, Gbit/s (default 16 = 2 GB/s).
    #[serde(default = "default_ckpt_gbps")]
    pub ckpt_write_gbps: f64,
    /// Fixed checkpoint interval, seconds (`None` = Young/Daly optimum).
    #[serde(default)]
    pub interval_s: Option<f64>,
}

fn default_restart_s() -> f64 {
    300.0
}

fn default_ckpt_gbps() -> f64 {
    16.0
}

impl ResilienceSection {
    /// The per-node MTBF in seconds.
    pub fn node_mtbf_s(&self) -> f64 {
        self.node_mtbf_hours * 3600.0
    }

    /// The checkpoint write bandwidth in bytes per second.
    pub fn ckpt_write_bytes_per_s(&self) -> f64 {
        self.ckpt_write_gbps * 1e9 / 8.0
    }

    /// Core-model parameters for a system of `units` failure units where
    /// each device checkpoints `ckpt_bytes` of state.
    ///
    /// # Errors
    ///
    /// Returns an error when the section's values are out of range
    /// (non-positive MTBF, negative restart, non-positive interval).
    pub fn params(&self, units: usize, ckpt_bytes: f64) -> Result<ResilienceParams> {
        let mut params = ResilienceParams::new(self.node_mtbf_s(), units)?
            .with_checkpoint_cost(ckpt_bytes / self.ckpt_write_bytes_per_s())
            .with_restart(self.restart_s);
        if let Some(interval) = self.interval_s {
            params = params.with_interval(interval);
        }
        params.validate()?;
        Ok(params)
    }
}

/// Correlated failure-domain parameters as they appear in scenario files —
/// operator-facing units (hours) that convert to the seconds-based core
/// [`FailureDomainTree`] and [`ElasticParams`] at resolve time. The tree's
/// node count always comes from the scenario's `system` section.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FailureDomainsSection {
    /// `[nodes_per_rack, racks_per_pod]` (default `[8, 4]`).
    #[serde(default = "default_shape")]
    pub shape: [usize; 2],
    /// Per-rack outage MTBF, hours (`None` = no rack outage tier).
    #[serde(default)]
    pub rack_mtbf_hours: Option<f64>,
    /// Per-pod outage MTBF, hours (`None` = no pod outage tier).
    #[serde(default)]
    pub pod_mtbf_hours: Option<f64>,
    /// Per-node spot-preemption MTBF, hours (`None` = not preemptible).
    #[serde(default)]
    pub preemption_mtbf_hours: Option<f64>,
    /// Capacity-regrow delay for elastic recovery, seconds (default 600).
    #[serde(default = "default_regrow_s")]
    pub regrow_delay_s: f64,
    /// Device layout: `auto` (default), `replica-major`, `stage-major`.
    #[serde(default = "default_placement")]
    pub placement: String,
}

fn default_shape() -> [usize; 2] {
    [8, 4]
}

fn default_regrow_s() -> f64 {
    600.0
}

fn default_placement() -> String {
    "auto".to_string()
}

impl FailureDomainsSection {
    /// The core failure-domain tree for a cluster of `num_nodes` nodes.
    ///
    /// # Errors
    ///
    /// Returns an error when the shape or a tier MTBF is out of range.
    pub fn tree(&self, num_nodes: usize) -> Result<FailureDomainTree> {
        let mut tree = FailureDomainTree::new(num_nodes, self.shape[0], self.shape[1])?;
        if let Some(hours) = self.rack_mtbf_hours {
            tree = tree.with_rack_mtbf(hours * 3600.0);
        }
        if let Some(hours) = self.pod_mtbf_hours {
            tree = tree.with_pod_mtbf(hours * 3600.0);
        }
        tree.validate()?;
        Ok(tree)
    }

    /// The elastic-capacity parameters (regrow delay plus any preemption
    /// tier).
    ///
    /// # Errors
    ///
    /// Returns an error when the regrow delay or preemption MTBF is out of
    /// range.
    pub fn elastic(&self) -> Result<ElasticParams> {
        let mut elastic = ElasticParams::new(self.regrow_delay_s);
        if let Some(hours) = self.preemption_mtbf_hours {
            elastic = elastic.with_preemption_mtbf(hours * 3600.0);
        }
        elastic.validate()?;
        Ok(elastic)
    }

    /// Validate the placement spelling (`auto`, `replica-major`/`replica`,
    /// `stage-major`/`stage`).
    ///
    /// # Errors
    ///
    /// Returns [`Error::Usage`] for any other spelling.
    pub fn check_placement(&self) -> Result<()> {
        match self.placement.as_str() {
            "auto" | "replica-major" | "replica" | "stage-major" | "stage" => Ok(()),
            other => Err(Error::usage(format!(
                "scenario.failure_domains.placement: unknown layout `{other}` \
                 (expected auto, replica-major, or stage-major)"
            ))),
        }
    }
}

/// The serving workload as it appears in scenario files: the request
/// shape `amped infer` and `POST /v1/infer` price. Converts to the core
/// [`amped_core::InferenceConfig`] at analysis time.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct InferenceSection {
    /// Prompt (prefill) length in tokens (default 512).
    #[serde(default = "default_prompt_tokens")]
    pub prompt_tokens: usize,
    /// Generated (decode) tokens per request (default 128).
    #[serde(default = "default_decode_tokens")]
    pub decode_tokens: usize,
    /// Concurrent sequences per model replica (default 1).
    #[serde(default = "default_serve_batch")]
    pub batch: usize,
    /// KV-cache element precision in bits (default 16).
    #[serde(default = "default_kv_bits")]
    pub kv_bits: u32,
}

fn default_prompt_tokens() -> usize {
    512
}

fn default_decode_tokens() -> usize {
    128
}

fn default_serve_batch() -> usize {
    1
}

fn default_kv_bits() -> u32 {
    16
}

impl Default for InferenceSection {
    fn default() -> Self {
        InferenceSection {
            prompt_tokens: default_prompt_tokens(),
            decode_tokens: default_decode_tokens(),
            batch: default_serve_batch(),
            kv_bits: default_kv_bits(),
        }
    }
}

impl InferenceSection {
    /// The core request configuration.
    ///
    /// # Errors
    ///
    /// Returns an error when a token count, batch or precision is out of
    /// range.
    pub fn params(&self) -> Result<amped_core::InferenceConfig> {
        amped_core::InferenceConfig::new(self.prompt_tokens, self.decode_tokens, self.batch)?
            .with_kv_bits(self.kv_bits)
    }
}

/// A model either by preset name or as an inline spec.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(untagged)]
pub enum ModelRef {
    /// `{ "preset": "gpt3-175b" }`
    Preset {
        /// Preset name from [`crate::registry::model_names`].
        preset: String,
    },
    /// A full inline [`TransformerModel`].
    Inline(TransformerModel),
}

/// An accelerator either by preset name or as an inline spec.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(untagged)]
pub enum AcceleratorRef {
    /// `{ "preset": "a100" }`
    Preset {
        /// Preset name from [`crate::registry::accelerator_names`].
        preset: String,
    },
    /// A full inline [`AcceleratorSpec`].
    Inline(AcceleratorSpec),
}

/// Cluster shape plus link speeds in Gbit/s.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SystemConfig {
    /// Number of nodes.
    pub nodes: usize,
    /// Accelerators per node.
    pub accels_per_node: usize,
    /// Intra-node bandwidth per accelerator, Gbit/s.
    pub intra_gbps: f64,
    /// Per-NIC inter-node bandwidth, Gbit/s.
    pub inter_gbps: f64,
    /// NICs per node.
    pub nics_per_node: usize,
}

/// Parallel degrees as `[intra, inter]` pairs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ParallelismConfig {
    /// Tensor-parallel `[intra, inter]`.
    #[serde(default = "one_one")]
    pub tp: [usize; 2],
    /// Pipeline-parallel `[intra, inter]`.
    #[serde(default = "one_one")]
    pub pp: [usize; 2],
    /// Data-parallel `[intra, inter]`.
    #[serde(default = "one_one")]
    pub dp: [usize; 2],
    /// Explicit microbatch count (optional).
    #[serde(default)]
    pub microbatches: Option<usize>,
}

fn one_one() -> [usize; 2] {
    [1, 1]
}

/// Batch size and count.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TrainingSection {
    /// Global batch size in sequences.
    pub global_batch: usize,
    /// Number of optimizer steps.
    pub num_batches: u64,
}

/// A [`ScenarioConfig`] with every reference resolved into concrete specs,
/// ready to feed the estimator or the simulator.
#[derive(Debug, Clone)]
pub struct ResolvedScenario {
    /// The transformer.
    pub model: TransformerModel,
    /// The accelerator.
    pub accelerator: AcceleratorSpec,
    /// The cluster.
    pub system: SystemSpec,
    /// The mapping.
    pub parallelism: Parallelism,
    /// The run.
    pub training: TrainingConfig,
    /// Operand precisions.
    pub precision: Precision,
    /// Microbatch-efficiency model.
    pub efficiency: EfficiencyModel,
    /// Engine options.
    pub options: EngineOptions,
    /// Failure/checkpoint parameters, validated at resolve time.
    pub resilience: Option<ResilienceSection>,
    /// Correlated failure domains, validated at resolve time.
    pub failure_domains: Option<FailureDomainsSection>,
    /// Serving workload, validated at resolve time.
    pub inference: Option<InferenceSection>,
}

impl ResolvedScenario {
    /// The specification half of the scenario as an owned
    /// [`amped_core::Scenario`] — everything a
    /// [`CostBackend`](amped_core::CostBackend) needs except the
    /// [`TrainingConfig`], which `evaluate` takes separately so one
    /// scenario can price many runs.
    pub fn to_scenario(&self) -> amped_core::Scenario {
        amped_core::Scenario::new(
            self.model.clone(),
            self.accelerator.clone(),
            self.system.clone(),
            self.parallelism,
        )
        .with_precision(self.precision)
        .with_efficiency(self.efficiency.clone())
        .with_options(self.options)
    }
}

/// Deserialize a required top-level section, naming it in any failure.
fn required_section<T: serde::Deserialize>(doc: &serde_json::Value, section: &str) -> Result<T> {
    match doc.get(section) {
        None => Err(Error::usage(format!(
            "scenario: missing required section `{section}`"
        ))),
        Some(v) => {
            T::from_value(v).map_err(|e| Error::usage(format!("scenario.{section}: {e}")))
        }
    }
}

/// Deserialize an optional top-level section (`null` counts as absent),
/// naming it in any failure.
fn optional_section<T: serde::Deserialize>(
    doc: &serde_json::Value,
    section: &str,
) -> Result<Option<T>> {
    match doc.get(section) {
        None | Some(serde_json::Value::Null) => Ok(None),
        Some(v) => T::from_value(v)
            .map(Some)
            .map_err(|e| Error::usage(format!("scenario.{section}: {e}"))),
    }
}

impl ScenarioConfig {
    /// Parse a scenario from JSON.
    ///
    /// Parsing is per-section so failures are typed [`Error::Usage`]
    /// values naming the offending section and field — the same message
    /// the CLI prints (exit code 2) and the HTTP API returns (status 400):
    ///
    /// ```
    /// use amped_configs::scenario::ScenarioConfig;
    ///
    /// let err = ScenarioConfig::from_json(r#"{"model": {"preset": "gpt3-175b"}}"#).unwrap_err();
    /// assert!(err.to_string().contains("missing required section `accelerator`"));
    /// ```
    ///
    /// # Errors
    ///
    /// Returns [`Error::Usage`] for malformed JSON, a non-object document
    /// root, unknown top-level sections, missing required sections, or
    /// section bodies that fail to deserialize.
    pub fn from_json(json: &str) -> Result<Self> {
        let doc: serde_json::Value = serde_json::from_str(json)
            .map_err(|e| Error::usage(format!("scenario: malformed JSON: {e}")))?;
        Self::from_document(&doc)
    }

    /// Parse a scenario from an already-parsed JSON document (see
    /// [`ScenarioConfig::from_json`] for the error contract).
    ///
    /// # Errors
    ///
    /// Returns [`Error::Usage`] naming the offending section/field.
    pub fn from_document(doc: &serde_json::Value) -> Result<Self> {
        // One shared schema pass for both front-ends: root shape, known
        // sections, known fields, field types — typed Usage errors naming
        // the `scenario.<section>.<field>` path.
        crate::schema::validate_fragment(doc)?;
        Ok(ScenarioConfig {
            model: required_section(doc, "model")?,
            accelerator: required_section(doc, "accelerator")?,
            system: required_section(doc, "system")?,
            parallelism: required_section(doc, "parallelism")?,
            training: required_section(doc, "training")?,
            precision_bits: optional_section(doc, "precision_bits")?.unwrap_or_else(default_bits),
            efficiency: optional_section(doc, "efficiency")?,
            activation_recompute: optional_section(doc, "activation_recompute")?.unwrap_or(false),
            resilience: optional_section(doc, "resilience")?,
            failure_domains: optional_section(doc, "failure_domains")?,
            inference: optional_section(doc, "inference")?,
        })
    }

    /// Serialize to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("scenario serializes")
    }

    /// Resolve preset references and validate everything.
    ///
    /// # Errors
    ///
    /// Returns an error for unknown preset names or specs that fail their
    /// own validation.
    pub fn resolve(&self) -> Result<ResolvedScenario> {
        let model = match &self.model {
            ModelRef::Preset { preset } => crate::registry::model(preset).ok_or_else(|| {
                Error::usage(format!("scenario.model: unknown model preset `{preset}`"))
            })?,
            ModelRef::Inline(m) => m.clone(),
        };
        let accelerator = match &self.accelerator {
            AcceleratorRef::Preset { preset } => {
                crate::registry::accelerator(preset).ok_or_else(|| {
                    Error::usage(format!(
                        "scenario.accelerator: unknown accelerator preset `{preset}`"
                    ))
                })?
            }
            AcceleratorRef::Inline(a) => a.clone(),
        };
        // Same link construction as every NVLink-class intra preset:
        // custom bandwidth, but the fully-connected intra topology (the
        // interconnect presets and the CLI's flag path always used it;
        // dropping it here was a silent front-end divergence).
        let system = SystemSpec::new(
            self.system.nodes,
            self.system.accels_per_node,
            Link::new(crate::interconnects::nvlink3().latency_s, self.system.intra_gbps * 1e9)
                .with_topology(crate::interconnects::nvlink3().topology),
            Link::new(
                crate::interconnects::infiniband_hdr().latency_s,
                self.system.inter_gbps * 1e9,
            ),
            self.system.nics_per_node,
        )?;
        let mut builder = Parallelism::builder();
        builder
            .tp(self.parallelism.tp[0], self.parallelism.tp[1])
            .pp(self.parallelism.pp[0], self.parallelism.pp[1])
            .dp(self.parallelism.dp[0], self.parallelism.dp[1]);
        if let Some(n) = self.parallelism.microbatches {
            builder.microbatches(amped_core::MicrobatchPolicy::Explicit(n));
        }
        let parallelism = builder.build()?;
        parallelism.validate_against(&system, &model)?;
        let training =
            TrainingConfig::new(self.training.global_batch, self.training.num_batches)?;
        let efficiency = match self.efficiency {
            Some(e) => EfficiencyModel::Constant(e),
            None => crate::efficiency::case_study(),
        };
        efficiency.validate()?;
        if let Some(resilience) = &self.resilience {
            // Surface bad failure parameters here, with zero checkpoint
            // state — the real per-device bytes arrive from the memory
            // model at analysis time.
            resilience.params(system.num_nodes(), 0.0)?;
        }
        if let Some(domains) = &self.failure_domains {
            if self.resilience.is_none() {
                return Err(Error::usage(
                    "scenario.failure_domains: requires a `resilience` section \
                     (the base node-failure model the domain tiers extend)",
                ));
            }
            domains.tree(system.num_nodes())?;
            domains.elastic()?;
            domains.check_placement()?;
        }
        if let Some(inference) = &self.inference {
            // Surface bad request shapes here so both front-ends reject
            // them with the same `scenario.inference` message.
            inference
                .params()
                .map_err(|e| Error::usage(format!("scenario.inference: {e}")))?;
        }
        Ok(ResolvedScenario {
            model,
            accelerator,
            system,
            parallelism,
            training,
            precision: Precision::uniform(self.precision_bits),
            efficiency,
            options: EngineOptions {
                activation_recompute: self.activation_recompute,
                ..Default::default()
            },
            resilience: self.resilience,
            failure_domains: self.failure_domains.clone(),
            inference: self.inference,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"{
        "model": { "preset": "megatron-145b" },
        "accelerator": { "preset": "a100" },
        "system": { "nodes": 16, "accels_per_node": 8,
                    "intra_gbps": 2400.0, "inter_gbps": 200.0, "nics_per_node": 8 },
        "parallelism": { "tp": [8, 1], "dp": [1, 16] },
        "training": { "global_batch": 2048, "num_batches": 5 }
    }"#;

    #[test]
    fn sample_resolves_and_estimates() {
        let s = ScenarioConfig::from_json(SAMPLE).unwrap().resolve().unwrap();
        assert_eq!(s.system.total_accelerators(), 128);
        assert_eq!(s.parallelism.tp(), 8);
        let e = amped_core::Estimator::new(
            &s.model,
            &s.accelerator,
            &s.system,
            &s.parallelism,
        )
        .with_precision(s.precision)
        .with_efficiency(s.efficiency)
        .with_options(s.options)
        .estimate(&s.training)
        .unwrap();
        assert!(e.total_time.get() > 0.0);
    }

    #[test]
    fn resolved_scenario_converts_to_a_backend_scenario() {
        use amped_core::CostBackend;
        let s = ScenarioConfig::from_json(SAMPLE).unwrap().resolve().unwrap();
        let scenario = s.to_scenario();
        let via_backend = amped_core::AnalyticalBackend
            .evaluate(&scenario, &s.training)
            .unwrap();
        let via_estimator = amped_core::Estimator::new(
            &s.model,
            &s.accelerator,
            &s.system,
            &s.parallelism,
        )
        .with_precision(s.precision)
        .with_efficiency(s.efficiency.clone())
        .with_options(s.options)
        .estimate_cached(&mut amped_core::EstimateCache::new(), &s.training)
        .unwrap();
        assert_eq!(
            via_backend.total_time.get().to_bits(),
            via_estimator.total_time.get().to_bits()
        );
    }

    #[test]
    fn json_roundtrip_preserves_the_scenario() {
        let s = ScenarioConfig::from_json(SAMPLE).unwrap();
        let again = ScenarioConfig::from_json(&s.to_json()).unwrap();
        assert_eq!(again.training.global_batch, 2048);
        assert_eq!(again.precision_bits, 16);
    }

    #[test]
    fn unknown_presets_are_reported() {
        let bad = SAMPLE.replace("megatron-145b", "nonexistent");
        let err = ScenarioConfig::from_json(&bad).unwrap().resolve().unwrap_err();
        assert!(err.to_string().contains("nonexistent"));
    }

    #[test]
    fn inline_model_works() {
        let json = r#"{
            "model": { "name": "inline", "num_layers": 4, "hidden_size": 256,
                       "num_heads": 8, "seq_len": 64, "vocab_size": 1000,
                       "ffn_mult": 4.0, "moe": null, "include_head": true },
            "accelerator": { "preset": "v100" },
            "system": { "nodes": 1, "accels_per_node": 4,
                        "intra_gbps": 2400.0, "inter_gbps": 100.0, "nics_per_node": 1 },
            "parallelism": { "dp": [4, 1] },
            "training": { "global_batch": 16, "num_batches": 1 }
        }"#;
        let s = ScenarioConfig::from_json(json).unwrap().resolve().unwrap();
        assert_eq!(s.model.num_layers(), 4);
    }

    #[test]
    fn invalid_mapping_rejected_at_resolve() {
        let bad = SAMPLE.replace("\"tp\": [8, 1]", "\"tp\": [4, 1]");
        assert!(ScenarioConfig::from_json(&bad).unwrap().resolve().is_err());
    }

    #[test]
    fn malformed_json_is_an_error() {
        assert!(ScenarioConfig::from_json("{not json").is_err());
    }

    /// Every malformed fixture must fail as a typed usage error whose
    /// message names the offending section (and field where applicable) —
    /// the contract the CLI (exit code 2) and the HTTP API (status 400)
    /// both surface verbatim.
    fn usage_message(json: &str) -> String {
        let err = ScenarioConfig::from_json(json).unwrap_err();
        assert!(matches!(err, Error::Usage { .. }), "not a usage error: {err:?}");
        err.to_string()
    }

    #[test]
    fn malformed_json_names_the_parse_failure() {
        let msg = usage_message("{not json");
        assert!(msg.contains("malformed"), "{msg}");
    }

    #[test]
    fn non_object_root_is_reported() {
        let msg = usage_message("[1, 2, 3]");
        assert!(msg.contains("document root"), "{msg}");
    }

    #[test]
    fn unknown_section_is_named() {
        let bad = SAMPLE.replace("\"parallelism\"", "\"paralelism\"");
        let msg = usage_message(&bad);
        assert!(msg.contains("unknown section `paralelism`"), "{msg}");
    }

    #[test]
    fn missing_section_is_named() {
        let bad = r#"{
            "model": { "preset": "megatron-145b" },
            "accelerator": { "preset": "a100" },
            "system": { "nodes": 16, "accels_per_node": 8,
                        "intra_gbps": 2400.0, "inter_gbps": 200.0, "nics_per_node": 8 },
            "parallelism": { "tp": [8, 1], "dp": [1, 16] }
        }"#;
        let msg = usage_message(bad);
        assert!(msg.contains("missing required section `training`"), "{msg}");
    }

    #[test]
    fn missing_field_names_section_and_field() {
        let bad = SAMPLE.replace("\"nodes\": 16, ", "");
        let msg = usage_message(&bad);
        assert!(msg.contains("scenario.system"), "{msg}");
        assert!(msg.contains("`nodes`"), "{msg}");
    }

    #[test]
    fn wrong_field_type_names_the_section() {
        let bad = SAMPLE.replace("\"global_batch\": 2048", "\"global_batch\": \"large\"");
        let msg = usage_message(&bad);
        assert!(msg.contains("scenario.training"), "{msg}");
    }

    #[test]
    fn wrong_degree_arity_names_the_section() {
        let bad = SAMPLE.replace("\"tp\": [8, 1]", "\"tp\": [8, 1, 1]");
        let msg = usage_message(&bad);
        assert!(msg.contains("scenario.parallelism"), "{msg}");
        assert!(msg.contains("2 elements"), "{msg}");
    }

    #[test]
    fn wrong_resilience_type_names_the_section() {
        let bad = SAMPLE.replace(
            "\"training\": { \"global_batch\": 2048, \"num_batches\": 5 }",
            "\"training\": { \"global_batch\": 2048, \"num_batches\": 5 },\n  \"resilience\": { \"node_mtbf_hours\": \"six months\" }",
        );
        let msg = usage_message(&bad);
        assert!(msg.contains("scenario.resilience"), "{msg}");
    }

    #[test]
    fn null_optional_sections_are_absent() {
        let with_nulls = SAMPLE.replace(
            "\"training\": { \"global_batch\": 2048, \"num_batches\": 5 }",
            "\"training\": { \"global_batch\": 2048, \"num_batches\": 5 },\n  \"efficiency\": null,\n  \"resilience\": null",
        );
        let s = ScenarioConfig::from_json(&with_nulls).unwrap();
        assert!(s.efficiency.is_none());
        assert!(s.resilience.is_none());
    }

    #[test]
    fn resilience_section_resolves_with_defaults() {
        let json = SAMPLE.replace(
            "\"training\": { \"global_batch\": 2048, \"num_batches\": 5 }",
            "\"training\": { \"global_batch\": 2048, \"num_batches\": 5 },\n         \"resilience\": { \"node_mtbf_hours\": 4380.0 }",
        );
        let s = ScenarioConfig::from_json(&json).unwrap().resolve().unwrap();
        let r = s.resilience.expect("section carried through");
        assert_eq!(r.node_mtbf_s(), 4380.0 * 3600.0);
        assert_eq!(r.restart_s, 300.0);
        assert_eq!(r.ckpt_write_bytes_per_s(), 2e9);
        assert!(r.interval_s.is_none());
        // Converting to core params: 16 nodes, 10 GB of state per device.
        let params = r.params(16, 10e9).unwrap();
        assert!((params.system_mtbf_s() - 4380.0 * 3600.0 / 16.0).abs() < 1e-6);
        assert!((params.ckpt_write_s - 5.0).abs() < 1e-12);
    }

    #[test]
    fn scenarios_without_resilience_resolve_to_none() {
        let s = ScenarioConfig::from_json(SAMPLE).unwrap().resolve().unwrap();
        assert!(s.resilience.is_none());
    }

    #[test]
    fn failure_domains_resolve_with_defaults_and_convert_to_core_types() {
        let json = SAMPLE.replace(
            "\"training\": { \"global_batch\": 2048, \"num_batches\": 5 }",
            "\"training\": { \"global_batch\": 2048, \"num_batches\": 5 },\n         \"resilience\": { \"node_mtbf_hours\": 4380.0 },\n         \"failure_domains\": { \"rack_mtbf_hours\": 720.0, \"preemption_mtbf_hours\": 168.0 }",
        );
        let s = ScenarioConfig::from_json(&json).unwrap().resolve().unwrap();
        let fd = s.failure_domains.expect("section carried through");
        assert_eq!(fd.shape, [8, 4]);
        assert_eq!(fd.regrow_delay_s, 600.0);
        assert_eq!(fd.placement, "auto");
        let tree = fd.tree(s.system.num_nodes()).unwrap();
        assert_eq!(tree.num_nodes, 16);
        assert_eq!(tree.num_racks(), 2);
        assert_eq!(tree.rack_mtbf_s, Some(720.0 * 3600.0));
        assert!(tree.pod_mtbf_s.is_none());
        let elastic = fd.elastic().unwrap();
        assert_eq!(elastic.preemption_mtbf_s, Some(168.0 * 3600.0));
        assert_eq!(elastic.regrow_delay_s, 600.0);
    }

    #[test]
    fn failure_domains_without_resilience_are_rejected() {
        let json = SAMPLE.replace(
            "\"training\": { \"global_batch\": 2048, \"num_batches\": 5 }",
            "\"training\": { \"global_batch\": 2048, \"num_batches\": 5 },\n         \"failure_domains\": { \"rack_mtbf_hours\": 720.0 }",
        );
        let msg = ScenarioConfig::from_json(&json)
            .unwrap()
            .resolve()
            .unwrap_err()
            .to_string();
        assert!(msg.contains("requires a `resilience` section"), "{msg}");
    }

    #[test]
    fn bad_placement_spelling_is_rejected_at_resolve() {
        let json = SAMPLE.replace(
            "\"training\": { \"global_batch\": 2048, \"num_batches\": 5 }",
            "\"training\": { \"global_batch\": 2048, \"num_batches\": 5 },\n         \"resilience\": { \"node_mtbf_hours\": 4380.0 },\n         \"failure_domains\": { \"placement\": \"diagonal\" }",
        );
        let msg = ScenarioConfig::from_json(&json)
            .unwrap()
            .resolve()
            .unwrap_err()
            .to_string();
        assert!(msg.contains("unknown layout `diagonal`"), "{msg}");
    }

    #[test]
    fn bad_resilience_parameters_are_rejected_at_resolve() {
        let json = SAMPLE.replace(
            "\"training\": { \"global_batch\": 2048, \"num_batches\": 5 }",
            "\"training\": { \"global_batch\": 2048, \"num_batches\": 5 },\n         \"resilience\": { \"node_mtbf_hours\": -1.0 }",
        );
        assert!(ScenarioConfig::from_json(&json).unwrap().resolve().is_err());
    }

    #[test]
    fn inference_section_resolves_with_defaults_and_converts() {
        let json = SAMPLE.replace(
            "\"training\": { \"global_batch\": 2048, \"num_batches\": 5 }",
            "\"training\": { \"global_batch\": 2048, \"num_batches\": 5 },\n         \"inference\": { \"prompt_tokens\": 1024, \"batch\": 8 }",
        );
        let s = ScenarioConfig::from_json(&json).unwrap().resolve().unwrap();
        let section = s.inference.expect("section carried through");
        assert_eq!(section.prompt_tokens, 1024);
        assert_eq!(section.decode_tokens, 128); // serde default
        assert_eq!(section.batch, 8);
        assert_eq!(section.kv_bits, 16); // serde default
        let cfg = section.params().unwrap();
        assert_eq!(cfg.prompt_tokens(), 1024);
        assert_eq!(cfg.max_context(), 1152);
        assert_eq!(cfg.kv_bits(), 16);
    }

    #[test]
    fn inference_without_the_section_is_absent() {
        let s = ScenarioConfig::from_json(SAMPLE).unwrap().resolve().unwrap();
        assert!(s.inference.is_none());
    }

    #[test]
    fn bad_inference_shapes_are_rejected_at_resolve() {
        let json = SAMPLE.replace(
            "\"training\": { \"global_batch\": 2048, \"num_batches\": 5 }",
            "\"training\": { \"global_batch\": 2048, \"num_batches\": 5 },\n         \"inference\": { \"prompt_tokens\": 0 }",
        );
        let msg = ScenarioConfig::from_json(&json)
            .unwrap()
            .resolve()
            .unwrap_err()
            .to_string();
        assert!(msg.contains("scenario.inference"), "{msg}");
    }
}
