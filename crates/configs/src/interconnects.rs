//! Interconnect presets: intra-node fabrics and inter-node NICs.
//!
//! All bandwidths are **bits per second per endpoint** (per accelerator for
//! intra-node fabrics, per NIC for inter-node networks), matching the
//! `BW_intra`/`BW_inter` convention of the paper's equations.

use amped_core::Link;
use amped_topo::Topology;

/// NVLink 2 (V100 generation): 300 GB/s aggregate per GPU = 2.4 Tbit/s,
/// switched through NVSwitch on HGX-2.
pub fn nvlink2() -> Link {
    Link::new(5e-6, 2.4e12).with_topology(Topology::FullyConnected)
}

/// NVLink 3 (A100 generation, Table IV's `BW_intra` = 2.4 Tbit/s).
pub fn nvlink3() -> Link {
    Link::new(5e-6, 2.4e12).with_topology(Topology::FullyConnected)
}

/// NVLink 4 (H100 generation, Table IV's `BW_intra` = 3.6 Tbit/s).
pub fn nvlink4() -> Link {
    Link::new(4e-6, 3.6e12).with_topology(Topology::FullyConnected)
}

/// PCIe 3.0 x16: 16 GB/s = 128 Gbit/s per direction (the GPipe validation
/// interconnect), ring-ordered peer transfers.
pub fn pcie3() -> Link {
    Link::new(8e-6, 128e9).with_topology(Topology::Ring)
}

/// InfiniBand EDR: 100 Gbit/s per NIC (case study II's low-end network).
pub fn infiniband_edr() -> Link {
    Link::new(1.2e-5, 100e9).with_topology(Topology::Ring)
}

/// InfiniBand HDR: 200 Gbit/s per NIC (case study I's cluster network).
pub fn infiniband_hdr() -> Link {
    Link::new(1e-5, 200e9).with_topology(Topology::Ring)
}

/// InfiniBand NDR: 400 Gbit/s per NIC (case study III's reference network).
pub fn infiniband_ndr() -> Link {
    Link::new(1e-5, 400e9).with_topology(Topology::Ring)
}

/// An optical communication substrate inside the node (case study III):
/// every accelerator connects at its full off-chip bandwidth
/// `offchip_bw_bps` through a passive optical crossbar with sub-microsecond
/// latency.
pub fn optical_substrate(offchip_bw_bps: f64) -> Link {
    Link::new(2e-7, offchip_bw_bps).with_topology(Topology::FullyConnected)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bandwidth_ordering() {
        assert!(pcie3().bandwidth_bits_per_sec < nvlink2().bandwidth_bits_per_sec);
        assert!(infiniband_edr().bandwidth_bits_per_sec < infiniband_hdr().bandwidth_bits_per_sec);
        assert!(infiniband_hdr().bandwidth_bits_per_sec < infiniband_ndr().bandwidth_bits_per_sec);
        assert!(nvlink3().bandwidth_bits_per_sec < nvlink4().bandwidth_bits_per_sec);
    }

    #[test]
    fn all_links_validate() {
        for l in [
            nvlink2(),
            nvlink3(),
            nvlink4(),
            pcie3(),
            infiniband_edr(),
            infiniband_hdr(),
            infiniband_ndr(),
            optical_substrate(2.4e12),
        ] {
            l.validate().unwrap();
        }
    }

    #[test]
    fn optical_takes_offchip_bandwidth() {
        let o = optical_substrate(9.9e12);
        assert_eq!(o.bandwidth_bits_per_sec, 9.9e12);
        assert!(o.latency_s < 1e-6);
    }
}
