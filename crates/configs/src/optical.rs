//! Case study III: node architectures built on optical communication
//! substrates.
//!
//! A substrate carries a `rows × cols` grid of accelerators, each connected
//! at its full off-chip bandwidth (*Opt. 2*); accelerators on the substrate
//! *edge* additionally get a dedicated fiber to other nodes, so the node's
//! inter-node bandwidth is `edge_count × offchip_bw` (*Opt. 1*). Future
//! accelerators can raise the off-chip bandwidth itself (*Opt. 3*) because
//! the electrical hop to the substrate is millimetres long.

use amped_core::{AcceleratorSpec, SystemSpec};

use crate::interconnects;

/// Number of accelerators on the perimeter of a `rows × cols` substrate —
/// the ones that get a dedicated inter-node fiber.
///
/// Matches the paper's counts: 4×2 → 8, 4×4 → 12, 4×8 → 20, 6×8 → 24.
pub fn substrate_edge_count(rows: usize, cols: usize) -> usize {
    if rows == 0 || cols == 0 {
        return 0;
    }
    if rows <= 2 || cols <= 2 {
        rows * cols
    } else {
        2 * (rows + cols) - 4
    }
}

/// A cluster of optical-substrate nodes: `total_accels` accelerators in
/// `rows × cols` substrates, intra-node at the accelerator's off-chip
/// bandwidth through the substrate, inter-node over `edge_count` fibers per
/// node each carrying one off-chip bandwidth (*Opt. 1 + Opt. 2*).
///
/// # Panics
///
/// Panics if `total_accels` is not divisible by the substrate size.
pub fn optical_cluster(accel: &AcceleratorSpec, total_accels: usize, rows: usize, cols: usize) -> SystemSpec {
    let per_node = rows * cols;
    assert!(per_node > 0, "substrate must hold at least one accelerator");
    assert!(
        total_accels.is_multiple_of(per_node),
        "total accelerators ({total_accels}) must divide into {rows}x{cols} substrates"
    );
    let offchip = accel.offchip_bandwidth_bits_per_sec();
    let fiber = interconnects::optical_substrate(offchip);
    SystemSpec::new(
        total_accels / per_node,
        per_node,
        interconnects::optical_substrate(offchip),
        fiber,
        substrate_edge_count(rows, cols),
    )
    .expect("optical preset is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accelerators;

    #[test]
    fn edge_counts_match_paper() {
        assert_eq!(substrate_edge_count(4, 2), 8);
        assert_eq!(substrate_edge_count(4, 4), 12);
        assert_eq!(substrate_edge_count(4, 8), 20);
        assert_eq!(substrate_edge_count(6, 8), 24);
        assert_eq!(substrate_edge_count(1, 5), 5);
        assert_eq!(substrate_edge_count(0, 5), 0);
    }

    #[test]
    fn opt1_raises_inter_bandwidth_per_accel() {
        let h = accelerators::h100();
        let reference = crate::systems::h100_ndr_cluster(384, 8);
        let optical = optical_cluster(&h, 3072, 4, 2);
        assert_eq!(optical.total_accelerators(), 3072);
        // 8 fibers x 3.6 Tbit/s for 8 accels = 3.6 Tbit/s per accel,
        // versus 0.4 Tbit/s per accel over NDR.
        assert!(optical.inter_bandwidth_per_accel() > 8.0 * reference.inter_bandwidth_per_accel());
    }

    #[test]
    fn bigger_substrates_have_fewer_fibers_per_accel() {
        let h = accelerators::h100();
        let small = optical_cluster(&h, 3072, 4, 2);
        let large = optical_cluster(&h, 3072, 6, 8);
        assert!(
            large.inter_bandwidth_per_accel() < small.inter_bandwidth_per_accel(),
            "48-accel nodes share 24 fibers; 8-accel nodes get one each"
        );
        assert_eq!(large.accels_per_node(), 48);
        assert_eq!(large.num_nodes(), 64);
    }

    #[test]
    fn opt3_scales_through_offchip_bandwidth() {
        let h = accelerators::h100();
        let fast = h.with_offchip_bandwidth_scaled(4.0);
        let sys = optical_cluster(&fast, 3072, 6, 8);
        let base = optical_cluster(&h, 3072, 6, 8);
        assert!((sys.intra().bandwidth_bits_per_sec
            / base.intra().bandwidth_bits_per_sec
            - 4.0)
            .abs()
            < 1e-9);
        assert!((sys.inter_bandwidth_per_accel() / base.inter_bandwidth_per_accel() - 4.0).abs()
            < 1e-9);
    }

    #[test]
    #[should_panic(expected = "divide")]
    fn indivisible_total_rejected() {
        optical_cluster(&accelerators::h100(), 1000, 6, 8);
    }
}
