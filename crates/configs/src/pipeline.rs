//! The scenario resolution pipeline: provenance-tagged overlays merged by
//! one explicit-precedence engine into a validated
//! [`ResolvedScenario`](crate::scenario::ResolvedScenario).
//!
//! Front-ends only *collect* overlays — built-in defaults, a named
//! scenario preset, a scenario file (or HTTP request body), and flags
//! (CLI flags or HTTP query parameters), in that precedence order. The
//! pipeline merges them (field-by-field for object sections, wholesale
//! for presets and scalars), fills the computed defaults, validates the
//! merged document through the shared schema pass, and records which
//! layer set every field — so a diagnostic can name both the field path
//! and the source that set it, and `--dump-resolved` / `?resolved=true`
//! can show the full merge result.

use amped_core::{Error, Result};
use serde_json::Value;

use crate::scenario::{ResolvedScenario, ScenarioConfig};
use crate::schema::{self, FieldType, SectionKind, SCHEMA_VERSION};

/// Where an overlay came from, in precedence order (later wins).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Source {
    /// The built-in defaults every scenario starts from.
    Defaults,
    /// A named scenario preset (`--preset` / `?preset=`).
    Preset(String),
    /// A scenario file (`--config`) or HTTP request body.
    File,
    /// CLI flags or HTTP query parameters.
    Flags,
}

impl std::fmt::Display for Source {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Source::Defaults => write!(f, "built-in defaults"),
            Source::Preset(name) => write!(f, "preset `{name}`"),
            Source::File => write!(f, "scenario file"),
            Source::Flags => write!(f, "flags"),
        }
    }
}

impl Source {
    /// The provenance label for a field at `path` set by this source:
    /// flags name the flag itself (`flags (--nodes)`).
    fn label_for(&self, path: &str) -> String {
        match self {
            Source::Flags => match schema::flag_for_path(path) {
                Some(flag) => format!("flags (--{flag})"),
                None => "flags".to_string(),
            },
            other => other.to_string(),
        }
    }
}

/// How a front-end exposes its flag values to the collector: the CLI
/// adapts [`Args`](struct@std::env::Args)-style parsed flags, the server
/// adapts query parameters. `value` returns the flag's value when one
/// was supplied; `switch` reports a bare boolean flag.
pub trait FlagReader {
    /// The value supplied for `--<key>` / `?<key>=`, if any.
    fn value(&self, key: &str) -> Option<String>;
    /// Whether `--<key>` appeared as a bare switch.
    fn switch(&self, key: &str) -> bool;
}

/// Which flag families a front-end command accepts. Commands that run a
/// goodput analysis (estimate, resilience) collect the resilience flags;
/// the rest ignore them so `search --restart 60` (an execution knob
/// elsewhere) cannot half-build a resilience section.
#[derive(Debug, Clone, Copy, Default)]
pub struct FlagSet {
    /// Collect `--mtbf`/`--restart`/`--ckpt-gbps`/`--ckpt-interval` into
    /// the scenario's resilience section.
    pub resilience: bool,
    /// Collect `--domains`/`--rack-mtbf`/`--pod-mtbf`/`--preemption-mtbf`/
    /// `--regrow-delay`/`--placement` into the scenario's failure_domains
    /// section.
    pub failure_domains: bool,
    /// Collect `--prompt`/`--decode`/`--serve-batch`/`--kv-bits` into the
    /// scenario's inference section.
    pub inference: bool,
}

impl FlagSet {
    /// The flag set for commands with a goodput/resilience analysis.
    #[must_use]
    pub fn with_resilience() -> Self {
        FlagSet { resilience: true, ..FlagSet::default() }
    }

    /// The flag set for commands that also price correlated failure
    /// domains (implies the resilience family — the domain tiers extend
    /// the base node-failure model).
    #[must_use]
    pub fn with_failure_domains() -> Self {
        FlagSet { resilience: true, failure_domains: true, ..FlagSet::default() }
    }

    /// The flag set for commands that price a serving workload (`amped
    /// infer`, `POST /v1/infer`, and the serving-mapping search).
    #[must_use]
    pub fn with_inference() -> Self {
        FlagSet { inference: true, ..FlagSet::default() }
    }
}

/// An ordered stack of provenance-tagged scenario overlays, merged by
/// [`ScenarioDraft::resolve`].
///
/// # Example
///
/// ```
/// use amped_configs::pipeline::{ScenarioDraft, Source};
///
/// let mut draft = ScenarioDraft::new();
/// draft
///     .push_json(Source::File, r#"{ "system": { "nodes": 4 } }"#)
///     .unwrap();
/// let resolution = draft.resolve().unwrap();
/// assert_eq!(resolution.scenario.system.num_nodes(), 4);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ScenarioDraft {
    overlays: Vec<(Source, Value)>,
}

fn defaults_overlay() -> Value {
    serde_json::json!({
        "model": { "preset": "gpt3-175b" },
        "accelerator": { "preset": "a100" },
        "system": {
            "nodes": 1,
            "accels_per_node": 8,
            "intra_gbps": 2400.0,
            "inter_gbps": 200.0
        },
        "parallelism": { "tp": [1, 1], "pp": [1, 1] },
        "training": { "global_batch": 512, "num_batches": 1 },
        "precision_bits": 16
    })
}

/// Object-entry upsert preserving insertion order.
fn upsert(entries: &mut Vec<(String, Value)>, key: &str, value: Value) {
    match entries.iter_mut().find(|(k, _)| k == key) {
        Some((_, slot)) => *slot = value,
        None => entries.push((key.to_string(), value)),
    }
}

fn get<'a>(entries: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

impl ScenarioDraft {
    /// A draft seeded with the built-in defaults layer.
    #[must_use]
    pub fn new() -> Self {
        ScenarioDraft {
            overlays: vec![(Source::Defaults, defaults_overlay())],
        }
    }

    /// A draft with no layers at all (for tests and tools that supply a
    /// complete document themselves).
    #[must_use]
    pub fn empty() -> Self {
        ScenarioDraft::default()
    }

    /// Push one overlay. The fragment is schema-validated immediately so
    /// the diagnostic can name the source that carried the bad input.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Usage`] naming the field path and the source,
    /// e.g. ``scenario.system: unknown field `nodez` (...) [from scenario
    /// file]``.
    pub fn push(&mut self, source: Source, doc: Value) -> Result<&mut Self> {
        if let Err(e) = schema::validate_fragment(&doc) {
            return Err(attribute(e, &format!("from {source}")));
        }
        self.overlays.push((source, doc));
        Ok(self)
    }

    /// Parse and push one overlay from JSON text.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Usage`] for malformed JSON or schema violations,
    /// naming the source.
    pub fn push_json(&mut self, source: Source, json: &str) -> Result<&mut Self> {
        let doc: Value = serde_json::from_str(json).map_err(|e| {
            Error::usage(format!("scenario: malformed JSON: {e} [from {source}]"))
        })?;
        self.push(source, doc)
    }

    /// Push a named scenario preset from the registry.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Usage`] for unknown preset names.
    pub fn preset(&mut self, name: &str) -> Result<&mut Self> {
        let doc = crate::registry::scenario(name).ok_or_else(|| {
            Error::usage(format!(
                "unknown scenario preset `{name}` (expected one of: {})",
                crate::registry::scenario_names().join(", ")
            ))
        })?;
        self.push(Source::Preset(name.to_string()), doc)
    }

    /// Collect the flags layer from a front-end: every schema field with
    /// a flag mapping is read through `reader`, parsed to its declared
    /// type, and gathered into one overlay (the highest-precedence
    /// layer). `set` gates command-specific flag families.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Usage`] for unparseable values, naming the flag.
    pub fn flags(&mut self, reader: &dyn FlagReader, set: FlagSet) -> Result<&mut Self> {
        let mut doc: Vec<(String, Value)> = Vec::new();
        for section in schema::SECTIONS {
            if section.name == "resilience" && !set.resilience {
                continue;
            }
            if section.name == "failure_domains" && !set.failure_domains {
                continue;
            }
            if section.name == "inference" && !set.inference {
                continue;
            }
            match section.kind {
                SectionKind::Spec { .. } => {
                    let flag = section.flag.expect("spec sections carry a flag");
                    if let Some(v) = reader.value(flag) {
                        upsert(
                            &mut doc,
                            section.name,
                            Value::Object(vec![("preset".to_string(), Value::Str(v))]),
                        );
                    }
                }
                SectionKind::Scalar(ty) => {
                    let flag = section.flag.expect("scalar sections carry a flag");
                    if let Some(value) = read_scalar(reader, flag, ty)? {
                        upsert(&mut doc, section.name, value);
                    }
                }
                SectionKind::Object(fields) => {
                    let mut body: Vec<(String, Value)> = Vec::new();
                    for field in fields {
                        let Some(flag) = field.flag else { continue };
                        if let Some(value) = read_scalar(reader, flag, field.ty)? {
                            body.push((field.name.to_string(), value));
                        }
                    }
                    if !body.is_empty() {
                        upsert(&mut doc, section.name, Value::Object(body));
                    }
                }
            }
        }
        if doc.is_empty() {
            return Ok(self);
        }
        self.push(Source::Flags, Value::Object(doc))
    }

    /// Merge the overlay stack, fill computed defaults, and resolve the
    /// merged document into a validated scenario with per-field
    /// provenance.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Usage`] (or the kernel's own validation errors)
    /// for incomplete or inconsistent merged scenarios; usage diagnostics
    /// name the field path and the source that set it.
    pub fn resolve(&self) -> Result<Resolution> {
        let mut merged: Vec<(String, Value)> = Vec::new();
        let mut provenance = Provenance::default();
        for (source, overlay) in &self.overlays {
            let entries = overlay.as_object().expect("overlays validated at push");
            for (name, value) in entries {
                let spec = schema::section(name).expect("overlays validated at push");
                if spec.merges_fields() && !value.is_null() {
                    let fields = value.as_object().expect("object sections validated");
                    let slot = match merged.iter_mut().find(|(k, _)| k == name) {
                        Some((_, Value::Object(existing))) => existing,
                        Some((_, slot)) => {
                            // A previous layer nulled the section out;
                            // this layer starts it fresh.
                            *slot = Value::Object(Vec::new());
                            provenance.clear_section(name);
                            match slot {
                                Value::Object(entries) => entries,
                                _ => unreachable!("just assigned"),
                            }
                        }
                        None => {
                            merged.push((name.clone(), Value::Object(Vec::new())));
                            match &mut merged.last_mut().expect("just pushed").1 {
                                Value::Object(entries) => entries,
                                _ => unreachable!("just pushed"),
                            }
                        }
                    };
                    for (field, fv) in fields {
                        upsert(slot, field, fv.clone());
                        let path = format!("{name}.{field}");
                        let label = source.label_for(&path);
                        provenance.set(&path, label);
                    }
                } else {
                    upsert(&mut merged, name, value.clone());
                    provenance.clear_section(name);
                    provenance.set(name, source.label_for(name));
                }
            }
        }
        fill_computed_defaults(&mut merged, &mut provenance);
        let document = normalize(merged);
        let scenario = ScenarioConfig::from_document(&document)
            .and_then(|config| config.resolve())
            .map_err(|e| provenance.attribute(e))?;
        Ok(Resolution {
            document,
            provenance: provenance.into_entries(),
            scenario,
        })
    }
}

/// Read one flag value as a schema type. Returns `Ok(None)` when the
/// flag was not supplied.
fn read_scalar(reader: &dyn FlagReader, flag: &str, ty: FieldType) -> Result<Option<Value>> {
    if ty == FieldType::Boolean {
        return match reader.value(flag) {
            Some(v) => match v.as_str() {
                "" | "true" | "1" => Ok(Some(Value::Bool(true))),
                "false" | "0" => Ok(Some(Value::Bool(false))),
                other => Err(Error::usage(format!(
                    "invalid value for --{flag}: {other}"
                ))),
            },
            None if reader.switch(flag) => Ok(Some(Value::Bool(true))),
            None => Ok(None),
        };
    }
    let Some(v) = reader.value(flag) else {
        return Ok(None);
    };
    let value = match ty {
        FieldType::Integer => {
            let n: i64 = v
                .parse()
                .ok()
                .filter(|n| *n >= 0)
                .ok_or_else(|| Error::usage(format!("invalid value for --{flag}: {v}")))?;
            Value::Int(n)
        }
        FieldType::Number => {
            let n: f64 = v
                .parse()
                .map_err(|_| Error::usage(format!("invalid value for --{flag}: {v}")))?;
            Value::Float(n)
        }
        FieldType::Pair => {
            let parts: Vec<&str> = v.split(',').collect();
            let bad = || Error::usage(format!("bad --{flag}: {v} (expects INTRA[,INTER])"));
            let pair: (i64, i64) = match parts.as_slice() {
                [a] => (a.trim().parse().map_err(|_| bad())?, 1),
                [a, b] => (
                    a.trim().parse().map_err(|_| bad())?,
                    b.trim().parse().map_err(|_| bad())?,
                ),
                _ => return Err(bad()),
            };
            if pair.0 < 0 || pair.1 < 0 {
                return Err(bad());
            }
            Value::Array(vec![Value::Int(pair.0), Value::Int(pair.1)])
        }
        FieldType::Text => Value::Str(v),
        FieldType::Boolean | FieldType::Object => unreachable!("handled above / not flagged"),
    };
    Ok(Some(value))
}

/// Fields the pipeline derives from other fields when no layer set them:
/// NICs default to one per accelerator, and the data-parallel degrees
/// fill whatever of the cluster tensor/pipeline parallelism left unused.
fn fill_computed_defaults(merged: &mut [(String, Value)], provenance: &mut Provenance) {
    let (nodes, per_node) = {
        let Some(Value::Object(system)) = merged.iter().find(|(k, _)| k == "system").map(|(_, v)| v)
        else {
            return;
        };
        (
            get(system, "nodes").and_then(Value::as_i64),
            get(system, "accels_per_node").and_then(Value::as_i64),
        )
    };
    if let Some(per_node) = per_node {
        let system = merged
            .iter_mut()
            .find(|(k, _)| k == "system")
            .map(|(_, v)| v);
        if let Some(Value::Object(system)) = system {
            if get(system, "nics_per_node").is_none() {
                upsert(system, "nics_per_node", Value::Int(per_node));
                provenance.set("system.nics_per_node", "computed default".to_string());
            }
        }
    }
    let parallelism = merged
        .iter_mut()
        .find(|(k, _)| k == "parallelism")
        .map(|(_, v)| v);
    if let (Some(Value::Object(p)), Some(nodes), Some(per_node)) = (parallelism, nodes, per_node) {
        if get(p, "dp").is_none() {
            let degree = |pair: Option<&Value>, idx: usize| -> i64 {
                pair.and_then(Value::as_array)
                    .and_then(|a| a.get(idx))
                    .and_then(Value::as_i64)
                    .unwrap_or(1)
                    .max(1)
            };
            let tp = (degree(get(p, "tp"), 0), degree(get(p, "tp"), 1));
            let pp = (degree(get(p, "pp"), 0), degree(get(p, "pp"), 1));
            let dp_intra = per_node / tp.0 / pp.0;
            let dp_inter = nodes / tp.1 / pp.1;
            upsert(
                p,
                "dp",
                Value::Array(vec![Value::Int(dp_intra), Value::Int(dp_inter)]),
            );
            provenance.set("parallelism.dp", "computed default".to_string());
        }
    }
}

/// Canonical ordering: sections in schema order, fields in spec order —
/// so equivalent inputs resolve to byte-identical documents regardless of
/// which layer contributed which field.
fn normalize(merged: Vec<(String, Value)>) -> Value {
    let mut out: Vec<(String, Value)> = Vec::with_capacity(merged.len());
    for section in schema::SECTIONS {
        let Some(value) = get(&merged, section.name) else {
            continue;
        };
        let value = match (&section.kind, value) {
            (SectionKind::Object(fields), Value::Object(entries)) => {
                Value::Object(order_fields(fields, entries))
            }
            (SectionKind::Spec { inline }, Value::Object(entries)) => {
                if get(entries, "preset").is_some() {
                    value.clone()
                } else {
                    Value::Object(order_fields(inline, entries))
                }
            }
            _ => value.clone(),
        };
        out.push((section.name.to_string(), value));
    }
    Value::Object(out)
}

fn order_fields(fields: &[schema::FieldSpec], entries: &[(String, Value)]) -> Vec<(String, Value)> {
    let mut out: Vec<(String, Value)> = Vec::with_capacity(entries.len());
    for f in fields {
        if let Some(v) = get(entries, f.name) {
            out.push((f.name.to_string(), v.clone()));
        }
    }
    out
}

/// Append a bracketed attribution to a usage error's message; other
/// error kinds pass through untouched.
fn attribute(e: Error, note: &str) -> Error {
    match e {
        Error::Usage { reason } => Error::usage(format!("{reason} [{note}]")),
        other => other,
    }
}

/// Insertion-ordered `path → source label` map.
#[derive(Debug, Default)]
struct Provenance {
    entries: Vec<(String, String)>,
}

impl Provenance {
    fn set(&mut self, path: &str, label: String) {
        match self.entries.iter_mut().find(|(k, _)| k == path) {
            Some((_, slot)) => *slot = label,
            None => self.entries.push((path.to_string(), label)),
        }
    }

    /// Drop per-field entries when a section is replaced wholesale.
    fn clear_section(&mut self, section: &str) {
        let prefix = format!("{section}.");
        self.entries
            .retain(|(k, _)| k != section && !k.starts_with(&prefix));
    }

    fn lookup(&self, path: &str) -> Option<&str> {
        self.entries
            .iter()
            .find(|(k, _)| k == path)
            .map(|(_, v)| v.as_str())
    }

    /// Decorate a usage diagnostic naming `scenario.<path>` with the
    /// layer that set the field, when the provenance map knows it.
    fn attribute(&self, e: Error) -> Error {
        let Error::Usage { reason } = &e else {
            return e;
        };
        let Some(rest) = reason.strip_prefix("scenario.") else {
            return e;
        };
        let path = rest.split(':').next().unwrap_or("").trim();
        if path.is_empty() {
            return e;
        }
        // Try the exact path the message names, then the path extended by
        // a backticked field name (for "scenario.system: missing field
        // `nodes`"-style messages), then the section itself.
        let mut candidates: Vec<String> = vec![path.to_string()];
        if let Some(field) = reason.split('`').nth(1) {
            candidates.push(format!("{path}.{field}"));
        }
        let section = path.split('.').next().unwrap_or(path);
        candidates.push(section.to_string());
        for candidate in &candidates {
            if let Some(label) = self.lookup(candidate) {
                return attribute(e, &format!("set by {label}"));
            }
        }
        // Last resort: if every field of the section came from one layer,
        // name that layer.
        let prefix = format!("{section}.");
        let labels: Vec<&str> = self
            .entries
            .iter()
            .filter(|(k, _)| k.starts_with(&prefix))
            .map(|(_, v)| v.as_str())
            .collect();
        if let Some(first) = labels.first() {
            if labels.iter().all(|l| l == first) {
                let note = format!("set by {first}");
                return attribute(e, &note);
            }
        }
        e
    }

    fn into_entries(self) -> Vec<(String, String)> {
        self.entries
    }
}

/// The outcome of [`ScenarioDraft::resolve`]: the merged canonical
/// document, the per-field provenance, and the validated scenario.
#[derive(Debug, Clone)]
pub struct Resolution {
    /// The merged scenario document in canonical section/field order.
    pub document: Value,
    /// `path → source label`, in document order (computed fields last
    /// within their section's contribution order).
    pub provenance: Vec<(String, String)>,
    /// The fully resolved, validated scenario.
    pub scenario: ResolvedScenario,
}

impl Resolution {
    /// The `--dump-resolved` / `?resolved=true` artifact: the resolved
    /// document plus per-field provenance, stamped with the schema
    /// version.
    #[must_use]
    pub fn dump_value(&self) -> Value {
        let provenance: Vec<(String, Value)> = self
            .provenance
            .iter()
            .map(|(path, label)| (path.clone(), Value::Str(label.clone())))
            .collect();
        serde_json::json!({
            "schema_version": SCHEMA_VERSION,
            "scenario": self.document,
            "provenance": Value::Object(provenance),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct MapReader(Vec<(&'static str, &'static str)>, Vec<&'static str>);

    impl FlagReader for MapReader {
        fn value(&self, key: &str) -> Option<String> {
            self.0
                .iter()
                .find(|(k, _)| *k == key)
                .map(|(_, v)| (*v).to_string())
        }
        fn switch(&self, key: &str) -> bool {
            self.1.contains(&key)
        }
    }

    fn flags(pairs: Vec<(&'static str, &'static str)>) -> MapReader {
        MapReader(pairs, Vec::new())
    }

    #[test]
    fn defaults_alone_resolve() {
        let r = ScenarioDraft::new().resolve().unwrap();
        assert_eq!(r.scenario.system.total_accelerators(), 8);
        assert_eq!(r.scenario.model.name(), "GPT-3 175B");
        // Computed defaults carry provenance.
        let prov: Vec<&str> = r.provenance.iter().map(|(k, _)| k.as_str()).collect();
        assert!(prov.contains(&"system.nics_per_node"));
        assert!(prov.contains(&"parallelism.dp"));
        let nics = r
            .provenance
            .iter()
            .find(|(k, _)| k == "system.nics_per_node")
            .unwrap();
        assert_eq!(nics.1, "computed default");
    }

    #[test]
    fn later_layers_win_per_field() {
        let mut draft = ScenarioDraft::new();
        draft
            .push_json(
                Source::File,
                r#"{ "system": { "nodes": 4, "inter_gbps": 400.0 } }"#,
            )
            .unwrap();
        draft
            .flags(&flags(vec![("nodes", "2"), ("batch", "64")]), FlagSet::default())
            .unwrap();
        let r = draft.resolve().unwrap();
        // Flag wins over file for nodes; file's inter_gbps survives.
        assert_eq!(r.scenario.system.num_nodes(), 2);
        assert_eq!(r.scenario.training.global_batch(), 64);
        let nodes = r.provenance.iter().find(|(k, _)| k == "system.nodes").unwrap();
        assert_eq!(nodes.1, "flags (--nodes)");
        let inter = r
            .provenance
            .iter()
            .find(|(k, _)| k == "system.inter_gbps")
            .unwrap();
        assert_eq!(inter.1, "scenario file");
    }

    #[test]
    fn presets_layer_under_files_and_flags() {
        let mut draft = ScenarioDraft::new();
        draft.preset("dev-small").unwrap();
        draft
            .push_json(Source::File, r#"{ "training": { "num_batches": 3 } }"#)
            .unwrap();
        let r = draft.resolve().unwrap();
        assert_eq!(r.scenario.system.total_accelerators(), 8);
        assert_eq!(r.scenario.model.name(), "minGPT-85M");
        assert_eq!(r.scenario.training.global_batch(), 64); // preset
        assert_eq!(r.scenario.training.num_batches(), 3); // file override
        let batch = r
            .provenance
            .iter()
            .find(|(k, _)| k == "training.global_batch")
            .unwrap();
        assert_eq!(batch.1, "preset `dev-small`");
    }

    #[test]
    fn unknown_presets_are_usage_errors() {
        let err = ScenarioDraft::new().preset("nope").unwrap_err();
        assert!(matches!(err, Error::Usage { .. }));
        assert!(err.to_string().contains("unknown scenario preset `nope`"));
        assert!(err.to_string().contains("dev-small"));
    }

    #[test]
    fn every_shipped_preset_resolves() {
        for name in crate::registry::scenario_names() {
            let mut draft = ScenarioDraft::new();
            draft.preset(name).unwrap();
            draft.resolve().unwrap_or_else(|e| panic!("{name}: {e}"));
        }
    }

    #[test]
    fn bad_overlay_names_its_source() {
        let err = ScenarioDraft::new()
            .push_json(Source::File, r#"{ "system": { "nodez": 4 } }"#)
            .unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("unknown field `nodez`"), "{msg}");
        assert!(msg.contains("[from scenario file]"), "{msg}");
    }

    #[test]
    fn merged_diagnostics_name_the_layer_that_set_the_field() {
        // The file sets a resilience section with a bad MTBF; the error
        // from the merged-document validation names the file layer.
        let mut draft = ScenarioDraft::new();
        draft
            .push_json(
                Source::File,
                r#"{ "resilience": { "node_mtbf_hours": -1.0 } }"#,
            )
            .unwrap();
        let err = draft.resolve().unwrap_err();
        let msg = err.to_string();
        // Core rejects the negative MTBF; usage-path attribution applies
        // only to scenario.* usage errors, so just require failure here.
        assert!(!msg.is_empty());

        // A missing required field inside a section set by flags names
        // the flags layer.
        let mut draft = ScenarioDraft::new();
        draft
            .flags(
                &flags(vec![("mtbf", "1000")]),
                FlagSet::with_resilience(),
            )
            .unwrap();
        let r = draft.resolve().unwrap();
        assert!(r.scenario.resilience.is_some());
        let mtbf = r
            .provenance
            .iter()
            .find(|(k, _)| k == "resilience.node_mtbf_hours")
            .unwrap();
        assert_eq!(mtbf.1, "flags (--mtbf)");
    }

    #[test]
    fn usage_errors_on_merged_document_carry_attribution() {
        let mut draft = ScenarioDraft::new();
        draft
            .push_json(
                Source::File,
                r#"{ "resilience": { "restart_s": 60.0 } }"#,
            )
            .unwrap();
        let err = draft.resolve().unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("scenario.resilience"), "{msg}");
        assert!(msg.contains("`node_mtbf_hours`"), "{msg}");
        assert!(msg.contains("[set by scenario file]"), "{msg}");
    }

    #[test]
    fn null_removes_an_optional_section() {
        let mut draft = ScenarioDraft::new();
        draft
            .push_json(
                Source::File,
                r#"{ "resilience": { "node_mtbf_hours": 1000.0 } }"#,
            )
            .unwrap();
        draft
            .push_json(Source::File, r#"{ "resilience": null }"#)
            .unwrap();
        let r = draft.resolve().unwrap();
        assert!(r.scenario.resilience.is_none());
        // And a later layer can start the section fresh after a null.
        let mut draft = ScenarioDraft::new();
        draft
            .push_json(Source::File, r#"{ "resilience": null }"#)
            .unwrap();
        draft
            .flags(&flags(vec![("mtbf", "500")]), FlagSet::with_resilience())
            .unwrap();
        let r = draft.resolve().unwrap();
        assert_eq!(r.scenario.resilience.unwrap().node_mtbf_hours, 500.0);
    }

    #[test]
    fn resilience_flags_are_gated() {
        let mut draft = ScenarioDraft::new();
        draft
            .flags(&flags(vec![("restart", "60")]), FlagSet::default())
            .unwrap();
        let r = draft.resolve().unwrap();
        assert!(r.scenario.resilience.is_none());
    }

    #[test]
    fn failure_domain_flags_are_gated_and_layer_like_any_section() {
        // Without the gate, domain flags are ignored (so `--placement` in
        // an unrelated command cannot half-build the section).
        let mut draft = ScenarioDraft::new();
        draft
            .flags(
                &flags(vec![("rack-mtbf", "720")]),
                FlagSet::with_resilience(),
            )
            .unwrap();
        assert!(draft.resolve().unwrap().scenario.failure_domains.is_none());

        // With the gate, flags build the section over a file layer, and
        // provenance names each flag.
        let mut draft = ScenarioDraft::new();
        draft
            .push_json(
                Source::File,
                r#"{ "resilience": { "node_mtbf_hours": 4380.0 },
                     "failure_domains": { "shape": [4, 2], "rack_mtbf_hours": 2000.0 } }"#,
            )
            .unwrap();
        draft
            .flags(
                &flags(vec![("rack-mtbf", "720"), ("placement", "stage-major")]),
                FlagSet::with_failure_domains(),
            )
            .unwrap();
        let r = draft.resolve().unwrap();
        let fd = r.scenario.failure_domains.expect("section resolved");
        assert_eq!(fd.shape, [4, 2]); // file survives
        assert_eq!(fd.rack_mtbf_hours, Some(720.0)); // flag wins
        assert_eq!(fd.placement, "stage-major");
        assert_eq!(fd.regrow_delay_s, 600.0); // serde default
        let rack = r
            .provenance
            .iter()
            .find(|(k, _)| k == "failure_domains.rack_mtbf_hours")
            .unwrap();
        assert_eq!(rack.1, "flags (--rack-mtbf)");
    }

    #[test]
    fn failure_domains_require_a_resilience_base() {
        let mut draft = ScenarioDraft::new();
        draft
            .push_json(
                Source::File,
                r#"{ "failure_domains": { "rack_mtbf_hours": 2000.0 } }"#,
            )
            .unwrap();
        let msg = draft.resolve().unwrap_err().to_string();
        assert!(msg.contains("requires a `resilience` section"), "{msg}");
    }

    #[test]
    fn inference_flags_are_gated_and_build_the_section() {
        // Ungated, serving flags are ignored (`--prompt` in a training
        // command cannot half-build an inference section).
        let mut draft = ScenarioDraft::new();
        draft
            .flags(&flags(vec![("prompt", "1024")]), FlagSet::default())
            .unwrap();
        assert!(draft.resolve().unwrap().scenario.inference.is_none());

        // Gated, flags layer over a file section field-by-field and the
        // serde defaults fill the rest.
        let mut draft = ScenarioDraft::new();
        draft
            .push_json(
                Source::File,
                r#"{ "inference": { "prompt_tokens": 256, "kv_bits": 8 } }"#,
            )
            .unwrap();
        draft
            .flags(
                &flags(vec![("prompt", "1024"), ("serve-batch", "8")]),
                FlagSet::with_inference(),
            )
            .unwrap();
        let r = draft.resolve().unwrap();
        let inf = r.scenario.inference.expect("section resolved");
        assert_eq!(inf.prompt_tokens, 1024); // flag wins
        assert_eq!(inf.batch, 8); // flag
        assert_eq!(inf.kv_bits, 8); // file survives
        assert_eq!(inf.decode_tokens, 128); // serde default
        let prompt = r
            .provenance
            .iter()
            .find(|(k, _)| k == "inference.prompt_tokens")
            .unwrap();
        assert_eq!(prompt.1, "flags (--prompt)");
    }

    #[test]
    fn flag_values_parse_to_their_declared_types() {
        let mut draft = ScenarioDraft::new();
        draft
            .flags(
                &flags(vec![
                    ("model", "mingpt-85m"),
                    ("accel", "v100"),
                    ("nodes", "2"),
                    ("per-node", "4"),
                    ("tp", "2,2"),
                    ("eff", "0.5"),
                    ("recompute", ""),
                ]),
                FlagSet::default(),
            )
            .unwrap();
        let r = draft.resolve().unwrap();
        assert_eq!(r.scenario.parallelism.tp(), 4);
        assert!(r.scenario.options.activation_recompute);
        assert_eq!(r.scenario.accelerator.name(), "V100");
        // And a bare switch works too.
        let mut draft = ScenarioDraft::new();
        draft
            .flags(
                &MapReader(vec![("per-node", "4"), ("model", "mingpt-85m"), ("accel", "v100")], vec!["recompute"]),
                FlagSet::default(),
            )
            .unwrap();
        assert!(draft.resolve().unwrap().scenario.options.activation_recompute);
    }

    #[test]
    fn bad_flag_values_name_the_flag() {
        let err = ScenarioDraft::new()
            .flags(&flags(vec![("nodes", "many")]), FlagSet::default())
            .unwrap_err();
        assert_eq!(err.to_string(), "usage: invalid value for --nodes: many");
        let err = ScenarioDraft::new()
            .flags(&flags(vec![("tp", "8,1,1")]), FlagSet::default())
            .unwrap_err();
        assert_eq!(
            err.to_string(),
            "usage: bad --tp: 8,1,1 (expects INTRA[,INTER])"
        );
        let err = ScenarioDraft::new()
            .flags(&flags(vec![("eff", "fast")]), FlagSet::default())
            .unwrap_err();
        assert_eq!(err.to_string(), "usage: invalid value for --eff: fast");
    }

    #[test]
    fn pair_flags_default_the_inter_degree() {
        let mut draft = ScenarioDraft::new();
        draft
            .flags(&flags(vec![("tp", "8")]), FlagSet::default())
            .unwrap();
        let r = draft.resolve().unwrap();
        assert_eq!(r.scenario.parallelism.tp(), 8);
    }

    #[test]
    fn dump_value_carries_version_scenario_and_provenance() {
        let mut draft = ScenarioDraft::new();
        draft
            .push_json(Source::File, r#"{ "system": { "nodes": 2 } }"#)
            .unwrap();
        let dump = draft.resolve().unwrap().dump_value();
        assert_eq!(
            dump.get("schema_version").and_then(Value::as_str),
            Some(SCHEMA_VERSION)
        );
        let scenario = dump.get("scenario").unwrap();
        assert_eq!(
            scenario.get("system").unwrap().get("nodes").and_then(Value::as_i64),
            Some(2)
        );
        let prov = dump.get("provenance").unwrap();
        assert_eq!(
            prov.get("system.nodes").and_then(Value::as_str),
            Some("scenario file")
        );
    }

    #[test]
    fn normalization_is_canonical_regardless_of_input_order() {
        let mut a = ScenarioDraft::new();
        a.push_json(
            Source::File,
            r#"{ "training": { "num_batches": 2, "global_batch": 128 }, "system": { "nodes": 2 } }"#,
        )
        .unwrap();
        let mut b = ScenarioDraft::new();
        b.push_json(
            Source::File,
            r#"{ "system": { "nodes": 2 }, "training": { "global_batch": 128, "num_batches": 2 } }"#,
        )
        .unwrap();
        let da = serde_json::to_string_pretty(&a.resolve().unwrap().document).unwrap();
        let db = serde_json::to_string_pretty(&b.resolve().unwrap().document).unwrap();
        assert_eq!(da, db);
    }

    #[test]
    fn explicit_dp_disables_the_fill() {
        let mut draft = ScenarioDraft::new();
        draft
            .push_json(Source::File, r#"{ "parallelism": { "dp": [8, 1] } }"#)
            .unwrap();
        let r = draft.resolve().unwrap();
        assert_eq!(r.scenario.parallelism.dp(), 8);
        let dp = r.provenance.iter().find(|(k, _)| k == "parallelism.dp").unwrap();
        assert_eq!(dp.1, "scenario file");
    }
}
