//! Calibrated microbatch-efficiency models.
//!
//! The paper fits `eff(ub) = a·ub/(b+ub)` per application × hardware pair
//! and quotes the resulting efficiencies (≈80 % for large microbatches on
//! A100s with TP-intra mappings, ≈30 % for high-DP mappings, a 25 % floor
//! in case study I). These presets encode those fits; the experiment
//! harness uses them wherever the paper used its empirically derived
//! factors.

use amped_core::EfficiencyModel;

/// The case-study efficiency curve for A100/H100-class accelerators: fitted
/// to the utilizations the paper quotes — "up to 80 %" for TP-intra
/// mappings whose replica batch stays large (`ub ≈ 128`) and "only 30 %"
/// for DP-heavy mappings that shrink the microbatch to ~16 — with the 25 %
/// lower clamp the paper notes as an artifact of its choice.
pub fn case_study() -> EfficiencyModel {
    EfficiencyModel::saturating(0.92, 25.0, 0.25, 0.92)
}

/// The V100 curve used for the minGPT validation runs: smaller model layers
/// reach lower peak utilization and need bigger microbatches.
pub fn v100_mingpt() -> EfficiencyModel {
    EfficiencyModel::saturating(0.55, 6.0, 0.05, 0.55)
}

/// The P100 curve for the GPipe validation (memory-capped microbatches keep
/// utilization moderate).
pub fn p100_gpipe() -> EfficiencyModel {
    EfficiencyModel::saturating(0.50, 3.0, 0.05, 0.50)
}

/// The Megatron-on-Selene fit used for Table II: the published 145B–1T runs
/// use a microbatch of a single 2048-token *sequence*, which keeps the
/// GEMMs fat regardless of the sample count — so the per-sample saturating
/// form is the wrong axis and the fitted efficiency is a constant, as the
/// paper's own use of "empirically derived efficiency factors" permits.
pub fn megatron_selene() -> EfficiencyModel {
    EfficiencyModel::Constant(0.60)
}

/// The GPT-3-on-96-GPUs fit used for Fig. 2c, where the paper sweeps the
/// microbatch size itself and the saturating form is exactly right
/// (Megatron's 96-GPU 175B configuration: TP 8 × PP 12, 96 microbatches).
pub fn gpt3_96gpu() -> EfficiencyModel {
    EfficiencyModel::saturating(0.68, 5.0, 0.02, 0.98)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_presets_validate() {
        for m in [
            case_study(),
            v100_mingpt(),
            p100_gpipe(),
            megatron_selene(),
            gpt3_96gpu(),
        ] {
            m.validate().unwrap();
        }
    }

    #[test]
    fn case_study_reaches_paper_quoted_levels() {
        let m = case_study();
        // "up to 80%" for TP-intra mappings with healthy microbatches:
        assert!(m.eval(128.0) >= 0.75);
        // "only 30%" for DP-heavy mappings with ub ~ 16:
        assert!((m.eval(16.0) - 0.32).abs() < 0.06);
        // the 25% floor artifact:
        assert!((m.eval(0.01) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn curves_are_monotone() {
        for m in [case_study(), v100_mingpt(), p100_gpipe(), gpt3_96gpu()] {
            let mut prev = 0.0;
            for ub in [0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 64.0, 256.0] {
                let e = m.eval(ub);
                assert!(e >= prev);
                prev = e;
            }
        }
    }
}
