//! Published reference measurements the paper validates against.
//!
//! These numbers are copied from the paper's own validation tables
//! (themselves quoting Megatron-LM \[8\] and GPipe \[26\]); AMPeD's and our
//! reproduction's job is to predict them, so they live here as data, not as
//! anything derived.

use serde::{Deserialize, Serialize};

/// One row of Table II: a Megatron-LM configuration and its published
/// achieved throughput.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TableTwoRow {
    /// Model label ("145B", …).
    pub model: &'static str,
    /// Tensor-parallel degree.
    pub tp: usize,
    /// Pipeline-parallel degree.
    pub pp: usize,
    /// Data-parallel degree.
    pub dp: usize,
    /// Global batch size used in the published run.
    pub batch: usize,
    /// Published TFLOP/s/GPU.
    pub published_tflops: f64,
    /// The paper's own AMPeD prediction (for cross-checking our port).
    pub amped_tflops: f64,
}

/// Table II of the paper: Megatron-LM published throughputs and AMPeD's
/// predictions, with `R = 1` (no bubble overlap).
///
/// Batch sizes are from the Megatron-LM paper's corresponding table.
pub fn table2_rows() -> Vec<TableTwoRow> {
    vec![
        TableTwoRow {
            model: "145B",
            tp: 8,
            pp: 8,
            dp: 24,
            batch: 1536,
            published_tflops: 148.0,
            amped_tflops: 147.0,
        },
        TableTwoRow {
            model: "310B",
            tp: 8,
            pp: 16,
            dp: 12,
            batch: 1920,
            published_tflops: 155.0,
            amped_tflops: 162.0,
        },
        TableTwoRow {
            model: "530B",
            tp: 8,
            pp: 35,
            dp: 9,
            batch: 2520,
            published_tflops: 163.0,
            amped_tflops: 148.6,
        },
        TableTwoRow {
            model: "1T",
            tp: 8,
            pp: 64,
            dp: 6,
            batch: 3072,
            published_tflops: 163.0,
            amped_tflops: 144.3,
        },
    ]
}

/// Table III of the paper: GPipe's published normalized training throughput
/// for a 24-layer transformer on P100/PCIe with `M = 32` microbatches, as
/// `(num_gpus, published_speedup, amped_prediction)`.
pub fn table3_rows() -> Vec<(usize, f64, f64)> {
    vec![(2, 1.0, 1.0), (4, 1.8, 1.84), (8, 3.3, 3.19)]
}

/// Fig. 2c of the paper: published TFLOP/s/GPU versus microbatch size for
/// GPT-3 175B on 96 GPUs with pipeline parallelism (digitized from the
/// Megatron-LM batch-size sweep the paper reproduces), as
/// `(microbatch_size, published_tflops)`.
pub fn fig2c_published() -> Vec<(f64, f64)> {
    vec![
        (1.0, 44.0),
        (2.0, 71.0),
        (4.0, 102.0),
        (8.0, 125.0),
        (12.0, 134.0),
        (24.0, 146.0),
        (36.0, 150.0),
        (48.0, 152.0),
        (60.0, 153.0),
    ]
}

/// The paper's headline validation bound: AMPeD is within 12 % of every
/// published number it was compared against.
pub const MAX_VALIDATION_ERROR: f64 = 0.12;

/// Relative error |a − b| / b.
pub fn relative_error(predicted: f64, published: f64) -> f64 {
    (predicted - published).abs() / published
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_internal_consistency() {
        for row in table2_rows() {
            // The paper's own predictions respect its 12 % bound.
            assert!(
                relative_error(row.amped_tflops, row.published_tflops) <= MAX_VALIDATION_ERROR,
                "{}",
                row.model
            );
            // Worker counts are the Megatron GPU counts.
            assert_eq!(row.tp, 8);
            assert!(row.tp * row.pp * row.dp >= 192);
        }
        assert_eq!(table2_rows().len(), 4);
    }

    #[test]
    fn table3_is_normalized_to_two_gpus() {
        let rows = table3_rows();
        assert_eq!(rows[0].1, 1.0);
        assert_eq!(rows[0].2, 1.0);
        // Speedups grow with GPU count but sublinearly.
        for w in rows.windows(2) {
            assert!(w[1].1 > w[0].1);
            assert!(w[1].1 < w[0].1 * 2.0);
        }
    }

    #[test]
    fn fig2c_saturates() {
        let pts = fig2c_published();
        for w in pts.windows(2) {
            assert!(w[1].1 > w[0].1, "published curve is monotone");
        }
        let first_gain = pts[1].1 - pts[0].1;
        let last_gain = pts[pts.len() - 1].1 - pts[pts.len() - 2].1;
        assert!(last_gain < first_gain / 5.0, "curve must flatten");
    }

    #[test]
    fn relative_error_is_symmetric_in_sign() {
        assert!((relative_error(110.0, 100.0) - 0.1).abs() < 1e-12);
        assert!((relative_error(90.0, 100.0) - 0.1).abs() < 1e-12);
    }
}
