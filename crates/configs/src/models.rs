//! Transformer model presets: the paper's validation models and case-study
//! models.

use amped_core::{MoeConfig, TransformerModel};

/// minGPT as trained in the paper's DP validation: 12 layers, 12 heads,
/// hidden 768 (≈85 M transformer parameters), GPT-2 vocabulary. The paper
/// does not state the block size; 512 is minGPT's chargpt-scale default.
pub fn mingpt_85m() -> TransformerModel {
    TransformerModel::builder("minGPT-85M")
        .layers(12)
        .hidden_size(768)
        .heads(12)
        .seq_len(512)
        .vocab_size(50257)
        .build()
        .expect("preset is valid")
}

/// The minGPT variant of the paper's PP validation: 16 layers, 8 heads,
/// hidden 1024. (The paper labels this "1.24 B parameters"; these shapes
/// give ≈0.2 B transformer parameters — see DESIGN.md. The shapes, not the
/// label, enter the model.)
pub fn mingpt_pp() -> TransformerModel {
    TransformerModel::builder("minGPT-PP")
        .layers(16)
        .hidden_size(1024)
        .heads(8)
        .seq_len(512)
        .vocab_size(50257)
        // The logits head is tied to the embedding and kept off the layer
        // stack so the 16 transformer layers split evenly across up to 16
        // pipeline stages, as in the paper's torchgpipe runs.
        .include_head(false)
        .build()
        .expect("preset is valid")
}

/// GPT-3 175B (Fig. 2c): 96 layers, hidden 12288, 96 heads, sequence 2048.
pub fn gpt3_175b() -> TransformerModel {
    TransformerModel::builder("GPT-3 175B")
        .layers(96)
        .hidden_size(12288)
        .heads(96)
        .seq_len(2048)
        .vocab_size(51200)
        .build()
        .expect("preset is valid")
}

/// Megatron 145B (Table II row 1, case studies I & II): 80 layers, hidden
/// 12288, 96 heads.
pub fn megatron_145b() -> TransformerModel {
    TransformerModel::builder("Megatron 145B")
        .layers(80)
        .hidden_size(12288)
        .heads(96)
        .seq_len(2048)
        .vocab_size(51200)
        .build()
        .expect("preset is valid")
}

/// Megatron 310B (Table II row 2): 96 layers, hidden 16384, 128 heads.
pub fn megatron_310b() -> TransformerModel {
    TransformerModel::builder("Megatron 310B")
        .layers(96)
        .hidden_size(16384)
        .heads(128)
        .seq_len(2048)
        .vocab_size(51200)
        .build()
        .expect("preset is valid")
}

/// Megatron 530B (Table II row 3): 105 layers, hidden 20480, 128 heads.
pub fn megatron_530b() -> TransformerModel {
    TransformerModel::builder("Megatron 530B")
        .layers(105)
        .hidden_size(20480)
        .heads(128)
        .seq_len(2048)
        .vocab_size(51200)
        .build()
        .expect("preset is valid")
}

/// Megatron 1T (Table II row 4): 128 layers, hidden 25600, 160 heads.
pub fn megatron_1t() -> TransformerModel {
    TransformerModel::builder("Megatron 1T")
        .layers(128)
        .hidden_size(25600)
        .heads(160)
        .seq_len(2048)
        .vocab_size(51200)
        .build()
        .expect("preset is valid")
}

/// GLaM with 64 experts (case study III): 64 layers, hidden 8192, 128
/// heads, every other layer a 64-expert top-2 MoE FFN, sequence 1024.
pub fn glam_64e() -> TransformerModel {
    TransformerModel::builder("GLaM-64E")
        .layers(64)
        .hidden_size(8192)
        .heads(128)
        .seq_len(1024)
        .vocab_size(51200)
        .moe(MoeConfig::glam(64))
        .build()
        .expect("preset is valid")
}

/// GPT-2 XL (1.5 B): 48 layers, hidden 1600, 25 heads — a handy mid-size
/// model for single-node what-ifs.
pub fn gpt2_xl() -> TransformerModel {
    TransformerModel::builder("GPT-2 XL")
        .layers(48)
        .hidden_size(1600)
        .heads(25)
        .seq_len(1024)
        .vocab_size(50257)
        .build()
        .expect("preset is valid")
}

/// A LLaMA-65B-shaped decoder: 80 layers, hidden 8192, 64 heads, sequence
/// 2048 (FFN ratio kept at 4 — the model spec does not distinguish gated
/// MLP variants; the parameter count lands within a few percent).
pub fn llama_65b() -> TransformerModel {
    TransformerModel::builder("LLaMA-65B")
        .layers(80)
        .hidden_size(8192)
        .heads(64)
        .seq_len(2048)
        .vocab_size(32000)
        .build()
        .expect("preset is valid")
}

/// BERT-Large (340 M): 24 encoder layers, hidden 1024, 16 heads, sequence
/// 512 — the op-count equations apply to encoders unchanged.
pub fn bert_large() -> TransformerModel {
    TransformerModel::builder("BERT-Large")
        .layers(24)
        .hidden_size(1024)
        .heads(16)
        .seq_len(512)
        .vocab_size(30522)
        .include_head(false)
        .build()
        .expect("preset is valid")
}

/// The 24-layer transformer of the GPipe validation (Table III), sized
/// after GPipe's big Transformer-L family on P100s.
pub fn gpipe_transformer_24l() -> TransformerModel {
    TransformerModel::builder("GPipe-24L")
        .layers(24)
        .hidden_size(1024)
        .heads(16)
        .seq_len(512)
        .vocab_size(32000)
        .build()
        .expect("preset is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parameter_counts_match_labels() {
        let close = |m: &TransformerModel, billions: f64, tol: f64| {
            let p = m.total_parameters() / 1e9;
            assert!((p - billions).abs() < tol, "{}: {p:.1}B vs {billions}B", m.name());
        };
        close(&gpt3_175b(), 175.0, 6.0);
        close(&megatron_145b(), 145.0, 6.0);
        close(&megatron_310b(), 310.0, 12.0);
        close(&megatron_530b(), 530.0, 20.0);
        close(&megatron_1t(), 1008.0, 40.0);
    }

    #[test]
    fn extra_presets_match_their_labels() {
        let p15 = gpt2_xl().total_parameters() / 1e9;
        assert!((p15 - 1.5).abs() < 0.2, "GPT-2 XL: {p15:.2}B");
        let p65 = llama_65b().total_parameters() / 1e9;
        assert!((p65 - 65.0).abs() < 5.0, "LLaMA-65B: {p65:.1}B");
        let bert = bert_large();
        let blocks = bert.total_parameters() - bert.embedding_parameters();
        assert!((blocks / 1e6 - 302.0).abs() < 15.0, "BERT blocks: {blocks:.2e}");
    }

    #[test]
    fn mingpt_transformer_params_near_85m() {
        let m = mingpt_85m();
        // minGPT ties the logits head to the token embedding, so the "85M"
        // label counts the transformer blocks only.
        let head = m.layer_weights(amped_core::LayerKind::Head);
        let transformer_only = m.total_parameters() - m.embedding_parameters() - head;
        assert!(
            (transformer_only / 1e6 - 85.0).abs() < 3.0,
            "got {transformer_only:.3e}"
        );
    }

    #[test]
    fn glam_is_sparse() {
        let g = glam_64e();
        assert_eq!(g.num_moe_layers(), 32);
        // 64-expert FFNs in half the layers: total params far exceed activated.
        assert!(g.total_parameters() > 10.0 * g.activated_parameters());
        // Total parameter count lands in the GLaM ballpark (~1.2T).
        assert!((g.total_parameters() / 1e12 - 1.1).abs() < 0.3);
    }

    #[test]
    fn tp_divides_heads_for_case_study_mappings() {
        // Case studies use TP up to 48 (case study III 6x8 nodes).
        for m in [megatron_145b(), glam_64e()] {
            assert_eq!(m.hidden_size() % m.num_heads(), 0);
            assert!(m.num_heads() >= 48);
        }
    }
}
