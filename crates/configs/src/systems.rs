//! System presets: the clusters of the validation and case studies.

use amped_core::SystemSpec;

use crate::interconnects;

/// The paper's HGX-2 validation node (Table I): one node of up to 16 V100s
/// behind NVSwitch; the inter-node link is irrelevant (single node) but set
/// to EDR for completeness.
pub fn hgx2(num_gpus: usize) -> SystemSpec {
    SystemSpec::new(
        1,
        num_gpus,
        interconnects::nvlink2(),
        interconnects::infiniband_edr(),
        1,
    )
    .expect("preset is valid")
}

/// A single node of P100s on PCIe 3.0 — the GPipe validation substrate
/// (Table III).
pub fn p100_pcie_node(num_gpus: usize) -> SystemSpec {
    SystemSpec::new(
        1,
        num_gpus,
        interconnects::pcie3(),
        interconnects::infiniband_edr(),
        1,
    )
    .expect("preset is valid")
}

/// Case study I's cluster: `nodes` nodes of `per_node` A100s on NVLink,
/// HDR InfiniBand with one NIC per accelerator.
pub fn a100_hdr_cluster(nodes: usize, per_node: usize) -> SystemSpec {
    SystemSpec::new(
        nodes,
        per_node,
        interconnects::nvlink3(),
        interconnects::infiniband_hdr(),
        per_node,
    )
    .expect("preset is valid")
}

/// Case study II's low-end system family: the same 1024 accelerators
/// reshaped into nodes of `per_node` accelerators with `per_node` EDR NICs.
pub fn a100_edr_lowend(total_accels: usize, per_node: usize) -> SystemSpec {
    assert!(
        total_accels.is_multiple_of(per_node),
        "total accelerators must divide into nodes"
    );
    SystemSpec::new(
        total_accels / per_node,
        per_node,
        interconnects::nvlink3(),
        interconnects::infiniband_edr(),
        per_node,
    )
    .expect("preset is valid")
}

/// Case study III's reference system: `nodes` nodes of 8 H100s behind
/// NVLink4, NDR InfiniBand with one NIC per accelerator.
pub fn h100_ndr_cluster(nodes: usize, per_node: usize) -> SystemSpec {
    SystemSpec::new(
        nodes,
        per_node,
        interconnects::nvlink4(),
        interconnects::infiniband_ndr(),
        per_node,
    )
    .expect("preset is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hgx2_is_single_node() {
        let s = hgx2(16);
        assert_eq!(s.num_nodes(), 1);
        assert_eq!(s.total_accelerators(), 16);
    }

    #[test]
    fn case_study_one_shape() {
        let s = a100_hdr_cluster(128, 8);
        assert_eq!(s.total_accelerators(), 1024);
        assert_eq!(s.inter_bandwidth_per_accel(), 200e9);
    }

    #[test]
    fn lowend_reshapes_preserve_total() {
        for per_node in [1usize, 2, 4, 8] {
            let s = a100_edr_lowend(1024, per_node);
            assert_eq!(s.total_accelerators(), 1024);
            assert_eq!(s.nics_per_node(), per_node);
            assert_eq!(s.inter_bandwidth_per_accel(), 100e9);
        }
    }

    #[test]
    #[should_panic(expected = "divide")]
    fn lowend_rejects_nondivisor() {
        a100_edr_lowend(1024, 3);
    }

    #[test]
    fn h100_reference_shape() {
        let s = h100_ndr_cluster(384, 8);
        assert_eq!(s.total_accelerators(), 3072);
        assert_eq!(s.inter_bandwidth_per_accel(), 400e9);
    }
}
