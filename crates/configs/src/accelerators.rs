//! Accelerator presets — the rows of the paper's Tables I and IV plus the
//! P100 used by the GPipe validation.
//!
//! MAC-unit shapes follow the paper's convention of expressing unit width
//! `W_FU` in lanes at the unit's *native* precision: the Table IV A100 row
//! (`f = 1.41 GHz, N_cores = 108, N_FU = 4, W_FU = 512`) yields 312 T MAC/s
//! at 8-bit — i.e. 312 TFLOP/s at FP16 after the Eq. 2 ceiling de-rating —
//! matching the datasheet.

use amped_core::AcceleratorSpec;

/// Nvidia V100 SXM3 (Table I): 80 SMs, 8 tensor cores each performing 64
/// FP16 MACs per cycle at 1.53 GHz boost → 125 TFLOP/s FP16 peak; 32 GiB
/// HBM2 at 897 GB/s; NVLink2 off-chip at 2.4 Tbit/s; 250 W TDP.
pub fn v100() -> AcceleratorSpec {
    AcceleratorSpec::builder("V100")
        .frequency_hz(1.53e9)
        .cores(80)
        .mac_units(8, 64, 16)
        .nonlin_units(80, 128, 32)
        .memory(31.75e9, 897e9)
        .offchip_bandwidth_bits_per_sec(2.4e12)
        .power(250.0, 0.25)
        .build()
        .expect("preset is valid")
}

/// Nvidia P100 SXM2 (the GPipe validation GPUs): 56 SMs, 64 FP32 cores each
/// running FP16 at rate 2 (native 16-bit lanes, width 128) at 1.48 GHz →
/// 21.2 TFLOP/s FP16; 16 GiB HBM2 at 732 GB/s; PCIe 3.0 x16 off-chip.
pub fn p100() -> AcceleratorSpec {
    AcceleratorSpec::builder("P100")
        .frequency_hz(1.48e9)
        .cores(56)
        .mac_units(1, 128, 16)
        .nonlin_units(56, 64, 32)
        .memory(16e9, 732e9)
        .offchip_bandwidth_bits_per_sec(128e9)
        .power(300.0, 0.25)
        .build()
        .expect("preset is valid")
}

/// Nvidia A100 SXM (Table IV row 1): `f = 1.41 GHz`, 108 cores, 4 MAC units
/// of width 512 (8-bit lanes), 192 non-linear units of width 4;
/// `BW_intra = 2.4 Tbit/s`; 80 GiB HBM2e at 2.0 TB/s; 400 W.
pub fn a100() -> AcceleratorSpec {
    AcceleratorSpec::builder("A100")
        .frequency_hz(1.41e9)
        .cores(108)
        .mac_units(4, 512, 8)
        .nonlin_units(192, 4, 32)
        .memory(80e9, 2.0e12)
        .offchip_bandwidth_bits_per_sec(2.4e12)
        .power(400.0, 0.3)
        .build()
        .expect("preset is valid")
}

/// Nvidia H100 SXM (Table IV row 2): `f = 1.8 GHz`, 132 cores, 4 MAC units
/// of width 1024 (8-bit lanes) → 973 T MAC/s at 8-bit, 320 non-linear units
/// of width 4; `BW_intra = 3.6 Tbit/s`; 80 GiB HBM3 at 3.35 TB/s; 700 W.
pub fn h100() -> AcceleratorSpec {
    AcceleratorSpec::builder("H100")
        .frequency_hz(1.8e9)
        .cores(132)
        .mac_units(4, 1024, 8)
        .nonlin_units(320, 4, 32)
        .memory(80e9, 3.35e12)
        .offchip_bandwidth_bits_per_sec(3.6e12)
        .power(700.0, 0.3)
        .build()
        .expect("preset is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a100_matches_table_iv() {
        let a = a100();
        assert!((a.frequency_hz() - 1.41e9).abs() < 1.0);
        assert_eq!(a.num_cores(), 108);
        assert_eq!(a.mac_units_per_core(), 4);
        assert_eq!(a.mac_unit_width(), 512);
        assert_eq!(a.nonlin_units(), 192);
        assert!((a.offchip_bandwidth_bits_per_sec() - 2.4e12).abs() < 1.0);
        // Peak FP16: ~312 TFLOP/s.
        assert!((a.peak_flops_per_sec(16) / 1e12 - 312.0).abs() < 2.0);
    }

    #[test]
    fn h100_matches_table_iv() {
        let h = h100();
        assert_eq!(h.num_cores(), 132);
        assert_eq!(h.mac_unit_width(), 1024);
        assert_eq!(h.nonlin_units(), 320);
        // Peak FP8: ~1.95 PFLOP/s (2 * 1.8e9 * 132 * 4 * 1024).
        assert!((h.peak_flops_per_sec(8) / 1e15 - 1.95).abs() < 0.05);
    }

    #[test]
    fn v100_peak_near_datasheet() {
        // 125 TFLOP/s FP16 tensor peak.
        let v = v100();
        assert!((v.peak_flops_per_sec(16) / 1e12 - 125.0).abs() < 5.0);
        assert!((v.memory_bytes() - 31.75e9).abs() < 1e6);
    }

    #[test]
    fn p100_peak_near_datasheet() {
        // 21.2 TFLOP/s FP16.
        let p = p100();
        assert!((p.peak_flops_per_sec(16) / 1e12 - 21.2).abs() < 1.0);
    }

    #[test]
    fn generational_ordering_holds() {
        assert!(p100().peak_flops_per_sec(16) < v100().peak_flops_per_sec(16));
        assert!(v100().peak_flops_per_sec(16) < a100().peak_flops_per_sec(16));
        assert!(a100().peak_flops_per_sec(16) < h100().peak_flops_per_sec(16));
    }
}
