//! # amped-configs — preset catalog
//!
//! Single source of truth for every concrete number the AMPeD paper uses:
//! accelerators (Tables I and IV), interconnects, transformer models
//! (validation models and case-study models), systems (HGX-2, A100/H100
//! clusters, low-end variants, optical-substrate nodes) and the published
//! reference measurements the paper validates against (Table II, Table III,
//! Fig. 2c).
//!
//! # Example
//!
//! ```
//! use amped_configs::{accelerators, models, systems};
//!
//! let a100 = accelerators::a100();
//! assert_eq!(a100.name(), "A100");
//!
//! let megatron = models::megatron_145b();
//! assert!((megatron.total_parameters() / 1e9 - 145.0).abs() < 10.0);
//!
//! let cluster = systems::a100_hdr_cluster(128, 8);
//! assert_eq!(cluster.total_accelerators(), 1024);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod accelerators;
pub mod efficiency;
pub mod interconnects;
pub mod models;
pub mod optical;
pub mod pipeline;
pub mod published;
pub mod scenario;
pub mod schema;
pub mod systems;

/// Named lookup across all preset families, for CLI `--model`/`--accel`
/// style flags. Returns `None` for unknown names.
pub mod registry {
    use amped_core::{AcceleratorSpec, TransformerModel};
    use serde_json::Value;

    /// Accelerator preset by name (case-insensitive).
    pub fn accelerator(name: &str) -> Option<AcceleratorSpec> {
        match name.to_ascii_lowercase().as_str() {
            "v100" => Some(super::accelerators::v100()),
            "p100" => Some(super::accelerators::p100()),
            "a100" => Some(super::accelerators::a100()),
            "h100" => Some(super::accelerators::h100()),
            _ => None,
        }
    }

    /// Model preset by name (case-insensitive).
    pub fn model(name: &str) -> Option<TransformerModel> {
        match name.to_ascii_lowercase().as_str() {
            "mingpt" | "mingpt-85m" => Some(super::models::mingpt_85m()),
            "mingpt-pp" | "mingpt-pp-16l" => Some(super::models::mingpt_pp()),
            "gpt3" | "gpt3-175b" => Some(super::models::gpt3_175b()),
            "megatron-145b" => Some(super::models::megatron_145b()),
            "megatron-310b" => Some(super::models::megatron_310b()),
            "megatron-530b" => Some(super::models::megatron_530b()),
            "megatron-1t" => Some(super::models::megatron_1t()),
            "glam" | "glam-64e" => Some(super::models::glam_64e()),
            "gpipe-24l" => Some(super::models::gpipe_transformer_24l()),
            "gpt2-xl" => Some(super::models::gpt2_xl()),
            "llama-65b" => Some(super::models::llama_65b()),
            "bert-large" => Some(super::models::bert_large()),
            _ => None,
        }
    }

    /// All accelerator preset names.
    pub fn accelerator_names() -> &'static [&'static str] {
        &["v100", "p100", "a100", "h100"]
    }

    /// All model preset names.
    pub fn model_names() -> &'static [&'static str] {
        &[
            "mingpt-85m",
            "mingpt-pp",
            "gpt3-175b",
            "megatron-145b",
            "megatron-310b",
            "megatron-530b",
            "megatron-1t",
            "glam-64e",
            "gpipe-24l",
            "gpt2-xl",
            "llama-65b",
            "bert-large",
        ]
    }

    /// All scenario preset names.
    pub fn scenario_names() -> &'static [&'static str] {
        &[
            "dev-small",
            "dev-small-infer",
            "flagship-a100",
            "llama-65b-32x8",
            "llama-65b-serve",
        ]
    }

    /// Scenario preset by name (case-insensitive): a complete scenario
    /// document overlay, resolved through the same pipeline as a scenario
    /// file. Returns `None` for unknown names.
    pub fn scenario(name: &str) -> Option<Value> {
        let doc = match name.to_ascii_lowercase().as_str() {
            // A tiny configuration for fast iteration and tests.
            "dev-small" => serde_json::json!({
                "model": { "preset": "mingpt-85m" },
                "accelerator": { "preset": "v100" },
                "system": {
                    "nodes": 2,
                    "accels_per_node": 4,
                    "intra_gbps": 1200.0,
                    "inter_gbps": 100.0
                },
                "parallelism": { "dp": [4, 2] },
                "training": { "global_batch": 64, "num_batches": 10 }
            }),
            // The dev-small cluster pointed at a serving workload: the
            // smallest preset that exercises `amped infer` end to end.
            "dev-small-infer" => serde_json::json!({
                "model": { "preset": "mingpt-85m" },
                "accelerator": { "preset": "v100" },
                "system": {
                    "nodes": 2,
                    "accels_per_node": 4,
                    "intra_gbps": 1200.0,
                    "inter_gbps": 100.0
                },
                "parallelism": { "dp": [4, 2] },
                "training": { "global_batch": 64, "num_batches": 10 },
                "inference": {
                    "prompt_tokens": 256,
                    "decode_tokens": 64,
                    "batch": 4
                }
            }),
            // The Megatron 145B case study on a 16-node A100 HDR cluster.
            "flagship-a100" => serde_json::json!({
                "model": { "preset": "megatron-145b" },
                "accelerator": { "preset": "a100" },
                "system": {
                    "nodes": 16,
                    "accels_per_node": 8,
                    "intra_gbps": 2400.0,
                    "inter_gbps": 200.0
                },
                "parallelism": {
                    "tp": [8, 1],
                    "pp": [1, 8],
                    "dp": [1, 2],
                    "microbatches": 16
                },
                "training": { "global_batch": 1024, "num_batches": 100 },
                "activation_recompute": true
            }),
            // The shipped examples/scenario.json configuration.
            "llama-65b-32x8" => serde_json::json!({
                "model": { "preset": "llama-65b" },
                "accelerator": { "preset": "a100" },
                "system": {
                    "nodes": 32,
                    "accels_per_node": 8,
                    "intra_gbps": 2400.0,
                    "inter_gbps": 200.0
                },
                "parallelism": {
                    "tp": [8, 1],
                    "pp": [1, 4],
                    "dp": [1, 8],
                    "microbatches": 16
                },
                "training": { "global_batch": 1024, "num_batches": 100000 },
                "precision_bits": 16,
                "activation_recompute": true
            }),
            // LLaMA-65B served from one TP=8 A100 node: chat-shaped
            // requests (long prompt, shorter generation) at batch 8 with
            // an fp16 KV cache.
            "llama-65b-serve" => serde_json::json!({
                "model": { "preset": "llama-65b" },
                "accelerator": { "preset": "a100" },
                "system": {
                    "nodes": 1,
                    "accels_per_node": 8,
                    "intra_gbps": 2400.0,
                    "inter_gbps": 200.0
                },
                "parallelism": { "tp": [8, 1] },
                "training": { "global_batch": 8, "num_batches": 1 },
                "precision_bits": 16,
                "inference": {
                    "prompt_tokens": 1024,
                    "decode_tokens": 256,
                    "batch": 8,
                    "kv_bits": 16
                }
            }),
            _ => return None,
        };
        Some(doc)
    }
}

#[cfg(test)]
mod tests {
    use super::registry;

    #[test]
    fn registry_resolves_every_listed_name() {
        for name in registry::accelerator_names() {
            assert!(registry::accelerator(name).is_some(), "{name}");
        }
        for name in registry::model_names() {
            assert!(registry::model(name).is_some(), "{name}");
        }
        assert!(registry::accelerator("tpu-v9").is_none());
        assert!(registry::model("llama").is_none());
    }

    #[test]
    fn registry_is_case_insensitive() {
        assert!(registry::accelerator("A100").is_some());
        assert!(registry::model("GPT3-175B").is_some());
    }
}
