//! Property and invariant tests for the serving cost model.

use std::sync::Arc;

use amped_core::{
    AcceleratorSpec, Link, Parallelism, Scenario, SystemSpec, TransformerModel,
};
use amped_infer::{
    latency_lower_bound, AnalyticalInferBackend, InferBackend, InferEstimator, InferenceConfig,
    ObservedInferBackend,
};
use amped_obs::Observer;
use proptest::prelude::*;

fn a100() -> AcceleratorSpec {
    AcceleratorSpec::builder("A100")
        .frequency_hz(1.41e9)
        .cores(108)
        .mac_units(4, 512, 8)
        .nonlin_units(192, 4, 32)
        .memory(80e9, 2.0e12)
        .build()
        .unwrap()
}

fn scenario(
    layers: usize,
    heads: usize,
    hidden: usize,
    nodes: usize,
    parallelism: Parallelism,
) -> Option<Scenario> {
    let model = TransformerModel::builder("serve-prop")
        .layers(layers)
        .hidden_size(hidden)
        .heads(heads)
        .seq_len(2048)
        .vocab_size(32000)
        .build()
        .ok()?;
    let system = SystemSpec::new(
        nodes,
        8,
        Link::new(5e-6, 2.4e12),
        Link::new(1e-5, 2e11),
        8,
    )
    .ok()?;
    parallelism.validate_against(&system, &model).ok()?;
    Some(Scenario::new(model, a100(), system, parallelism))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The load-bearing serving invariant: a decode step can never be
    /// priced faster than the time to stream the weight shard and KV
    /// cache at full memory bandwidth.
    #[test]
    fn decode_step_never_beats_pure_bandwidth(
        (layers, heads_ix, hidden_per_head) in (2usize..48, 0usize..3, 8usize..65),
        (tp_exp, pp_exp) in (0u32..4, 0u32..2),
        (prompt, decode, batch_exp) in (1usize..4096, 1usize..512, 0u32..7),
        kv_bits_ix in 0usize..3,
    ) {
        let heads = [4usize, 8, 16][heads_ix];
        let (tp, pp) = (1usize << tp_exp, 1usize << pp_exp);
        if tp * pp > 8 {
            return Ok(());
        }
        let Ok(parallelism) = Parallelism::builder()
            .tp(tp, 1)
            .pp(pp, 1)
            .dp(8 / (tp * pp), 1)
            .build()
        else {
            return Ok(());
        };
        // Only grids that tile the 8-accel node survive.
        let Some(s) = scenario(layers, heads, heads * hidden_per_head, 1, parallelism) else {
            return Ok(());
        };
        let config = InferenceConfig::new(prompt, decode, 1usize << batch_exp)
            .unwrap()
            .with_kv_bits([8u32, 16, 32][kv_bits_ix])
            .unwrap();
        let Ok(est) = InferEstimator::new(&s).estimate(&config) else {
            return Ok(());
        };

        let est_kv = InferEstimator::new(&s);
        let kv = est_kv.kv_model(&config);
        let bw = s.accelerator.memory_bandwidth_bytes_per_sec();
        let pp = s.parallelism.pp() as f64;
        let pure_bandwidth = pp * kv.weights_per_device() / bw;
        prop_assert!(
            est.tpot.get() >= pure_bandwidth,
            "tpot {} beat the weight-stream bound {}",
            est.tpot.get(),
            pure_bandwidth,
        );
        prop_assert!(est.tpot.get() >= est.decode.memory.get());
        prop_assert!(est.decode.memory.get() >= pure_bandwidth);

        // Structural invariants of the estimate.
        prop_assert!(est.ttft.get() > est.prefill.total.get());
        prop_assert!(
            est.request_latency.get()
                >= est.prefill.total.get() + decode as f64 * est.tpot.get() - 1e-12
        );
        prop_assert!(est.tokens_per_sec > 0.0);

        // The pruning bound is a true lower bound on the full estimate.
        let lb = latency_lower_bound(&s, &config).unwrap();
        prop_assert!(
            lb <= est.request_latency.get() * (1.0 + 1e-12),
            "lower bound {} above latency {}",
            lb,
            est.request_latency.get(),
        );
    }

    /// Longer prompts and bigger batches can only raise prefill time and
    /// KV pressure; more decode tokens can only raise request latency.
    #[test]
    fn serving_costs_are_monotone(
        (prompt, decode, batch) in (1usize..2048, 1usize..256, 1usize..32),
    ) {
        let parallelism = Parallelism::builder().tp(8, 1).build().unwrap();
        let s = scenario(24, 16, 2048, 1, parallelism).unwrap();
        let est = |p: usize, d: usize, b: usize| {
            InferEstimator::new(&s)
                .estimate(&InferenceConfig::new(p, d, b).unwrap())
                .unwrap()
        };
        let base = est(prompt, decode, batch);
        prop_assert!(est(prompt + 64, decode, batch).prefill.total >= base.prefill.total);
        prop_assert!(est(prompt, decode + 16, batch).request_latency >= base.request_latency);
        prop_assert!(est(prompt, decode, batch + 1).kv_cache_bytes > base.kv_cache_bytes);
        prop_assert!(est(prompt + 64, decode, batch).kv_cache_bytes > base.kv_cache_bytes);
    }
}

#[test]
fn observation_is_bit_identical_and_counts() {
    let parallelism = Parallelism::builder().tp(4, 1).pp(2, 1).build().unwrap();
    let s = scenario(24, 16, 2048, 1, parallelism).unwrap();
    let config = InferenceConfig::new(512, 128, 8).unwrap();

    let bare = AnalyticalInferBackend.evaluate(&s, &config).unwrap();
    let obs = Arc::new(Observer::new());
    let wrapped = ObservedInferBackend::new(Box::new(AnalyticalInferBackend), obs.clone());
    assert_eq!(wrapped.name(), "infer-analytical");
    assert_eq!(obs.counters()["backend.infer-analytical.evaluations"], 0);

    let observed = wrapped.evaluate(&s, &config).unwrap();
    assert_eq!(obs.counters()["backend.infer-analytical.evaluations"], 1);

    for (a, b) in [
        (bare.ttft.get(), observed.ttft.get()),
        (bare.tpot.get(), observed.tpot.get()),
        (bare.request_latency.get(), observed.request_latency.get()),
        (bare.tokens_per_sec, observed.tokens_per_sec),
        (bare.kv_cache_bytes, observed.kv_cache_bytes),
        (bare.weight_bytes, observed.weight_bytes),
    ] {
        assert_eq!(a.to_bits(), b.to_bits());
    }
}

#[test]
fn evaluate_many_matches_scalar_loop() {
    let parallelism = Parallelism::builder().tp(8, 1).build().unwrap();
    let s = scenario(24, 16, 2048, 1, parallelism).unwrap();
    let config = InferenceConfig::new(256, 64, 4).unwrap();
    let mappings: Vec<Parallelism> = [
        Parallelism::builder().tp(8, 1).build().unwrap(),
        Parallelism::builder().tp(4, 1).pp(2, 1).build().unwrap(),
        Parallelism::builder().tp(2, 1).pp(2, 1).dp(2, 1).build().unwrap(),
    ]
    .into();
    let many = AnalyticalInferBackend.evaluate_many(&s, &mappings, &config);
    assert_eq!(many.len(), 3);
    for (p, priced) in mappings.iter().zip(&many) {
        let candidate = Scenario {
            parallelism: *p,
            ..s.clone()
        };
        let scalar = AnalyticalInferBackend.evaluate(&candidate, &config).unwrap();
        let batched = priced.as_ref().unwrap();
        assert_eq!(
            scalar.request_latency.get().to_bits(),
            batched.request_latency.get().to_bits()
        );
        assert_eq!(scalar.workers, batched.workers);
    }
}

#[test]
fn tensor_parallelism_cuts_decode_weight_traffic() {
    // A 65B-class model: decode at batch 1 is dominated by streaming the
    // weight bytes, which is where TP sharding pays.
    let config = InferenceConfig::new(512, 128, 1).unwrap();
    let tp1 = scenario(80, 64, 8192, 1, Parallelism::builder().dp(8, 1).build().unwrap()).unwrap();
    let tp8 = scenario(80, 64, 8192, 1, Parallelism::builder().tp(8, 1).build().unwrap()).unwrap();
    let e1 = InferEstimator::new(&tp1).estimate(&config).unwrap();
    let e8 = InferEstimator::new(&tp8).estimate(&config).unwrap();
    // At batch 1 decode is weight-bandwidth-bound; an 8-way shard reads
    // an eighth of the bytes, and even with the all-reduce tax it must
    // decode faster.
    assert!(e8.decode.memory.get() < e1.decode.memory.get() / 7.0);
    assert!(e8.tpot.get() < e1.tpot.get());
    // Replicas multiply throughput but never touch latency.
    assert_eq!(e1.replicas, 8);
    assert_eq!(e8.replicas, 1);
}
