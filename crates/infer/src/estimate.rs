//! The serving estimate: phase breakdowns and request-level metrics.

use amped_core::Seconds;
use serde::{Deserialize, Serialize};

/// One inference phase priced by the roofline: a compute floor, a
/// memory-bandwidth floor, and communication on top of whichever binds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PhaseBreakdown {
    /// Time to execute the phase's FLOPs at the attainable fraction of
    /// peak throughput.
    pub compute: Seconds,
    /// Time to stream the phase's bytes (weight shards, KV-cache reads
    /// and writes) at full memory bandwidth.
    pub memory: Seconds,
    /// Tensor-parallel all-reduces plus pipeline-boundary transfers. A
    /// serving request crosses every pipeline stage sequentially, so —
    /// unlike the training model's steady-state `1/N_PP` share — the
    /// full per-layer sum lands on the request's critical path.
    pub comm: Seconds,
    /// Phase time: `max(compute, memory) + comm`.
    pub total: Seconds,
}

impl PhaseBreakdown {
    /// Assemble a phase from its floors: compute and memory overlap (the
    /// slower one binds), communication is serialized on top.
    pub(crate) fn from_floors(compute: f64, memory: f64, comm: f64) -> Self {
        PhaseBreakdown {
            compute: Seconds::new(compute),
            memory: Seconds::new(memory),
            comm: Seconds::new(comm),
            total: Seconds::new(compute.max(memory) + comm),
        }
    }
}

/// The analytical serving estimate for one [`InferenceConfig`]
/// (see [`crate::InferenceConfig`]) on one scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InferEstimate {
    /// Time to first token: the prefill pass plus the first decode step
    /// (which samples the first generated token).
    pub ttft: Seconds,
    /// Time per output token: one decode step at the mean decode context.
    pub tpot: Seconds,
    /// End-to-end request latency: prefill plus every decode step.
    pub request_latency: Seconds,
    /// Steady-state generated tokens per second across the whole system
    /// (`replicas × batch / tpot`).
    pub tokens_per_sec: f64,
    /// The prefill phase (whole prompt, one forward pass).
    pub prefill: PhaseBreakdown,
    /// One decode step at the mean decode context (batch tokens).
    pub decode: PhaseBreakdown,
    /// Per-device KV-cache bytes at the request's maximum context.
    pub kv_cache_bytes: f64,
    /// Per-device weight-shard bytes.
    pub weight_bytes: f64,
    /// Whether weights + KV cache fit the accelerator memory.
    pub fits_memory: bool,
    /// Concurrent sequences per model replica.
    pub batch: usize,
    /// Independent model replicas (the data-parallel degree).
    pub replicas: usize,
    /// Total accelerators across all replicas.
    pub workers: usize,
}

impl InferEstimate {
    /// Per-device memory footprint (weights + KV cache) at the request's
    /// maximum context.
    pub fn memory_total(&self) -> f64 {
        self.weight_bytes + self.kv_cache_bytes
    }
}

impl std::fmt::Display for InferEstimate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "ttft {:.3} ms | tpot {:.3} ms | request {:.3} s | {:.0} tok/s",
            self.ttft.get() * 1e3,
            self.tpot.get() * 1e3,
            self.request_latency.get(),
            self.tokens_per_sec,
        )?;
        write!(
            f,
            "memory {} weights + {} kv ({})",
            amped_core::units::format_bytes(self.weight_bytes),
            amped_core::units::format_bytes(self.kv_cache_bytes),
            if self.fits_memory { "fits" } else { "OVER" },
        )
    }
}
