//! The prefill/decode roofline estimator.
//!
//! # Model
//!
//! A request with prompt `s_p`, `d` generated tokens, batch `B` on a
//! mapping `(TP, PP, DP)`:
//!
//! * **Prefill** runs the prompt through every layer once. Per layer and
//!   sequence the MACs are `s_p·h²·(4 + 2f) + 2·s_p²·h` (QKV/out/MLP
//!   GEMMs plus the attention score and context products). The phase is
//!   priced at `peak · prefill_efficiency`, with a bandwidth floor of one
//!   weight-shard read plus the prompt's KV-cache write per stage.
//! * **Decode** emits one token per step. Per layer, token and sequence
//!   the MACs are `h²·(4 + 2f) + 2·c·h` at context `c`, plus the `h·V`
//!   head. Every step re-reads the weight shard and the KV cache — the
//!   bandwidth floor that makes decode memory-bound at small batch.
//! * **Communication**: two Megatron all-reduces per layer over the TP
//!   group (`2·tokens·h` elements, the training model's `N_act,TP`) and
//!   one boundary transfer per pipeline hop. A single request crosses
//!   all `PP` stages sequentially, so per-layer costs sum over the full
//!   stack — no steady-state `1/N_PP` share as in training (the
//!   pipeline is not kept full by microbatches).
//!
//! `TTFT = prefill + decode_step(s_p)` (the first sampled token),
//! `TPOT = decode_step(c̄)` at the mean decode context
//! `c̄ = s_p + (d−1)/2`, and `latency = prefill + d·TPOT`.
//!
//! Mixture-of-experts stacks are priced as their dense-FFN equivalent
//! (the router's all-to-all is not yet modeled for serving).

use amped_core::{Result, Scenario, Seconds};
use amped_memory::KvCacheModel;
use amped_topo::Collective;

use crate::estimate::{InferEstimate, PhaseBreakdown};
use crate::InferenceConfig;

/// Prices inference requests on one scenario.
#[derive(Debug, Clone)]
pub struct InferEstimator<'a> {
    scenario: &'a Scenario,
}

/// The per-layer GEMM MACs of one token at hidden size `h` and FFN
/// multiplier `f`: QKV (`3h²`), attention output (`h²`) and the two MLP
/// GEMMs (`2f·h²`).
fn gemm_macs_per_token(h: f64, f: f64) -> f64 {
    h * h * (4.0 + 2.0 * f)
}

impl<'a> InferEstimator<'a> {
    /// An estimator over `scenario`'s model, accelerator, system and
    /// parallelism mapping.
    pub fn new(scenario: &'a Scenario) -> Self {
        InferEstimator { scenario }
    }

    /// Price `config` on this scenario.
    ///
    /// # Errors
    ///
    /// [`Error::Incompatible`](amped_core::Error) when the scenario's
    /// parallelism does not tile its system or model.
    pub fn estimate(&self, config: &InferenceConfig) -> Result<InferEstimate> {
        let s = self.scenario;
        s.parallelism.validate_against(&s.system, &s.model)?;
        let kv = self.kv_model(config);
        let footprint = kv.footprint(config.batch(), config.max_context());
        let capacity = s.accelerator.memory_bytes();

        let prefill = self.prefill_phase(config, &kv);
        let first_step = self.decode_phase(config, &kv, config.prompt_tokens() as f64);
        let decode = self.decode_phase(config, &kv, config.mean_decode_context());

        let ttft = prefill.total.get() + first_step.total.get();
        let tpot = decode.total.get();
        let request_latency = prefill.total.get() + config.decode_tokens() as f64 * tpot;
        let replicas = s.parallelism.dp();
        let tokens_per_sec = replicas as f64 * config.batch() as f64 / tpot;

        Ok(InferEstimate {
            ttft: Seconds::new(ttft),
            tpot: Seconds::new(tpot),
            request_latency: Seconds::new(request_latency),
            tokens_per_sec,
            prefill,
            decode,
            kv_cache_bytes: footprint.kv_cache,
            weight_bytes: footprint.weights,
            fits_memory: footprint.total() <= capacity,
            batch: config.batch(),
            replicas,
            workers: s.parallelism.total_workers(),
        })
    }

    /// This scenario's KV-cache model under `config`'s cache precision.
    pub fn kv_model(&self, config: &InferenceConfig) -> KvCacheModel<'_> {
        KvCacheModel::new(&self.scenario.model, &self.scenario.parallelism)
            .with_precision(self.scenario.precision)
            .with_kv_bits(config.kv_bits())
    }

    /// The prefill phase: one batched forward pass over the prompt.
    fn prefill_phase(&self, config: &InferenceConfig, kv: &KvCacheModel<'_>) -> PhaseBreakdown {
        let s = self.scenario;
        let model = &s.model;
        let (h, f) = (model.hidden_size() as f64, model.ffn_mult());
        let layers = model.num_layers() as f64;
        let tp = s.parallelism.tp() as f64;
        let pp = s.parallelism.pp() as f64;
        let batch = config.batch() as f64;
        let prompt = config.prompt_tokens() as f64;

        // Per-sequence MACs across the stack; the score/context products
        // attend over the full prompt (2·s_p²·h per layer).
        let macs =
            batch * layers * (prompt * gemm_macs_per_token(h, f) + 2.0 * prompt * prompt * h) / tp;
        let eff = amped_core::roofline::prefill_efficiency(
            model,
            &s.accelerator,
            s.precision,
            batch,
            prompt,
        );
        let peak = s
            .accelerator
            .peak_flops_per_sec(s.precision.mac_operand_bits());
        let compute = 2.0 * macs / (peak * eff);

        // Bandwidth floor: each stage streams its weight shard once and
        // writes the prompt's KV entries; stages run sequentially.
        let bw = s.accelerator.memory_bandwidth_bytes_per_sec();
        let kv_write = batch * prompt * kv.kv_bytes_per_token();
        let memory = pp * (kv.weights_per_device() + kv_write) / bw;

        let tokens = batch * prompt;
        let comm = self.tp_comm(tokens, layers) + self.pp_comm(tokens);
        PhaseBreakdown::from_floors(compute, memory, comm)
    }

    /// One decode step: a single token per sequence at context `context`.
    fn decode_phase(
        &self,
        config: &InferenceConfig,
        kv: &KvCacheModel<'_>,
        context: f64,
    ) -> PhaseBreakdown {
        let s = self.scenario;
        let model = &s.model;
        let (h, f) = (model.hidden_size() as f64, model.ffn_mult());
        let layers = model.num_layers() as f64;
        let tp = s.parallelism.tp() as f64;
        let pp = s.parallelism.pp() as f64;
        let batch = config.batch() as f64;

        // GEMV floor: the step's MACs at peak. Decode GEMVs do not reach
        // peak in practice, but the bandwidth floor below is what binds in
        // that regime — the max() picks the governing constraint, so the
        // step can never be priced faster than the pure-bandwidth bound.
        let head = if model.include_head() {
            h * model.vocab_size() as f64
        } else {
            0.0
        };
        let macs = batch
            * (layers * (gemm_macs_per_token(h, f) + 2.0 * context * h) + head)
            / tp;
        let peak = s
            .accelerator
            .peak_flops_per_sec(s.precision.mac_operand_bits());
        let compute = 2.0 * macs / peak;

        // Bandwidth floor: every step re-reads the weight shard and each
        // sequence's cached context, and writes one new KV entry.
        let bw = s.accelerator.memory_bandwidth_bytes_per_sec();
        let kv_traffic = batch * (context + 1.0) * kv.kv_bytes_per_token();
        let memory = pp * (kv.weights_per_device() + kv_traffic) / bw;

        let comm = self.tp_comm(batch, layers) + self.pp_comm(batch);
        PhaseBreakdown::from_floors(compute, memory, comm)
    }

    /// Forward tensor-parallel all-reduces for `tokens` tokens across
    /// `layers` layers: the training model's Eq. 6 volumes (`2·t·h`
    /// elements per layer, hierarchical intra/inter split, NIC-aggregate
    /// bandwidth for the inter stream) summed over the full stack.
    fn tp_comm(&self, tokens: f64, layers: f64) -> f64 {
        let s = self.scenario;
        let p = &s.parallelism;
        if p.tp() <= 1 {
            return 0.0;
        }
        let elems = 2.0 * tokens * s.model.hidden_size() as f64;
        let act_bits = s.precision.act_bits as f64;
        let intra = s.system.intra();
        let inter = s.system.inter();
        let mut t = 0.0;
        if p.tp_intra() > 1 {
            let cost = intra.topology.cost(Collective::AllReduce, p.tp_intra());
            t += cost.time(elems * act_bits, intra.latency_s, intra.bandwidth_bits_per_sec);
        }
        if p.tp_inter() > 1 {
            let cost = inter.topology.cost(Collective::AllReduce, p.tp_inter());
            t += cost.time(elems * act_bits, inter.latency_s, self.inter_bw_tp_stream());
        }
        layers * t
    }

    /// Pipeline-boundary transfers for `tokens` tokens: `PP − 1` hops at
    /// the slower of the intra/inter link (the training model's Eq. 5
    /// max), each moving the `t·h` activation slab.
    fn pp_comm(&self, tokens: f64) -> f64 {
        let s = self.scenario;
        let p = &s.parallelism;
        if p.pp() <= 1 {
            return 0.0;
        }
        let vol_bits = tokens * s.model.hidden_size() as f64 * s.precision.act_bits as f64;
        let intra = s.system.intra();
        let inter = s.system.inter();
        let t_intra = if p.pp_intra() > 1 {
            intra.latency_s + vol_bits / intra.bandwidth_bits_per_sec
        } else {
            0.0
        };
        let t_inter = if p.pp_inter() > 1 {
            inter.latency_s + vol_bits / self.inter_bw_tp_stream()
        } else {
            0.0
        };
        (p.pp() - 1) as f64 * t_intra.max(t_inter)
    }

    /// Effective inter-node bandwidth of one tensor-parallel stream: the
    /// node's TP shards drive its NICs in parallel, capped at the NIC
    /// aggregate (the training estimator's hierarchical-collective rule).
    fn inter_bw_tp_stream(&self) -> f64 {
        let s = self.scenario;
        let nic_aggregate =
            s.system.inter().bandwidth_bits_per_sec * s.system.nics_per_node() as f64;
        (s.system.inter_bandwidth_per_accel() * s.parallelism.tp_intra() as f64).min(nic_aggregate)
    }
}

/// A cheap lower bound on [`InferEstimate::request_latency`]: compute
/// floors at full peak (efficiency 1), the exact bandwidth floors, no
/// communication. Exact in f64 against [`InferEstimator::estimate`]'s
/// own floors, so a serving search can prune with it and never drop a
/// candidate that would have ranked.
pub fn latency_lower_bound(scenario: &Scenario, config: &InferenceConfig) -> Result<f64> {
    let est = InferEstimator::new(scenario);
    let kv = est.kv_model(config);
    let model = &scenario.model;
    let (h, f) = (model.hidden_size() as f64, model.ffn_mult());
    let layers = model.num_layers() as f64;
    let tp = scenario.parallelism.tp() as f64;
    let pp = scenario.parallelism.pp() as f64;
    let batch = config.batch() as f64;
    let prompt = config.prompt_tokens() as f64;
    let peak = scenario
        .accelerator
        .peak_flops_per_sec(scenario.precision.mac_operand_bits());
    let bw = scenario.accelerator.memory_bandwidth_bytes_per_sec();
    scenario
        .parallelism
        .validate_against(&scenario.system, &scenario.model)?;

    let prefill_macs =
        batch * layers * (prompt * gemm_macs_per_token(h, f) + 2.0 * prompt * prompt * h) / tp;
    let prefill_mem = pp
        * (kv.weights_per_device() + batch * prompt * kv.kv_bytes_per_token())
        / bw;
    let prefill = (2.0 * prefill_macs / peak).max(prefill_mem);

    let context = config.mean_decode_context();
    let head = if model.include_head() {
        h * model.vocab_size() as f64
    } else {
        0.0
    };
    let step_macs = batch * (layers * (gemm_macs_per_token(h, f) + 2.0 * context * h) + head) / tp;
    let step_mem = pp
        * (kv.weights_per_device() + batch * (context + 1.0) * kv.kv_bytes_per_token())
        / bw;
    let step = (2.0 * step_macs / peak).max(step_mem);

    Ok(prefill + config.decode_tokens() as f64 * step)
}
