//! The serving cost-backend contract, mirroring
//! [`CostBackend`](amped_core::CostBackend) for training.

use std::sync::Arc;

use amped_core::{Parallelism, Result, Scenario};
use amped_obs::Observer;

use crate::estimate::InferEstimate;
use crate::estimator::InferEstimator;
use crate::InferenceConfig;

/// Anything that can price an inference request on a scenario.
///
/// The serving analogue of [`CostBackend`](amped_core::CostBackend):
/// the `amped infer` CLI, the `/v1/infer` endpoint and the serving
/// search all speak this interface, so instrumented
/// ([`ObservedInferBackend`]) and future simulator-refined backends
/// slot in without the callers changing.
pub trait InferBackend: Send + Sync {
    /// Stable identifier used in reports and observability series.
    fn name(&self) -> &'static str;

    /// Price one request.
    ///
    /// # Errors
    ///
    /// Backend-specific; the analytical backend fails only on scenarios
    /// whose parallelism does not tile the system or model.
    fn evaluate(&self, scenario: &Scenario, config: &InferenceConfig) -> Result<InferEstimate>;

    /// Price one request under many candidate mappings. The default
    /// loops [`InferBackend::evaluate`]; batch-capable backends can hoist
    /// mapping-invariant work.
    fn evaluate_many(
        &self,
        scenario: &Scenario,
        mappings: &[Parallelism],
        config: &InferenceConfig,
    ) -> Vec<Result<InferEstimate>> {
        mappings
            .iter()
            .map(|&parallelism| {
                let candidate = Scenario {
                    parallelism,
                    ..scenario.clone()
                };
                self.evaluate(&candidate, config)
            })
            .collect()
    }
}

/// The closed-form prefill/decode roofline of [`InferEstimator`].
#[derive(Debug, Clone, Copy, Default)]
pub struct AnalyticalInferBackend;

impl InferBackend for AnalyticalInferBackend {
    fn name(&self) -> &'static str {
        "infer-analytical"
    }

    fn evaluate(&self, scenario: &Scenario, config: &InferenceConfig) -> Result<InferEstimate> {
        InferEstimator::new(scenario).estimate(config)
    }
}

/// Decorator recording every evaluation on an [`Observer`]: an
/// `evaluate` span per call and a `backend.<name>.evaluations` counter,
/// registered eagerly at zero so reports show the backend before any
/// traffic. Observation is passive — estimates are bit-identical with
/// or without it.
pub struct ObservedInferBackend {
    inner: Box<dyn InferBackend>,
    observer: Arc<Observer>,
    evaluations: amped_obs::Counter,
}

impl ObservedInferBackend {
    /// Wrap `inner` so every evaluation is recorded on `observer`.
    pub fn new(inner: Box<dyn InferBackend>, observer: Arc<Observer>) -> Self {
        let evaluations = observer.counter(&format!("backend.{}.evaluations", inner.name()));
        ObservedInferBackend {
            inner,
            observer,
            evaluations,
        }
    }

    /// The wrapped backend.
    pub fn inner(&self) -> &dyn InferBackend {
        self.inner.as_ref()
    }
}

impl std::fmt::Debug for ObservedInferBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ObservedInferBackend")
            .field("inner", &self.inner.name())
            .finish_non_exhaustive()
    }
}

impl InferBackend for ObservedInferBackend {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn evaluate(&self, scenario: &Scenario, config: &InferenceConfig) -> Result<InferEstimate> {
        let _span = self.observer.span_with_cat(self.inner.name(), "evaluate");
        self.evaluations.incr();
        self.inner.evaluate(scenario, config)
    }

    fn evaluate_many(
        &self,
        scenario: &Scenario,
        mappings: &[Parallelism],
        config: &InferenceConfig,
    ) -> Vec<Result<InferEstimate>> {
        let _span = self
            .observer
            .span_with_cat(self.inner.name(), "evaluate_many");
        self.evaluations.add(mappings.len() as u64);
        self.inner.evaluate_many(scenario, mappings, config)
    }
}
