//! # amped-infer — the AMPeD serving-workload cost model
//!
//! AMPeD prices *training* iterations. This crate opens the second
//! workload the same hardware runs: autoregressive **inference**. A
//! serving request has two analytically distinct phases, and the crate
//! prices each with the roofline discipline of the training estimator:
//!
//! * **Prefill** — the prompt's tokens flow through the network in one
//!   batched forward pass. Arithmetic intensity is high (big GEMMs), so
//!   the phase is compute-bound and priced at the attainable fraction of
//!   peak given by [`prefill_efficiency`](amped_core::roofline::prefill_efficiency)
//!   — the *same* composite GEMM roofline the training model uses, just
//!   evaluated at the prompt length instead of the training sequence.
//! * **Decode** — one token per step per sequence. Every step re-reads
//!   the full weight shard and the KV cache, so per-step time is the
//!   maximum of a compute floor and a **memory-bandwidth floor** (plus
//!   tensor-parallel all-reduces and pipeline hops). At small batch the
//!   bandwidth term dominates: decode throughput is a property of HBM,
//!   not of the MAC array.
//!
//! KV-cache growth — the thing that actually limits serving batch sizes —
//! comes from [`KvCacheModel`](amped_memory::KvCacheModel) in
//! `amped-memory`, which also provides the closed-form max-batch and
//! max-context solves.
//!
//! The crate mirrors the training engine's layering:
//!
//! | training | serving |
//! |---|---|
//! | [`Estimate`](amped_core::Estimate) | [`InferEstimate`] |
//! | [`CostBackend`](amped_core::CostBackend) | [`InferBackend`] |
//! | [`AnalyticalBackend`](amped_core::AnalyticalBackend) | [`AnalyticalInferBackend`] |
//! | [`ObservedBackend`](amped_core::ObservedBackend) | [`ObservedInferBackend`] |
//!
//! # Example
//!
//! ```
//! use amped_core::prelude::*;
//! use amped_infer::{InferEstimator, InferenceConfig};
//!
//! # fn main() -> Result<(), amped_core::Error> {
//! let model = TransformerModel::builder("gpt-1.3b")
//!     .layers(24).hidden_size(2048).heads(16).seq_len(1024).vocab_size(50257)
//!     .build()?;
//! let a100 = AcceleratorSpec::builder("A100")
//!     .frequency_hz(1.41e9).cores(108).mac_units(4, 512, 8)
//!     .nonlin_units(192, 4, 32).memory(80e9, 2.0e12)
//!     .build()?;
//! let node = SystemSpec::new(1, 8, Link::new(5e-6, 2.4e12), Link::new(1e-5, 2e11), 8)?;
//! let mapping = Parallelism::builder().tp(8, 1).build()?;
//! let scenario = Scenario::new(model, a100, node, mapping);
//!
//! let request = InferenceConfig::new(512, 128, 8)?;
//! let estimate = InferEstimator::new(&scenario).estimate(&request)?;
//! assert!(estimate.ttft.get() > 0.0);
//! assert!(estimate.tpot.get() >= estimate.decode.memory.get());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod backend;
mod estimate;
mod estimator;

pub use amped_core::InferenceConfig;
pub use backend::{AnalyticalInferBackend, InferBackend, ObservedInferBackend};
pub use estimate::{InferEstimate, PhaseBreakdown};
pub use estimator::{latency_lower_bound, InferEstimator};
