//! Deterministic fault injection: stragglers, degraded links, failures.
//!
//! A [`FaultPlan`] describes *what goes wrong* during a training run —
//! straggler devices computing slower than their peers, links flapping to a
//! fraction of their bandwidth, and transient device failures that force a
//! restart from the last checkpoint. Plans are seeded: materializing one is
//! a pure function of the seed, so the same plan produces bit-identical
//! simulated timelines on any platform and at any worker-pool size, and a
//! plan with no seed injects nothing at all (the no-fault path through the
//! executor is byte-identical to a fault-free simulator).
//!
//! Randomness comes from [`SplitMix64`] — a tiny std-only generator with
//! pinned outputs, so fault schedules never depend on a platform RNG.

use amped_core::FailureDomainTree;
use serde::{Deserialize, Serialize};

use crate::graph::{LinkClass, TaskKind};

/// The splitmix64 generator (Steele, Lea & Flood 2014): one 64-bit state,
/// full period, passes BigCrush. Used for every random draw in fault
/// injection so schedules are reproducible across platforms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A generator seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// An exponential variate with the given mean (inverse-CDF sampling;
    /// `1 - u` keeps the argument of `ln` in `(0, 1]`).
    pub fn exp(&mut self, mean: f64) -> f64 {
        -mean * (1.0 - self.next_f64()).ln()
    }
}

/// One device computing slower than its peers.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Straggler {
    /// Device index in the DP × PP grid.
    pub device: usize,
    /// Compute-duration multiplier (`1.5` = 50% slower; must be ≥ 1).
    pub slowdown: f64,
}

/// One link running degraded for a window of the iteration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkFault {
    /// Sending device whose port degrades.
    pub device: usize,
    /// Which link class of that device is affected.
    pub link: LinkClass,
    /// Transfer-duration multiplier while the window is open (must be ≥ 1).
    pub factor: f64,
    /// Window start, seconds into the iteration.
    pub from_s: f64,
    /// Window end, seconds into the iteration (`f64::INFINITY` = for good).
    pub until_s: f64,
}

/// What goes wrong during a run, and how the run defends itself.
///
/// The plan stays inert until it is given a seed: [`FaultPlan::is_active`]
/// gates every injection site, so `FaultPlan::default()` (seed `None`)
/// leaves the simulator bit-identical to one that never heard of faults.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Master seed; `None` disables all injection.
    pub seed: Option<u64>,
    /// Number of devices to pick (seeded-uniformly) as stragglers.
    #[serde(default)]
    pub random_stragglers: usize,
    /// Slowdown applied to randomly picked stragglers.
    #[serde(default = "default_straggler_slowdown")]
    pub straggler_slowdown: f64,
    /// Explicitly placed stragglers (applied before random picks).
    #[serde(default)]
    pub stragglers: Vec<Straggler>,
    /// Degraded/flapping link windows.
    #[serde(default)]
    pub link_faults: Vec<LinkFault>,
    /// Mean time between failures of one device, seconds. `None` = no
    /// transient failures.
    pub device_mtbf_s: Option<f64>,
    /// Seconds from a failure to resumed training (not counting rework).
    #[serde(default)]
    pub restart_s: f64,
    /// Checkpoint interval in seconds of useful work; `None` resolves to
    /// the Young/Daly optimum for the measured checkpoint cost.
    pub ckpt_interval_s: Option<f64>,
    /// Bandwidth at which checkpoint state drains to stable storage,
    /// bytes/s (per device).
    #[serde(default = "default_ckpt_write_bw")]
    pub ckpt_write_bytes_per_s: f64,
    /// Failure-domain hierarchy for correlated outages (rack/pod tiers).
    /// `None` = no correlated events at all.
    #[serde(default)]
    pub domain_tree: Option<FailureDomainTree>,
    /// Mean time between spot preemptions of one node, seconds. Requires
    /// a domain tree (for the node count); `None` = no preemptions.
    #[serde(default)]
    pub preemption_mtbf_s: Option<f64>,
    /// Seconds for lost capacity to regrow after a survivable outage.
    /// `Some` enables elastic shrink/regrow: outages whose blast radius
    /// leaves at least one DP replica intact shrink the run instead of
    /// killing it. `None` = every outage restarts from the checkpoint.
    #[serde(default)]
    pub regrow_delay_s: Option<f64>,
}

fn default_straggler_slowdown() -> f64 {
    1.5
}

fn default_ckpt_write_bw() -> f64 {
    2e9
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            seed: None,
            random_stragglers: 0,
            straggler_slowdown: 1.5,
            stragglers: Vec::new(),
            link_faults: Vec::new(),
            device_mtbf_s: None,
            restart_s: 0.0,
            ckpt_interval_s: None,
            ckpt_write_bytes_per_s: 2e9,
            domain_tree: None,
            preemption_mtbf_s: None,
            regrow_delay_s: None,
        }
    }
}

impl FaultPlan {
    /// An inert plan (no seed, nothing injected).
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// An active plan with the given master seed and no faults configured
    /// yet.
    pub fn seeded(seed: u64) -> Self {
        FaultPlan {
            seed: Some(seed),
            ..FaultPlan::default()
        }
    }

    /// Whether the plan injects anything at all.
    pub fn is_active(&self) -> bool {
        self.seed.is_some()
    }

    /// Pick `count` distinct devices as stragglers at `slowdown`.
    pub fn with_random_stragglers(mut self, count: usize, slowdown: f64) -> Self {
        self.random_stragglers = count;
        self.straggler_slowdown = slowdown;
        self
    }

    /// Pin a specific device as a straggler.
    pub fn with_straggler(mut self, device: usize, slowdown: f64) -> Self {
        self.stragglers.push(Straggler { device, slowdown });
        self
    }

    /// Add a degraded-link window.
    pub fn with_link_fault(mut self, fault: LinkFault) -> Self {
        self.link_faults.push(fault);
        self
    }

    /// Enable transient device failures at the given per-device MTBF.
    pub fn with_device_mtbf(mut self, seconds: f64) -> Self {
        self.device_mtbf_s = Some(seconds);
        self
    }

    /// Set the restart cost after a failure.
    pub fn with_restart(mut self, seconds: f64) -> Self {
        self.restart_s = seconds;
        self
    }

    /// Fix the checkpoint interval instead of using Young/Daly.
    pub fn with_ckpt_interval(mut self, seconds: f64) -> Self {
        self.ckpt_interval_s = Some(seconds);
        self
    }

    /// Set the checkpoint write bandwidth in bytes/s per device.
    pub fn with_ckpt_write_bw(mut self, bytes_per_s: f64) -> Self {
        self.ckpt_write_bytes_per_s = bytes_per_s;
        self
    }

    /// Attach a failure-domain tree: rack/pod tiers with an outage rate
    /// start injecting correlated [`DomainEvent`]s.
    pub fn with_domain_tree(mut self, tree: FailureDomainTree) -> Self {
        self.domain_tree = Some(tree);
        self
    }

    /// Enable spot preemptions at the given per-node MTBF (needs a domain
    /// tree for the node count).
    pub fn with_preemption(mut self, mtbf_s: f64) -> Self {
        self.preemption_mtbf_s = Some(mtbf_s);
        self
    }

    /// Enable elastic shrink/regrow with the given capacity-regrow delay.
    pub fn with_regrow(mut self, delay_s: f64) -> Self {
        self.regrow_delay_s = Some(delay_s);
        self
    }

    /// Check every field.
    ///
    /// # Errors
    ///
    /// Returns [`amped_core::Error::InvalidConfig`] naming the offending
    /// field.
    pub fn validate(&self) -> amped_core::Result<()> {
        let bad = |reason: String| Err(amped_core::Error::invalid("fault-plan", reason));
        for s in &self.stragglers {
            if !(s.slowdown >= 1.0 && s.slowdown.is_finite()) {
                return bad(format!("straggler slowdown must be >= 1, got {}", s.slowdown));
            }
        }
        if self.random_stragglers > 0
            && !(self.straggler_slowdown >= 1.0 && self.straggler_slowdown.is_finite())
        {
            return bad(format!(
                "straggler slowdown must be >= 1, got {}",
                self.straggler_slowdown
            ));
        }
        for l in &self.link_faults {
            if !(l.factor >= 1.0 && l.factor.is_finite()) {
                return bad(format!("link fault factor must be >= 1, got {}", l.factor));
            }
            if !(l.from_s >= 0.0 && l.from_s.is_finite()) || l.until_s < l.from_s {
                return bad(format!(
                    "link fault window [{}, {}) is malformed",
                    l.from_s, l.until_s
                ));
            }
        }
        if let Some(m) = self.device_mtbf_s {
            if !(m > 0.0 && m.is_finite()) {
                return bad(format!("device mtbf must be positive, got {m}"));
            }
        }
        if !(self.restart_s >= 0.0 && self.restart_s.is_finite()) {
            return bad(format!("restart must be non-negative, got {}", self.restart_s));
        }
        if let Some(tau) = self.ckpt_interval_s {
            if !(tau > 0.0 && tau.is_finite()) {
                return bad(format!("checkpoint interval must be positive, got {tau}"));
            }
        }
        if !(self.ckpt_write_bytes_per_s > 0.0 && self.ckpt_write_bytes_per_s.is_finite()) {
            return bad(format!(
                "checkpoint write bandwidth must be positive, got {}",
                self.ckpt_write_bytes_per_s
            ));
        }
        if let Some(tree) = &self.domain_tree {
            tree.validate()?;
        }
        if let Some(m) = self.preemption_mtbf_s {
            if !(m > 0.0 && m.is_finite()) {
                return bad(format!("preemption mtbf must be positive, got {m}"));
            }
            if self.domain_tree.is_none() {
                return bad(
                    "preemption mtbf needs a domain tree for the node count".to_string(),
                );
            }
        }
        if let Some(d) = self.regrow_delay_s {
            if !(d >= 0.0 && d.is_finite()) {
                return bad(format!("regrow delay must be non-negative, got {d}"));
            }
        }
        Ok(())
    }

    /// Resolve the plan against a device grid: explicit stragglers land
    /// first, then `random_stragglers` distinct healthy devices are drawn
    /// from the seeded stream. A pure function of `(self, n_devices)` —
    /// this is what makes fault runs reproducible at any `--jobs` count.
    pub fn materialize(&self, n_devices: usize) -> FaultSchedule {
        let mut compute_slowdown = vec![1.0f64; n_devices];
        if !self.is_active() {
            return FaultSchedule {
                compute_slowdown,
                link_faults: Vec::new(),
            };
        }
        for s in &self.stragglers {
            if s.device < n_devices {
                compute_slowdown[s.device] = compute_slowdown[s.device].max(s.slowdown);
            }
        }
        if self.random_stragglers > 0 && n_devices > 0 {
            let healthy = compute_slowdown.iter().filter(|&&f| f == 1.0).count();
            let picks = self.random_stragglers.min(healthy);
            let mut rng = SplitMix64::new(self.seed.unwrap_or(0) ^ 0x5747_4C52_5354_4752);
            let mut placed = 0;
            while placed < picks {
                let d = (rng.next_u64() % n_devices as u64) as usize;
                if compute_slowdown[d] == 1.0 {
                    compute_slowdown[d] = self.straggler_slowdown;
                    placed += 1;
                }
            }
        }
        FaultSchedule {
            compute_slowdown,
            link_faults: self.link_faults.clone(),
        }
    }

    /// The seeded stream of correlated events this plan injects: rack and
    /// pod outages from the domain tree's per-tier rates, and spot
    /// preemptions of single nodes. A pure function of the seed and the
    /// tree — enumeration order never touches the per-tier generators, so
    /// the schedule is bit-identical at any worker-pool size. Inactive
    /// plans (no seed) and plans without a tree yield an empty stream.
    pub fn domain_events(&self) -> DomainEventStream {
        let mut tiers = Vec::new();
        if let (Some(seed), Some(tree)) = (self.seed, &self.domain_tree) {
            if let Some(mtbf) = tree.rack_mtbf_s {
                tiers.push(TierStream::new(
                    seed ^ 0x444F_4D4E_4F54_4745,
                    mtbf / tree.num_racks() as f64,
                    tree.num_racks(),
                    DomainTier::Rack,
                ));
            }
            if let Some(mtbf) = tree.pod_mtbf_s {
                tiers.push(TierStream::new(
                    seed ^ 0x444F_4D4E_4F54_4746,
                    mtbf / tree.num_pods() as f64,
                    tree.num_pods(),
                    DomainTier::Pod,
                ));
            }
            if let Some(mtbf) = self.preemption_mtbf_s {
                tiers.push(TierStream::new(
                    seed ^ 0x5052_4545_4D50_544E,
                    mtbf / tree.num_nodes as f64,
                    tree.num_nodes,
                    DomainTier::Node,
                ));
            }
        }
        DomainEventStream { tiers }
    }
}

/// Which level of the domain hierarchy an event strikes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum DomainTier {
    /// A whole rack (PDU / ToR switch failure).
    Rack,
    /// A whole pod (aggregation-switch / cooling-loop failure).
    Pod,
    /// One node, preempted (spot capacity reclaimed).
    Node,
}

/// One correlated fault arrival materialized from a [`FailureDomainTree`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DomainEvent {
    /// Arrival time, seconds of wall clock since run start.
    pub at_s: f64,
    /// Which tier failed.
    pub tier: DomainTier,
    /// Index of the failed domain within its tier (rack index, pod index,
    /// or node index for preemptions).
    pub domain: usize,
}

impl DomainEvent {
    /// The half-open node range `[first, last)` this event takes down.
    pub fn node_span(&self, tree: &FailureDomainTree) -> (usize, usize) {
        let per = match self.tier {
            DomainTier::Rack => tree.nodes_per_rack,
            DomainTier::Pod => tree.nodes_per_pod(),
            DomainTier::Node => 1,
        };
        let first = self.domain * per;
        (first.min(tree.num_nodes), ((self.domain + 1) * per).min(tree.num_nodes))
    }

    /// Whether this is a spot preemption rather than a hardware outage.
    pub fn is_preemption(&self) -> bool {
        self.tier == DomainTier::Node
    }
}

/// One tier's independent Poisson stream: its own [`SplitMix64`] draws
/// inter-arrival gaps at the tier's aggregate rate, then picks the failed
/// domain uniformly. Keeping the generators per-tier means adding or
/// removing one tier never perturbs another's schedule.
#[derive(Debug, Clone)]
struct TierStream {
    rng: SplitMix64,
    mean_s: f64,
    num_domains: usize,
    next_at: f64,
    tier: DomainTier,
}

impl TierStream {
    fn new(seed: u64, mean_s: f64, num_domains: usize, tier: DomainTier) -> Self {
        let mut rng = SplitMix64::new(seed);
        let next_at = rng.exp(mean_s);
        TierStream { rng, mean_s, num_domains, next_at, tier }
    }
}

/// The merged, time-ordered stream of correlated events a [`FaultPlan`]
/// injects. Infinite while any tier is configured; ties between tiers
/// break in declaration order (rack, then pod, then preemption).
#[derive(Debug, Clone)]
pub struct DomainEventStream {
    tiers: Vec<TierStream>,
}

impl Iterator for DomainEventStream {
    type Item = DomainEvent;

    fn next(&mut self) -> Option<DomainEvent> {
        let mut pick = 0usize;
        for (i, t) in self.tiers.iter().enumerate().skip(1) {
            if t.next_at < self.tiers[pick].next_at {
                pick = i;
            }
        }
        let t = self.tiers.get_mut(pick)?;
        let at_s = t.next_at;
        let domain = (t.rng.next_u64() % t.num_domains.max(1) as u64) as usize;
        t.next_at = at_s + t.rng.exp(t.mean_s);
        Some(DomainEvent { at_s, tier: t.tier, domain })
    }
}

/// A [`FaultPlan`] resolved against a concrete device grid: the per-device
/// compute slowdowns and the link-degradation windows the executor consults
/// when pricing each task.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSchedule {
    /// Compute-duration multiplier per device (`1.0` = healthy).
    pub compute_slowdown: Vec<f64>,
    /// Degraded-link windows, checked against the task start time.
    pub link_faults: Vec<LinkFault>,
}

impl FaultSchedule {
    /// Adjust a task's base duration for faults active at time `now`.
    pub fn adjust(&self, kind: &TaskKind, base_s: f64, now: f64) -> f64 {
        match *kind {
            TaskKind::Compute { device, .. } => {
                base_s * self.compute_slowdown.get(device).copied().unwrap_or(1.0)
            }
            TaskKind::Transfer { src, link, .. } => {
                let mut d = base_s;
                for f in &self.link_faults {
                    if f.device == src && f.link == link && now >= f.from_s && now < f.until_s {
                        d *= f.factor;
                    }
                }
                d
            }
        }
    }

    /// Whether the schedule perturbs anything at all.
    pub fn is_noop(&self) -> bool {
        self.link_faults.is_empty() && self.compute_slowdown.iter().all(|&f| f == 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix64_first_outputs_are_pinned() {
        // Reference vectors for seed 0 (Vigna's splitmix64.c test values).
        let mut rng = SplitMix64::new(0);
        assert_eq!(rng.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(rng.next_u64(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(rng.next_u64(), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn splitmix64_streams_differ_by_seed_and_repeat_by_seed() {
        let a: Vec<u64> = {
            let mut r = SplitMix64::new(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = SplitMix64::new(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let c: Vec<u64> = {
            let mut r = SplitMix64::new(43);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn next_f64_is_in_unit_interval() {
        let mut rng = SplitMix64::new(7);
        for _ in 0..10_000 {
            let u = rng.next_f64();
            assert!((0.0..1.0).contains(&u), "{u}");
        }
    }

    #[test]
    fn exp_sample_mean_converges() {
        let mut rng = SplitMix64::new(11);
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| rng.exp(3.0)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.1, "sample mean {mean}");
    }

    #[test]
    fn inactive_plan_materializes_to_a_noop() {
        let sched = FaultPlan::none()
            .with_random_stragglers(3, 2.0)
            .with_straggler(0, 4.0)
            .materialize(8);
        assert!(sched.is_noop());
    }

    #[test]
    fn materialize_is_deterministic_and_respects_counts() {
        let plan = FaultPlan::seeded(99).with_random_stragglers(3, 2.0);
        let a = plan.materialize(16);
        let b = plan.materialize(16);
        assert_eq!(a, b);
        assert_eq!(a.compute_slowdown.iter().filter(|&&f| f == 2.0).count(), 3);
        assert!(!a.is_noop());
        let other = FaultPlan::seeded(100).with_random_stragglers(3, 2.0).materialize(16);
        assert_ne!(a, other, "different seeds should usually pick differently");
    }

    #[test]
    fn explicit_stragglers_survive_random_picks() {
        let plan = FaultPlan::seeded(1)
            .with_straggler(5, 3.0)
            .with_random_stragglers(2, 1.5);
        let sched = plan.materialize(8);
        assert_eq!(sched.compute_slowdown[5], 3.0);
        assert_eq!(sched.compute_slowdown.iter().filter(|&&f| f == 1.5).count(), 2);
    }

    #[test]
    fn random_picks_cap_at_the_healthy_device_count() {
        let plan = FaultPlan::seeded(1).with_random_stragglers(100, 2.0);
        let sched = plan.materialize(4);
        assert!(sched.compute_slowdown.iter().all(|&f| f == 2.0));
    }

    #[test]
    fn adjust_applies_slowdowns_and_windows() {
        let sched = FaultSchedule {
            compute_slowdown: vec![1.0, 2.0],
            link_faults: vec![LinkFault {
                device: 0,
                link: LinkClass::Intra,
                factor: 4.0,
                from_s: 10.0,
                until_s: 20.0,
            }],
        };
        let c0 = TaskKind::Compute { device: 0, duration_s: 1.0 };
        let c1 = TaskKind::Compute { device: 1, duration_s: 1.0 };
        assert_eq!(sched.adjust(&c0, 1.0, 0.0), 1.0);
        assert_eq!(sched.adjust(&c1, 1.0, 0.0), 2.0);
        let t = TaskKind::Transfer {
            src: 0,
            dst: 1,
            bytes: 1.0,
            link: LinkClass::Intra,
        };
        assert_eq!(sched.adjust(&t, 1.0, 5.0), 1.0, "before the window");
        assert_eq!(sched.adjust(&t, 1.0, 15.0), 4.0, "inside the window");
        assert_eq!(sched.adjust(&t, 1.0, 20.0), 1.0, "window end is exclusive");
        let wrong_link = TaskKind::Transfer {
            src: 0,
            dst: 1,
            bytes: 1.0,
            link: LinkClass::Inter,
        };
        assert_eq!(sched.adjust(&wrong_link, 1.0, 15.0), 1.0);
    }

    #[test]
    fn validation_rejects_bad_fields() {
        assert!(FaultPlan::seeded(0).validate().is_ok());
        assert!(FaultPlan::seeded(0).with_straggler(0, 0.5).validate().is_err());
        assert!(FaultPlan::seeded(0).with_device_mtbf(0.0).validate().is_err());
        assert!(FaultPlan::seeded(0).with_restart(-1.0).validate().is_err());
        assert!(FaultPlan::seeded(0).with_ckpt_interval(0.0).validate().is_err());
        assert!(FaultPlan::seeded(0).with_ckpt_write_bw(0.0).validate().is_err());
        let bad_window = FaultPlan::seeded(0).with_link_fault(LinkFault {
            device: 0,
            link: LinkClass::Intra,
            factor: 2.0,
            from_s: 5.0,
            until_s: 1.0,
        });
        assert!(bad_window.validate().is_err());
    }

    #[test]
    fn domain_event_stream_is_seeded_ordered_and_tier_independent() {
        let tree = FailureDomainTree::new(16, 4, 2)
            .unwrap()
            .with_rack_mtbf(3.0e5)
            .with_pod_mtbf(4.0e5);
        let plan = FaultPlan::seeded(11)
            .with_domain_tree(tree.clone())
            .with_preemption(1.0e5);
        let a: Vec<DomainEvent> = plan.domain_events().take(256).collect();
        let b: Vec<DomainEvent> = plan.domain_events().take(256).collect();
        assert_eq!(a, b, "same seed + tree must reproduce the schedule");
        for w in a.windows(2) {
            assert!(w[0].at_s <= w[1].at_s, "stream must be time-ordered");
        }
        assert!(a.iter().any(|e| e.tier == DomainTier::Rack));
        assert!(a.iter().any(|e| e.tier == DomainTier::Pod));
        assert!(a.iter().any(|e| e.is_preemption()));
        for e in &a {
            let (n0, n1) = e.node_span(&tree);
            assert!(n0 < n1 && n1 <= 16, "{e:?} spans [{n0}, {n1})");
        }
        // Dropping one tier must not perturb the others' arrivals.
        let a_outages: Vec<DomainEvent> =
            a.iter().copied().filter(|e| !e.is_preemption()).collect();
        assert!(!a_outages.is_empty());
        let mut no_preempt = plan.clone();
        no_preempt.preemption_mtbf_s = None;
        let c: Vec<DomainEvent> =
            no_preempt.domain_events().take(a_outages.len()).collect();
        assert_eq!(c, a_outages);
        // A different seed draws a different schedule.
        let mut other = plan.clone();
        other.seed = Some(12);
        let d: Vec<DomainEvent> = other.domain_events().take(256).collect();
        assert_ne!(a, d);
    }

    #[test]
    fn inactive_or_treeless_plans_inject_no_domain_events() {
        let tree = FailureDomainTree::new(8, 4, 1).unwrap().with_rack_mtbf(1e5);
        let inert = FaultPlan::none().with_domain_tree(tree);
        assert_eq!(inert.domain_events().next(), None, "no seed, no events");
        assert_eq!(FaultPlan::seeded(3).domain_events().next(), None, "no tree, no events");
        // A tree with no tier rates and no preemption also yields nothing.
        let silent = FaultPlan::seeded(3)
            .with_domain_tree(FailureDomainTree::new(8, 4, 1).unwrap());
        assert_eq!(silent.domain_events().next(), None);
    }

    #[test]
    fn domain_validation_rejects_bad_fields() {
        let tree = FailureDomainTree::new(8, 4, 1).unwrap();
        assert!(FaultPlan::seeded(0)
            .with_domain_tree(tree.clone())
            .with_preemption(0.0)
            .validate()
            .is_err());
        assert!(FaultPlan::seeded(0).with_preemption(1e5).validate().is_err());
        assert!(FaultPlan::seeded(0).with_regrow(-1.0).validate().is_err());
        assert!(FaultPlan::seeded(0)
            .with_domain_tree(tree)
            .with_preemption(1e5)
            .with_regrow(600.0)
            .validate()
            .is_ok());
    }

    #[test]
    fn serde_round_trip() {
        let plan = FaultPlan::seeded(7)
            .with_random_stragglers(2, 1.8)
            .with_device_mtbf(3.6e3)
            .with_restart(60.0);
        let json = serde_json::to_string(&plan).unwrap();
        let back: FaultPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(back, plan);
        // Partial JSON fills defaults (seed omitted => inert).
        let partial: FaultPlan = serde_json::from_str("{\"random_stragglers\": 5}").unwrap();
        assert!(!partial.is_active());
        assert_eq!(partial.random_stragglers, 5);
    }
}
