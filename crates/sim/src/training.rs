//! Building and running full training-iteration task graphs.
//!
//! [`SimConfig`] lowers one optimizer step of distributed transformer
//! training — microbatched pipeline (GPipe or 1F1B) over `N_PP` stages,
//! replicated `N_DP` ways, with ring gradient all-reduce and weight update —
//! into a [`TaskGraph`] and executes it.

use amped_core::counts::LayerCounts;
use amped_core::{
    AcceleratorSpec, EfficiencyModel, EngineOptions, Error, LayerKind, Parallelism, Precision,
    Result, SystemSpec, TransformerModel,
};
use amped_memory::MemoryModel;
use amped_obs::{DeviceUtil, Observer};
use amped_topo::Collective;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

use crate::des::{DeviceStats, NetworkParams, Simulator};
use crate::fault::{FaultPlan, FaultSchedule, SplitMix64};
use crate::graph::{LinkClass, TaskGraph, TaskId, TaskKind};
use crate::timeline::Timeline;

/// Pipeline execution schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[derive(Default)]
pub enum PipelineSchedule {
    /// All forward microbatches, then all backward (Huang et al. 2018).
    #[default]
    GPipe,
    /// One-forward-one-backward steady state (PipeDream-flush /
    /// Megatron-LM's non-interleaved schedule).
    OneFOneB,
    /// Megatron-LM's interleaved schedule: each device owns
    /// `virtual_stages` model chunks, shrinking the bubble by roughly the
    /// interleaving factor at the cost of `virtual_stages`× the stage
    /// boundary traffic. The analytical model captures this as `R = 1/v`
    /// ([`Parallelism::interleaved`](amped_core::Parallelism)).
    Interleaved {
        /// Model chunks per device (`v ≥ 1`; `1` degenerates to GPipe).
        virtual_stages: usize,
    },
}


/// The outcome of simulating one training iteration.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Wall-clock seconds of the iteration.
    pub iteration_time: f64,
    /// Per-device accounting.
    pub device_stats: Vec<DeviceStats>,
    /// Full activity timeline (Fig.-1-style traces).
    pub timeline: Timeline,
    /// Mean compute utilization across devices.
    pub mean_utilization: f64,
    /// Resolved microbatch count.
    pub num_microbatches: usize,
    /// Resolved microbatch size in samples.
    pub microbatch_size: f64,
    /// Total bytes moved over intra-node links this iteration.
    pub intra_bytes: f64,
    /// Total bytes moved over inter-node links this iteration.
    pub inter_bytes: f64,
}

/// What one wall-clock slice of a replayed run was spent on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RunSpan {
    /// Forward-progress training iterations.
    Train,
    /// A synchronous checkpoint commit.
    Checkpoint,
    /// Progress discarded by a failure (recomputed after restart).
    Lost,
    /// Restart overhead after a failure.
    Restart,
    /// Training at reduced DP width while an outage regrows: iterations
    /// still complete, but each takes `dp/(dp - k)` times longer.
    Shrunk,
    /// Re-replicating state onto regrown capacity after a shrink window.
    Regrow,
}

/// One wall-clock slice of a replayed run, for run-level trace export
/// ([`crate::trace::run_to_chrome_trace`]).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RunEvent {
    /// What the slice was spent on.
    pub span: RunSpan,
    /// Start of the slice, seconds since run start.
    pub start_s: f64,
    /// End of the slice, seconds since run start.
    pub end_s: f64,
}

/// The outcome of simulating a full training run under a [`FaultPlan`]:
/// the fault-perturbed iteration replayed over every batch with periodic
/// checkpoint writes, seeded transient failures, and restart-from-
/// checkpoint rework.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Total wall-clock seconds of the run, everything included.
    pub total_time_s: f64,
    /// Seconds the run would take with no faults injected at all.
    pub fault_free_time_s: f64,
    /// Seconds per iteration under stragglers/link faults (no checkpoints).
    pub iteration_time_s: f64,
    /// Seconds of the iteration that also carries the checkpoint write.
    pub ckpt_iteration_time_s: f64,
    /// Iterations between checkpoints (the resolved interval).
    pub ckpt_interval_iters: u64,
    /// Total seconds spent writing checkpoints.
    pub checkpoint_time_s: f64,
    /// Total seconds lost to failures: discarded progress plus restarts.
    pub rework_time_s: f64,
    /// Failures the run survived.
    pub num_failures: u64,
    /// Checkpoints the run committed.
    pub num_checkpoints: u64,
    /// Correlated rack/pod outages that struck the run.
    pub num_domain_outages: u64,
    /// Spot preemptions that struck the run.
    pub num_preemptions: u64,
    /// Extra seconds spent in elastic shrink/regrow windows (slowdown
    /// relative to full-width iterations, plus re-replication costs).
    pub elastic_overhead_s: f64,
    /// Detail of the fault-perturbed iteration (timeline, device stats).
    pub iteration: SimResult,
    /// Wall-clock slices of the replay (train / checkpoint / lost /
    /// restart / shrunk / regrow), in time order — the run-level trace.
    pub events: Vec<RunEvent>,
}

impl RunResult {
    /// Fraction of wall-clock time spent making forward progress.
    pub fn goodput(&self) -> f64 {
        if self.total_time_s > 0.0 {
            self.fault_free_time_s / self.total_time_s
        } else {
            1.0
        }
    }
}

/// Configuration of a training-iteration simulation.
///
/// See the [crate-level example](crate).
#[derive(Debug, Clone)]
pub struct SimConfig<'a> {
    model: &'a TransformerModel,
    accel: &'a AcceleratorSpec,
    system: &'a SystemSpec,
    parallelism: &'a Parallelism,
    precision: Precision,
    efficiency: EfficiencyModel,
    options: EngineOptions,
    schedule: PipelineSchedule,
    grad_sync: bool,
    weight_update: bool,
    faults: Option<FaultSchedule>,
    ckpt_stage_s: Option<Vec<f64>>,
    observer: Option<Arc<Observer>>,
    record_devices: bool,
}

impl<'a> SimConfig<'a> {
    /// A simulation of `model` on `system`'s accelerators under
    /// `parallelism`, with default precision/efficiency/options.
    pub fn new(
        model: &'a TransformerModel,
        accel: &'a AcceleratorSpec,
        system: &'a SystemSpec,
        parallelism: &'a Parallelism,
    ) -> Self {
        SimConfig {
            model,
            accel,
            system,
            parallelism,
            precision: Precision::default(),
            efficiency: EfficiencyModel::default(),
            options: EngineOptions::default(),
            schedule: PipelineSchedule::default(),
            grad_sync: true,
            weight_update: true,
            faults: None,
            ckpt_stage_s: None,
            observer: None,
            record_devices: true,
        }
    }

    /// Record DES internals, run counters, and per-device busy fractions
    /// into `observer`. Passive: simulated times are bit-identical with or
    /// without it.
    pub fn with_observer(mut self, observer: Arc<Observer>) -> Self {
        self.observer = Some(observer);
        self
    }

    /// Keep counters/spans but skip the per-device utilization samples —
    /// for callers (the search's sim-refine pass) that run many
    /// simulations concurrently, where a nondeterministic last writer
    /// would make the metrics file unstable.
    pub fn without_device_samples(mut self) -> Self {
        self.record_devices = false;
        self
    }

    /// Override the precision.
    pub fn with_precision(mut self, precision: Precision) -> Self {
        self.precision = precision;
        self
    }

    /// Override the efficiency model.
    pub fn with_efficiency(mut self, efficiency: EfficiencyModel) -> Self {
        self.efficiency = efficiency;
        self
    }

    /// Override the engine options.
    pub fn with_options(mut self, options: EngineOptions) -> Self {
        self.options = options;
        self
    }

    /// Choose the pipeline schedule (default GPipe, as in the paper's PP
    /// validation which uses torchgpipe).
    pub fn with_schedule(mut self, schedule: PipelineSchedule) -> Self {
        self.schedule = schedule;
        self
    }

    /// Include gradient synchronization (default true).
    pub fn with_grad_sync(mut self, yes: bool) -> Self {
        self.grad_sync = yes;
        self
    }

    /// Include the weight-update compute (default true).
    pub fn with_weight_update(mut self, yes: bool) -> Self {
        self.weight_update = yes;
        self
    }

    /// Execute under a resolved fault schedule: straggler devices stretch
    /// their compute tasks and degraded links stretch transfers inside
    /// their windows. Without this call the executor never consults fault
    /// state.
    pub fn with_fault_schedule(mut self, schedule: FaultSchedule) -> Self {
        self.faults = Some(schedule);
        self
    }

    /// Append a synchronous checkpoint write to the iteration: one `"ckpt"`
    /// compute task per pipeline stage on its dp-rank-0 device, of the
    /// given duration, depending on the stage's weight update. Durations
    /// normally come from [`SimConfig::checkpoint_stage_seconds`].
    pub fn with_checkpoint_writes(mut self, stage_seconds: Vec<f64>) -> Self {
        self.ckpt_stage_s = Some(stage_seconds);
        self
    }

    /// Seconds each pipeline stage needs to drain its checkpointable state
    /// — weights plus optimizer, from the `amped-memory` footprint model —
    /// to stable storage at `write_bytes_per_s`. One DP rank writes per
    /// stage (the others hold replicas).
    pub fn checkpoint_stage_seconds(
        &self,
        global_batch: usize,
        write_bytes_per_s: f64,
    ) -> Vec<f64> {
        let p = self.parallelism;
        let ub = p.microbatch_size(global_batch);
        let n_ub = p.num_microbatches(global_batch);
        MemoryModel::new(self.model, p)
            .with_precision(self.precision)
            .stage_footprints(ub, n_ub, false)
            .iter()
            .map(|fp| fp.checkpoint_bytes() / write_bytes_per_s)
            .collect()
    }

    /// Simulate one optimizer step at `global_batch` sequences.
    ///
    /// # Errors
    ///
    /// Returns an error when the parallelism mapping does not fit the
    /// system/model or any component fails validation.
    pub fn simulate_iteration(&self, global_batch: usize) -> Result<SimResult> {
        self.precision.validate()?;
        self.efficiency.validate()?;
        self.options.validate()?;
        self.parallelism.validate_against(self.system, self.model)?;
        if global_batch == 0 {
            return Err(Error::invalid("simulation", "batch must be positive"));
        }

        let graph = match self.schedule {
            PipelineSchedule::Interleaved { virtual_stages } if virtual_stages > 1 => {
                self.build_interleaved_graph(global_batch, virtual_stages)?
            }
            _ => self.build_graph(global_batch)?,
        };
        let network = NetworkParams {
            intra_latency_s: self.system.intra().latency_s,
            intra_bw_bps: self.system.intra().bandwidth_bits_per_sec,
            inter_latency_s: self.system.inter().latency_s,
            inter_bw_bps: self.system.inter_bandwidth_per_accel(),
        };
        let mut simulator = Simulator::new(network);
        if let Some(schedule) = &self.faults {
            simulator = simulator.with_fault_schedule(schedule.clone());
        }
        if let Some(obs) = &self.observer {
            simulator = simulator.with_observer(Arc::clone(obs));
        }
        let outcome = simulator.run(&graph);
        if let Some(obs) = &self.observer {
            obs.add("sim.iterations", 1);
            if self.record_devices {
                let pp = self.parallelism.pp();
                obs.set_device_utilization(
                    outcome
                        .device_stats
                        .iter()
                        .enumerate()
                        .map(|(d, s)| DeviceUtil {
                            device: d,
                            stage: d % pp,
                            busy_fraction: s.utilization(outcome.makespan_s),
                        })
                        .collect(),
                );
            }
        }
        let n = outcome.device_stats.len().max(1);
        let mean_utilization = outcome
            .device_stats
            .iter()
            .map(|d| d.utilization(outcome.makespan_s))
            .sum::<f64>()
            / n as f64;

        Ok(SimResult {
            iteration_time: outcome.makespan_s,
            device_stats: outcome.device_stats,
            timeline: outcome.timeline,
            mean_utilization,
            num_microbatches: self.parallelism.num_microbatches(global_batch),
            microbatch_size: self.parallelism.microbatch_size(global_batch),
            intra_bytes: outcome.intra_bytes,
            inter_bytes: outcome.inter_bytes,
        })
    }

    /// Simulate a full training run of `num_batches` optimizer steps under
    /// `plan`.
    ///
    /// Three iteration graphs are priced through the discrete-event engine:
    /// healthy (the fault-free reference), fault-perturbed (stragglers and
    /// link faults applied), and fault-perturbed with per-stage checkpoint
    /// writes appended. The run then replays the perturbed iteration over
    /// every batch: checkpoints commit every `k` iterations (`k` from the
    /// plan's interval, or the Young/Daly optimum for the *measured*
    /// checkpoint cost), and transient failures — exponential arrivals
    /// seeded from the plan — discard progress back to the last checkpoint
    /// and charge the restart cost before replaying.
    ///
    /// With an inactive plan (no seed) nothing is injected and the result
    /// is exactly `num_batches` fault-free iterations.
    ///
    /// # Errors
    ///
    /// Returns an error when the plan or scenario fails validation,
    /// `num_batches` is zero, or the failure rate is so high the run cannot
    /// make progress (the replay gives up after `10_000 + 100·num_batches`
    /// failures).
    pub fn simulate_run(
        &self,
        global_batch: usize,
        num_batches: u64,
        plan: &FaultPlan,
    ) -> Result<RunResult> {
        plan.validate()?;
        if num_batches == 0 {
            return Err(Error::invalid("simulation", "run must have at least one batch"));
        }
        let mut base = self.clone();
        base.faults = None;
        base.ckpt_stage_s = None;
        let healthy = {
            let _span = self.observer.as_ref().map(|o| o.span("sim.iteration.healthy"));
            base.simulate_iteration(global_batch)?
        };
        let fault_free_time_s = healthy.iteration_time * num_batches as f64;
        if !plan.is_active() {
            return Ok(RunResult {
                total_time_s: fault_free_time_s,
                fault_free_time_s,
                iteration_time_s: healthy.iteration_time,
                ckpt_iteration_time_s: healthy.iteration_time,
                ckpt_interval_iters: num_batches,
                checkpoint_time_s: 0.0,
                rework_time_s: 0.0,
                num_failures: 0,
                num_checkpoints: 0,
                num_domain_outages: 0,
                num_preemptions: 0,
                elastic_overhead_s: 0.0,
                iteration: healthy,
                events: vec![RunEvent {
                    span: RunSpan::Train,
                    start_s: 0.0,
                    end_s: fault_free_time_s,
                }],
            });
        }

        let n_devices = self.parallelism.dp() * self.parallelism.pp();
        let schedule = plan.materialize(n_devices);
        let perturbed_cfg = base.with_fault_schedule(schedule);
        let perturbed = {
            let _span = self
                .observer
                .as_ref()
                .map(|o| o.span("sim.iteration.perturbed"));
            perturbed_cfg.simulate_iteration(global_batch)?
        };
        let t_iter = perturbed.iteration_time;

        // Checkpoint cost: the makespan delta of the same iteration with
        // the per-stage "ckpt" write tasks appended — overlap with other
        // devices' work is the simulator's to discover.
        let ckpt_enabled = plan.device_mtbf_s.is_some() || plan.ckpt_interval_s.is_some();
        let (t_ckpt_iter, ckpt_cost) = if ckpt_enabled {
            let _span = self
                .observer
                .as_ref()
                .map(|o| o.span("sim.iteration.checkpointed"));
            let writes =
                self.checkpoint_stage_seconds(global_batch, plan.ckpt_write_bytes_per_s);
            let with_ckpt = perturbed_cfg
                .clone()
                .with_checkpoint_writes(writes)
                .simulate_iteration(global_batch)?;
            let t = with_ckpt.iteration_time;
            (t, (t - t_iter).max(0.0))
        } else {
            (t_iter, 0.0)
        };

        let system_mtbf_s = plan.device_mtbf_s.map(|m| m / n_devices as f64);
        let interval_s = plan.ckpt_interval_s.unwrap_or_else(|| match system_mtbf_s {
            Some(m) => (2.0 * ckpt_cost * m).sqrt(),
            None => f64::INFINITY,
        });
        let interval_iters = if ckpt_enabled && interval_s.is_finite() && t_iter > 0.0 {
            ((interval_s / t_iter).round() as u64).clamp(1, num_batches)
        } else {
            num_batches
        };

        let _replay_span = self.observer.as_ref().map(|o| o.span("sim.replay"));
        let mut rng = SplitMix64::new(plan.seed.unwrap_or(0) ^ 0x4641_494C_5354_524D);
        let mut next_fail = system_mtbf_s.map(|m| rng.exp(m));
        let mut domain_stream = plan.domain_events();
        let mut next_domain = domain_stream.next();
        let dp = self.parallelism.dp();
        let max_failures = 10_000 + 100 * num_batches;
        let mut wall = 0.0f64;
        let mut done = 0u64;
        let mut num_failures = 0u64;
        let mut num_checkpoints = 0u64;
        let mut num_domain_outages = 0u64;
        let mut num_preemptions = 0u64;
        let mut checkpoint_time_s = 0.0f64;
        let mut rework_time_s = 0.0f64;
        let mut elastic_overhead_s = 0.0f64;
        let mut events = Vec::new();
        while done < num_batches {
            // Domain events that struck during downtime (restart, shrink)
            // are dropped: the renewal approximation restarts the clock.
            while next_domain.is_some_and(|e| e.at_s < wall) {
                next_domain = domain_stream.next();
            }
            let seg = interval_iters.min(num_batches - done);
            let seg_len =
                seg as f64 * t_iter + if ckpt_enabled { ckpt_cost } else { 0.0 };
            let fail_at = next_fail.filter(|&t| t < wall + seg_len);
            let dom_ev = next_domain.filter(|e| e.at_s < wall + seg_len);
            // A device failure and a domain event in the same segment:
            // the earlier one fires; an exact tie goes to the device.
            let domain_fires =
                dom_ev.is_some() && fail_at.is_none_or(|f| dom_ev.unwrap().at_s < f);
            if domain_fires {
                let ev = dom_ev.expect("domain_fires implies an event");
                next_domain = domain_stream.next();
                if ev.is_preemption() {
                    num_preemptions += 1;
                } else {
                    num_domain_outages += 1;
                }
                if num_failures + num_domain_outages + num_preemptions > max_failures {
                    return Err(Error::invalid(
                        "simulation",
                        format!(
                            "fault replay exceeded {max_failures} events — \
                             outage rates too high for the run to make progress"
                        ),
                    ));
                }
                let tree = plan.domain_tree.as_ref().expect("domain events imply a tree");
                let (n0, n1) = ev.node_span(tree);
                let k = self.broken_replicas(n0, n1);
                if k == 0 {
                    // The outage hit nodes the training grid does not
                    // occupy: nothing to do.
                    continue;
                }
                if plan.regrow_delay_s.is_some() && k < dp {
                    // Survivable: finish the iteration in flight, then run
                    // shrunk at dp-k replicas until capacity regrows, then
                    // pay one checkpoint-sized re-replication to rejoin.
                    let completed = (((ev.at_s - wall) / t_iter).floor() as u64).min(seg);
                    if completed > 0 {
                        events.push(RunEvent {
                            span: RunSpan::Train,
                            start_s: wall,
                            end_s: wall + completed as f64 * t_iter,
                        });
                        wall += completed as f64 * t_iter;
                        done += completed;
                    }
                    let remaining = num_batches - done;
                    if remaining == 0 {
                        continue;
                    }
                    let t_shrunk = t_iter * dp as f64 / (dp - k) as f64;
                    let regrow = plan.regrow_delay_s.unwrap_or(0.0);
                    let shrunk_iters =
                        ((regrow / t_shrunk).ceil() as u64).max(1).min(remaining);
                    events.push(RunEvent {
                        span: RunSpan::Shrunk,
                        start_s: wall,
                        end_s: wall + shrunk_iters as f64 * t_shrunk,
                    });
                    elastic_overhead_s += shrunk_iters as f64 * (t_shrunk - t_iter);
                    wall += shrunk_iters as f64 * t_shrunk;
                    done += shrunk_iters;
                    if ckpt_enabled && ckpt_cost > 0.0 && done < num_batches {
                        events.push(RunEvent {
                            span: RunSpan::Regrow,
                            start_s: wall,
                            end_s: wall + ckpt_cost,
                        });
                        elastic_overhead_s += ckpt_cost;
                        wall += ckpt_cost;
                    }
                } else {
                    // Blast radius covers every replica (or elastic mode is
                    // off): the outage is fatal, back to the checkpoint.
                    rework_time_s += (ev.at_s - wall) + plan.restart_s;
                    events.push(RunEvent {
                        span: RunSpan::Lost,
                        start_s: wall,
                        end_s: ev.at_s,
                    });
                    events.push(RunEvent {
                        span: RunSpan::Restart,
                        start_s: ev.at_s,
                        end_s: ev.at_s + plan.restart_s,
                    });
                    wall = ev.at_s + plan.restart_s;
                }
                continue;
            }
            match fail_at {
                Some(fail_at) => {
                    // The segment dies: progress since the last checkpoint
                    // is discarded and the run restarts from it.
                    num_failures += 1;
                    if num_failures + num_domain_outages + num_preemptions > max_failures {
                        return Err(Error::invalid(
                            "simulation",
                            format!(
                                "fault replay exceeded {max_failures} failures — \
                                 mtbf too small for the run to make progress"
                            ),
                        ));
                    }
                    rework_time_s += (fail_at - wall) + plan.restart_s;
                    events.push(RunEvent {
                        span: RunSpan::Lost,
                        start_s: wall,
                        end_s: fail_at,
                    });
                    events.push(RunEvent {
                        span: RunSpan::Restart,
                        start_s: fail_at,
                        end_s: fail_at + plan.restart_s,
                    });
                    wall = fail_at + plan.restart_s;
                    next_fail =
                        Some(wall + rng.exp(system_mtbf_s.expect("failures imply an mtbf")));
                }
                None => {
                    events.push(RunEvent {
                        span: RunSpan::Train,
                        start_s: wall,
                        end_s: wall + seg as f64 * t_iter,
                    });
                    if ckpt_enabled {
                        events.push(RunEvent {
                            span: RunSpan::Checkpoint,
                            start_s: wall + seg as f64 * t_iter,
                            end_s: wall + seg_len,
                        });
                    }
                    wall += seg_len;
                    done += seg;
                    if ckpt_enabled {
                        num_checkpoints += 1;
                        checkpoint_time_s += ckpt_cost;
                    }
                }
            }
        }

        if let Some(obs) = &self.observer {
            obs.add("sim.run.batches", done);
            obs.add("sim.run.failures", num_failures);
            obs.add("sim.run.checkpoints", num_checkpoints);
            obs.add("sim.run.domain_outages", num_domain_outages);
            obs.add("sim.run.preemptions", num_preemptions);
            if wall > 0.0 {
                obs.gauge_set("sim.run.goodput", fault_free_time_s / wall);
            }
            obs.gauge_set("sim.run.rework_s", rework_time_s);
            obs.gauge_set("sim.run.checkpoint_s", checkpoint_time_s);
            obs.gauge_set("sim.run.elastic_s", elastic_overhead_s);
        }

        Ok(RunResult {
            total_time_s: wall,
            fault_free_time_s,
            iteration_time_s: t_iter,
            ckpt_iteration_time_s: t_ckpt_iter,
            ckpt_interval_iters: interval_iters,
            checkpoint_time_s,
            rework_time_s,
            num_failures,
            num_checkpoints,
            num_domain_outages,
            num_preemptions,
            elastic_overhead_s,
            iteration: perturbed,
            events,
        })
    }

    /// How many DP replicas lose at least one device when nodes
    /// `[n0, n1)` go down. The simulator's logical device `(r, s)` spans
    /// tensor-parallel accelerators `[d·tp, (d+1)·tp)` laid out
    /// replica-major, so a replica breaks when any of its stages maps onto
    /// the dead node range.
    fn broken_replicas(&self, n0: usize, n1: usize) -> usize {
        let tp = self.parallelism.tp().max(1);
        let apn = self.system.accels_per_node().max(1);
        (0..self.parallelism.dp())
            .filter(|&r| {
                (0..self.parallelism.pp()).any(|s| {
                    let d = self.device(r, s);
                    let first = d * tp / apn;
                    let last = (d * tp + tp - 1) / apn;
                    first < n1 && last >= n0
                })
            })
            .count()
    }

    /// Device id of (data-parallel rank, pipeline stage). The simulator
    /// collapses tensor-parallel groups into one logical device per stage.
    fn device(&self, dp_rank: usize, stage: usize) -> usize {
        dp_rank * self.parallelism.pp() + stage
    }

    /// Whether two pipeline stages of one replica share a node.
    fn stage_link(&self, stage_a: usize, stage_b: usize) -> LinkClass {
        let pp_i = self.parallelism.pp_intra();
        if stage_a / pp_i == stage_b / pp_i {
            LinkClass::Intra
        } else {
            LinkClass::Inter
        }
    }

    /// Whether two data-parallel ranks (same stage) share a node.
    fn dp_link(&self, rank_a: usize, rank_b: usize) -> LinkClass {
        let dp_i = self.parallelism.dp_intra();
        if rank_a / dp_i == rank_b / dp_i {
            LinkClass::Intra
        } else {
            LinkClass::Inter
        }
    }

    /// Layer kinds assigned to each pipeline stage: a contiguous split as
    /// balanced as possible (stage sizes differ by at most one layer), head
    /// on the last stage.
    fn stage_layers(&self) -> Vec<Vec<LayerKind>> {
        let pp = self.parallelism.pp();
        let stack = self.model.layer_stack();
        let base = stack.len() / pp;
        let extra = stack.len() % pp;
        let mut stages = Vec::with_capacity(pp);
        let mut cursor = 0;
        for s in 0..pp {
            let take = base + usize::from(s < extra);
            stages.push(stack[cursor..cursor + take].to_vec());
            cursor += take;
        }
        stages
    }

    /// Forward/backward compute seconds of one microbatch on one stage,
    /// including the analytically folded TP all-reduce time.
    fn stage_durations(&self, layers: &[LayerKind], ub: f64) -> (f64, f64, f64) {
        let p = self.parallelism;
        let eff = self.efficiency.eval(ub);
        let c_mac = self.accel.c_mac(eff);
        let c_nonlin = self.accel.c_nonlin();
        let mac_scale = self
            .accel
            .mac_precision_scale(self.precision.mac_operand_bits());
        let param_scale = self.accel.mac_precision_scale(self.precision.param_bits);
        let nonlin_scale = self
            .accel
            .nonlin_precision_scale(self.precision.nonlin_bits);
        let tp = p.tp() as f64;
        let opts = self.options;
        let bwd_c =
            opts.backward_compute_factor + if opts.activation_recompute { 1.0 } else { 0.0 };

        let mut fwd = 0.0;
        let mut bwd = 0.0;
        let mut stage_weights = 0.0;
        for &kind in layers {
            let c = LayerCounts::for_layer(self.model, kind, ub);
            let f = (c.macs_fwd * c_mac * mac_scale + c.nonlin_fwd * c_nonlin * nonlin_scale) / tp;
            fwd += f;
            bwd += (bwd_c * c.macs_fwd * c_mac * mac_scale
                + opts.backward_nonlin_factor * c.nonlin_fwd * c_nonlin * nonlin_scale)
                / tp;
            stage_weights += c.weights;

            // Tensor parallelism: two activation all-reduces per layer,
            // folded analytically (sub-device behaviour is out of scope for
            // the DP×PP device grid).
            let act_bits = self.precision.act_bits as f64;
            if p.tp_intra() > 1 {
                let cost = self
                    .system
                    .intra()
                    .topology
                    .cost(Collective::AllReduce, p.tp_intra());
                let t = cost.time(
                    c.act_elems_tp * act_bits,
                    self.system.intra().latency_s,
                    self.system.intra().bandwidth_bits_per_sec,
                );
                fwd += t;
                bwd += opts.backward_comm_factor * t;
            }
            if p.tp_inter() > 1 {
                let cost = self
                    .system
                    .inter()
                    .topology
                    .cost(Collective::AllReduce, p.tp_inter());
                let t = cost.time(
                    c.act_elems_tp * act_bits,
                    self.system.inter().latency_s,
                    self.system.inter_bandwidth_per_accel(),
                );
                fwd += t;
                bwd += opts.backward_comm_factor * t;
            }
            // Mixture-of-experts all-to-all, folded analytically like TP
            // (Eq. 9, with the per-rank volume sharded by the TP degree).
            if c.act_elems_moe > 0.0 {
                let nodes = self.system.num_nodes();
                let cost = self
                    .system
                    .inter()
                    .topology
                    .cost(Collective::AllToAll, nodes);
                let volume_bits = c.act_elems_moe * act_bits / tp;
                let nf = nodes as f64;
                let t = if nodes > 1 {
                    2.0 * self.system.inter().latency_s * cost.steps as f64
                        + 2.0 * volume_bits
                            * cost.factor
                            * (1.0 / (nf * self.system.intra().bandwidth_bits_per_sec)
                                + (nf - 1.0) / (nf * self.system.inter_bandwidth_per_accel()))
                } else {
                    2.0 * volume_bits / self.system.intra().bandwidth_bits_per_sec
                };
                fwd += t;
                bwd += opts.backward_comm_factor * t;
            }
        }
        let wu = opts.weight_update_factor * stage_weights / tp * c_mac * param_scale;
        (fwd, bwd, wu)
    }

    fn build_graph(&self, global_batch: usize) -> Result<TaskGraph> {
        let p = self.parallelism;
        let dp = p.dp();
        let pp = p.pp();
        let n_ub = p.num_microbatches(global_batch);
        let ub = p.microbatch_size(global_batch);
        let mut graph = TaskGraph::new(dp * pp);

        let stages = self.stage_layers();
        let durations: Vec<(f64, f64, f64)> =
            stages.iter().map(|ls| self.stage_durations(ls, ub)).collect();
        let act_bytes = ub
            * self.model.seq_len() as f64
            * self.model.hidden_size() as f64
            * self.precision.act_bits as f64
            / 8.0
            / p.tp() as f64;

        // Per-device priority counters implementing the chosen schedule.
        let priorities = self.schedule_priorities(pp, n_ub);

        let mut last_bwd: Vec<Vec<TaskId>> = vec![Vec::new(); dp * pp];
        for dp_rank in 0..dp {
            // fwd_done[m][s], bwd_done[m][s]
            let mut fwd_done = vec![vec![0usize; pp]; n_ub];
            let mut fwd_xfer = vec![vec![None::<TaskId>; pp]; n_ub];
            for m in 0..n_ub {
                for s in 0..pp {
                    let mut deps: Vec<TaskId> = Vec::new();
                    if s > 0 {
                        deps.push(fwd_xfer[m][s - 1].expect("transfer built in order"));
                    }
                    let id = graph.add_with_priority(
                        TaskKind::Compute {
                            device: self.device(dp_rank, s),
                            duration_s: durations[s].0,
                        },
                        "fwd",
                        &deps,
                        priorities.fwd[m][s],
                    );
                    fwd_done[m][s] = id;
                    if s + 1 < pp {
                        let x = graph.add(
                            TaskKind::Transfer {
                                src: self.device(dp_rank, s),
                                dst: self.device(dp_rank, s + 1),
                                bytes: act_bytes,
                                link: self.stage_link(s, s + 1),
                            },
                            "act>",
                            &[id],
                        );
                        fwd_xfer[m][s] = Some(x);
                    }
                }
            }
            let mut bwd_xfer = vec![vec![None::<TaskId>; pp]; n_ub];
            for m in 0..n_ub {
                for s in (0..pp).rev() {
                    let mut deps = vec![fwd_done[m][s]];
                    if s + 1 < pp {
                        deps.push(bwd_xfer[m][s + 1].expect("built in order"));
                    }
                    let id = graph.add_with_priority(
                        TaskKind::Compute {
                            device: self.device(dp_rank, s),
                            duration_s: durations[s].1,
                        },
                        "bwd",
                        &deps,
                        priorities.bwd[m][s],
                    );
                    last_bwd[self.device(dp_rank, s)].push(id);
                    if s > 0 {
                        let x = graph.add(
                            TaskKind::Transfer {
                                src: self.device(dp_rank, s),
                                dst: self.device(dp_rank, s - 1),
                                bytes: act_bytes,
                                link: self.stage_link(s, s - 1),
                            },
                            "err<",
                            &[id],
                        );
                        bwd_xfer[m][s] = Some(x);
                    }
                }
            }
        }

        // Gradient all-reduce per stage over the DP group, lowered to exact
        // ring steps, then the weight update.
        let grad_prio_base = (2 * n_ub * pp + 16) as u64 * 1000;
        for s in 0..pp {
            let stage_weights: f64 = stages[s]
                .iter()
                .map(|&k| LayerCounts::for_layer(self.model, k, 1.0).weights)
                .sum();
            let grad_bytes =
                stage_weights / p.tp() as f64 * self.precision.grad_bits as f64 / 8.0;

            let mut final_step: Vec<TaskId> = Vec::new();
            if self.grad_sync && dp > 1 {
                final_step = self.add_grad_sync(&mut graph, s, grad_bytes, &last_bwd, grad_prio_base);
            }
            let mut ckpt_deps: Vec<TaskId> = last_bwd[self.device(0, s)].clone();
            ckpt_deps.extend(&final_step);
            if self.weight_update {
                for dp_rank in 0..dp {
                    let mut deps: Vec<TaskId> = last_bwd[self.device(dp_rank, s)].clone();
                    deps.extend(&final_step);
                    let id = graph.add_with_priority(
                        TaskKind::Compute {
                            device: self.device(dp_rank, s),
                            duration_s: durations[s].2,
                        },
                        "wupd",
                        &deps,
                        grad_prio_base + 10_000,
                    );
                    if dp_rank == 0 {
                        ckpt_deps = vec![id];
                    }
                }
            }
            self.add_checkpoint_write(&mut graph, s, &ckpt_deps, grad_prio_base);
        }

        Ok(graph)
    }

    /// Append the stage's checkpoint-write task (when checkpoint writes are
    /// configured): a `"ckpt"` compute task on the stage's dp-rank-0 device
    /// that blocks the device until the snapshot has drained to storage —
    /// the synchronous-checkpoint model the Young/Daly analysis assumes.
    fn add_checkpoint_write(
        &self,
        graph: &mut TaskGraph,
        stage: usize,
        deps: &[TaskId],
        grad_prio_base: u64,
    ) {
        if let Some(ckpt) = &self.ckpt_stage_s {
            graph.add_with_priority(
                TaskKind::Compute {
                    device: self.device(0, stage),
                    duration_s: ckpt.get(stage).copied().unwrap_or(0.0),
                },
                "ckpt",
                deps,
                grad_prio_base + 20_000,
            );
        }
    }

    /// Build the interleaved-schedule task graph: the layer stack is cut
    /// into `pp × v` contiguous virtual chunks; virtual chunk `c` runs on
    /// device `c % pp`, so each microbatch loops through the devices `v`
    /// times. Gradient sync and weight update reuse the stage machinery at
    /// chunk granularity.
    fn build_interleaved_graph(&self, global_batch: usize, v: usize) -> Result<TaskGraph> {
        let p = self.parallelism;
        let dp = p.dp();
        let pp = p.pp();
        let n_ub = p.num_microbatches(global_batch);
        let ub = p.microbatch_size(global_batch);
        let mut graph = TaskGraph::new(dp * pp);

        // Cut the stack into pp*v balanced contiguous chunks.
        let stack = self.model.layer_stack();
        let chunks_total = pp * v;
        let base = stack.len() / chunks_total;
        let extra = stack.len() % chunks_total;
        let mut chunks: Vec<Vec<LayerKind>> = Vec::with_capacity(chunks_total);
        let mut cursor = 0;
        for c in 0..chunks_total {
            let take = base + usize::from(c < extra);
            chunks.push(stack[cursor..cursor + take].to_vec());
            cursor += take;
        }
        let durations: Vec<(f64, f64, f64)> =
            chunks.iter().map(|ls| self.stage_durations(ls, ub)).collect();
        let act_bytes = ub
            * self.model.seq_len() as f64
            * self.model.hidden_size() as f64
            * self.precision.act_bits as f64
            / 8.0
            / p.tp() as f64;

        let device_of_chunk = |c: usize| c % pp;
        let mut last_bwd: Vec<Vec<TaskId>> = vec![Vec::new(); dp * pp];
        for dp_rank in 0..dp {
            // Forward through all virtual chunks, then backward.
            let mut fwd_done = vec![vec![0usize; chunks_total]; n_ub];
            let mut prev_xfer: Vec<Vec<Option<TaskId>>> =
                vec![vec![None; chunks_total]; n_ub];
            for m in 0..n_ub {
                for c in 0..chunks_total {
                    let mut deps: Vec<TaskId> = Vec::new();
                    if c > 0 {
                        deps.push(prev_xfer[m][c - 1].expect("built in order"));
                    }
                    let dev = self.device(dp_rank, device_of_chunk(c));
                    let id = graph.add_with_priority(
                        TaskKind::Compute {
                            device: dev,
                            duration_s: durations[c].0,
                        },
                        "fwd",
                        &deps,
                        (m * chunks_total + c) as u64,
                    );
                    fwd_done[m][c] = id;
                    if c + 1 < chunks_total {
                        let next_dev = self.device(dp_rank, device_of_chunk(c + 1));
                        let x = graph.add(
                            TaskKind::Transfer {
                                src: dev,
                                dst: next_dev,
                                bytes: act_bytes,
                                link: self
                                    .stage_link(device_of_chunk(c), device_of_chunk(c + 1)),
                            },
                            "act>",
                            &[id],
                        );
                        prev_xfer[m][c] = Some(x);
                    }
                }
            }
            let bwd_base = (n_ub * chunks_total) as u64;
            let mut bwd_xfer: Vec<Vec<Option<TaskId>>> =
                vec![vec![None; chunks_total]; n_ub];
            for m in 0..n_ub {
                for c in (0..chunks_total).rev() {
                    let mut deps = vec![fwd_done[m][c]];
                    if c + 1 < chunks_total {
                        deps.push(bwd_xfer[m][c + 1].expect("built in order"));
                    }
                    let dev = self.device(dp_rank, device_of_chunk(c));
                    let id = graph.add_with_priority(
                        TaskKind::Compute {
                            device: dev,
                            duration_s: durations[c].1,
                        },
                        "bwd",
                        &deps,
                        bwd_base + (m * chunks_total + (chunks_total - 1 - c)) as u64,
                    );
                    last_bwd[dev].push(id);
                    if c > 0 {
                        let prev_dev = self.device(dp_rank, device_of_chunk(c - 1));
                        let x = graph.add(
                            TaskKind::Transfer {
                                src: dev,
                                dst: prev_dev,
                                bytes: act_bytes,
                                link: self
                                    .stage_link(device_of_chunk(c), device_of_chunk(c - 1)),
                            },
                            "err<",
                            &[id],
                        );
                        bwd_xfer[m][c] = Some(x);
                    }
                }
            }
        }

        // Gradient sync + weight update per device over its chunks.
        let grad_prio_base = (2 * n_ub * chunks_total + 16) as u64 * 1000;
        for s in 0..pp {
            let device_weights: f64 = chunks
                .iter()
                .enumerate()
                .filter(|(c, _)| device_of_chunk(*c) == s)
                .flat_map(|(_, ls)| ls.iter())
                .map(|&k| LayerCounts::for_layer(self.model, k, 1.0).weights)
                .sum();
            let grad_bytes =
                device_weights / p.tp() as f64 * self.precision.grad_bits as f64 / 8.0;
            let mut final_step: Vec<TaskId> = Vec::new();
            if self.grad_sync && dp > 1 {
                final_step = self.add_grad_sync(&mut graph, s, grad_bytes, &last_bwd, grad_prio_base);
            }
            let mut ckpt_deps: Vec<TaskId> = last_bwd[self.device(0, s)].clone();
            ckpt_deps.extend(&final_step);
            if self.weight_update {
                let wu: f64 = chunks
                    .iter()
                    .enumerate()
                    .filter(|(c, _)| device_of_chunk(*c) == s)
                    .map(|(c, _)| durations[c].2)
                    .sum();
                for dp_rank in 0..dp {
                    let mut deps: Vec<TaskId> = last_bwd[self.device(dp_rank, s)].clone();
                    deps.extend(&final_step);
                    let id = graph.add_with_priority(
                        TaskKind::Compute {
                            device: self.device(dp_rank, s),
                            duration_s: wu,
                        },
                        "wupd",
                        &deps,
                        grad_prio_base + 10_000,
                    );
                    if dp_rank == 0 {
                        ckpt_deps = vec![id];
                    }
                }
            }
            self.add_checkpoint_write(&mut graph, s, &ckpt_deps, grad_prio_base);
        }

        Ok(graph)
    }

    /// Lower one ring collective among the DP ranks of `stage` into
    /// transfer tasks with exact ring dependencies; returns the final-step
    /// task ids. `rank_of` maps group-local positions to DP ranks.
    #[allow(clippy::too_many_arguments)]
    fn add_ring_phase(
        &self,
        graph: &mut TaskGraph,
        stage: usize,
        schedule: &amped_topo::Schedule,
        rank_of: &dyn Fn(usize) -> usize,
        entry_deps: &dyn Fn(usize) -> Vec<TaskId>,
        prio: u64,
        label: &'static str,
    ) -> Vec<TaskId> {
        let n = schedule.num_ranks();
        let steps = schedule.num_steps();
        let mut prev: Vec<Option<TaskId>> = vec![None; n];
        let mut finals = Vec::new();
        for (step, batch) in schedule.steps() {
            let mut cur: Vec<Option<TaskId>> = vec![None; n];
            for tr in batch {
                let mut deps: Vec<TaskId> = Vec::new();
                if step == 0 {
                    deps.extend(entry_deps(tr.src));
                }
                if let Some(Some(d)) = prev.get(tr.src).copied() {
                    deps.push(d);
                }
                let (src_rank, dst_rank) = (rank_of(tr.src), rank_of(tr.dst));
                let id = graph.add_with_priority(
                    TaskKind::Transfer {
                        src: self.device(src_rank, stage),
                        dst: self.device(dst_rank, stage),
                        bytes: tr.bytes as f64,
                        link: self.dp_link(src_rank, dst_rank),
                    },
                    label,
                    &deps,
                    prio + step as u64,
                );
                cur[tr.dst] = Some(id);
                if step + 1 == steps {
                    finals.push(id);
                }
            }
            prev = cur;
        }
        finals
    }

    /// Gradient synchronization for one stage: a flat ring when DP lives on
    /// one network level, or the hierarchical reduce-scatter → inter
    /// all-reduce → all-gather (Eq. 10) when it spans both.
    fn add_grad_sync(
        &self,
        graph: &mut TaskGraph,
        stage: usize,
        grad_bytes: f64,
        last_bwd: &[Vec<TaskId>],
        prio: u64,
    ) -> Vec<TaskId> {
        let p = self.parallelism;
        let (dp_i, dp_x) = (p.dp_intra(), p.dp_inter());
        let dp = p.dp();
        if dp_i == 1 || dp_x == 1 {
            let schedule = amped_topo::Schedule::ring_all_reduce(dp, grad_bytes as u64);
            return self.add_ring_phase(
                graph,
                stage,
                &schedule,
                &|g| g,
                &|g| last_bwd[self.device(g, stage)].clone(),
                prio,
                "gsync",
            );
        }
        // Phase 1: reduce-scatter inside each node group (ranks r0..r0+dp_i).
        let rs = amped_topo::Schedule::ring_reduce_scatter(dp_i, grad_bytes as u64);
        let mut phase1_finals: Vec<Vec<TaskId>> = Vec::new();
        for node in 0..dp_x {
            let base = node * dp_i;
            let finals = self.add_ring_phase(
                graph,
                stage,
                &rs,
                &move |g| base + g,
                &|g| last_bwd[self.device(base + g, stage)].clone(),
                prio,
                "gsync-rs",
            );
            phase1_finals.push(finals);
        }
        // Phase 2: all-reduce the 1/dp_i shards across nodes; the group of
        // inter peers at intra position q is {q, dp_i + q, ...}.
        let inter = amped_topo::Schedule::ring_all_reduce(dp_x, (grad_bytes / dp_i as f64) as u64);
        let mut phase2_finals: Vec<TaskId> = Vec::new();
        for q in 0..dp_i {
            let deps_src: Vec<Vec<TaskId>> = (0..dp_x).map(|n| phase1_finals[n].clone()).collect();
            let finals = self.add_ring_phase(
                graph,
                stage,
                &inter,
                &move |g| g * dp_i + q,
                &|g| deps_src[g].clone(),
                prio + 1000,
                "gsync-x",
            );
            phase2_finals.extend(finals);
        }
        // Phase 3: all-gather inside each node.
        let ag = amped_topo::Schedule::ring_all_gather(dp_i, grad_bytes as u64);
        let mut finals = Vec::new();
        for node in 0..dp_x {
            let base = node * dp_i;
            let entry = phase2_finals.clone();
            finals.extend(self.add_ring_phase(
                graph,
                stage,
                &ag,
                &move |g| base + g,
                &move |_| entry.clone(),
                prio + 2000,
                "gsync-ag",
            ));
        }
        finals
    }

    /// Per-(microbatch, stage) priorities realizing the schedule.
    fn schedule_priorities(&self, pp: usize, n_ub: usize) -> SchedulePriorities {
        let mut fwd = vec![vec![0u64; pp]; n_ub];
        let mut bwd = vec![vec![0u64; pp]; n_ub];
        match self.schedule {
            PipelineSchedule::GPipe | PipelineSchedule::Interleaved { .. } => {
                // All forwards first (microbatch-major), then all backwards.
                for (m, (f_row, b_row)) in fwd.iter_mut().zip(bwd.iter_mut()).enumerate() {
                    for s in 0..pp {
                        f_row[s] = m as u64;
                        b_row[s] = (n_ub + m) as u64;
                    }
                }
            }
            PipelineSchedule::OneFOneB => {
                // Per stage: warmup of (pp - s) forwards, then alternate.
                for s in 0..pp {
                    let warmup = (pp - s).min(n_ub);
                    let mut slot = 0u64;
                    for row in fwd.iter_mut().take(warmup) {
                        row[s] = slot;
                        slot += 1;
                    }
                    let mut next_fwd = warmup;
                    for row in bwd.iter_mut().take(n_ub) {
                        row[s] = slot;
                        slot += 1;
                        if next_fwd < n_ub {
                            fwd[next_fwd][s] = slot;
                            slot += 1;
                            next_fwd += 1;
                        }
                    }
                }
            }
        }
        SchedulePriorities { fwd, bwd }
    }
}

struct SchedulePriorities {
    fwd: Vec<Vec<u64>>,
    bwd: Vec<Vec<u64>>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use amped_core::{Link, MicrobatchPolicy};

    fn mingpt() -> TransformerModel {
        TransformerModel::builder("minGPT")
            .layers(12)
            .hidden_size(768)
            .heads(12)
            .seq_len(512)
            .vocab_size(50257)
            .include_head(false)
            .build()
            .unwrap()
    }

    fn v100() -> AcceleratorSpec {
        AcceleratorSpec::builder("V100")
            .frequency_hz(1.53e9)
            .cores(80)
            .mac_units(8, 64, 16)
            .nonlin_units(80, 64, 32)
            .memory(32e9, 0.9e12)
            .build()
            .unwrap()
    }

    fn hgx(n: usize) -> SystemSpec {
        SystemSpec::new(1, n, Link::new(5e-6, 2.4e12), Link::new(1e-5, 1e11), 1).unwrap()
    }

    #[test]
    fn single_device_iteration_runs() {
        let m = mingpt();
        let a = v100();
        let sys = hgx(1);
        let p = Parallelism::single();
        let r = SimConfig::new(&m, &a, &sys, &p)
            .simulate_iteration(8)
            .unwrap();
        assert!(r.iteration_time > 0.0);
        assert_eq!(r.device_stats.len(), 1);
        assert!(r.mean_utilization > 0.99, "u = {}", r.mean_utilization);
    }

    #[test]
    fn dp_scaling_shows_near_linear_speedup() {
        let m = mingpt();
        let a = v100();
        let p1 = Parallelism::single();
        let t1 = SimConfig::new(&m, &a, &hgx(1), &p1)
            .simulate_iteration(64)
            .unwrap()
            .iteration_time;
        let p8 = Parallelism::data_parallel_intra(8).unwrap();
        let t8 = SimConfig::new(&m, &a, &hgx(8), &p8)
            .simulate_iteration(64)
            .unwrap()
            .iteration_time;
        let speedup = t1 / t8;
        assert!(speedup > 5.0 && speedup <= 8.2, "speedup = {speedup}");
    }

    #[test]
    fn gpipe_has_bubbles_that_more_microbatches_shrink(){
        let m = mingpt();
        let a = v100();
        let sys = hgx(4);
        let few = Parallelism::builder()
            .pp(4, 1)
            .microbatches(MicrobatchPolicy::Explicit(4))
            .build()
            .unwrap();
        let many = Parallelism::builder()
            .pp(4, 1)
            .microbatches(MicrobatchPolicy::Explicit(32))
            .build()
            .unwrap();
        // Hold the microbatch *size* constant (batch scales with count) so
        // only the bubble fraction changes.
        let r_few = SimConfig::new(&m, &a, &sys, &few).simulate_iteration(16).unwrap();
        let r_many = SimConfig::new(&m, &a, &sys, &many).simulate_iteration(128).unwrap();
        assert!(r_few.mean_utilization < r_many.mean_utilization);
        // Ideal-step counts: (M + P - 1)/M ratio should roughly hold for
        // compute-bound stages.
        let per_ub_few = r_few.iteration_time / 4.0;
        let per_ub_many = r_many.iteration_time / 32.0;
        assert!(per_ub_many < per_ub_few);
    }

    #[test]
    fn one_f_one_b_not_slower_than_gpipe() {
        let m = mingpt();
        let a = v100();
        let sys = hgx(4);
        let p = Parallelism::builder()
            .pp(4, 1)
            .microbatches(MicrobatchPolicy::Explicit(16))
            .build()
            .unwrap();
        let g = SimConfig::new(&m, &a, &sys, &p)
            .with_schedule(PipelineSchedule::GPipe)
            .simulate_iteration(64)
            .unwrap();
        let o = SimConfig::new(&m, &a, &sys, &p)
            .with_schedule(PipelineSchedule::OneFOneB)
            .simulate_iteration(64)
            .unwrap();
        // Same total work; 1F1B must not be slower (same bubble count).
        assert!(o.iteration_time <= g.iteration_time * 1.001);
    }

    #[test]
    fn grad_sync_adds_time_under_dp() {
        let m = mingpt();
        let a = v100();
        let sys = hgx(8);
        let p = Parallelism::data_parallel_intra(8).unwrap();
        let with = SimConfig::new(&m, &a, &sys, &p).simulate_iteration(64).unwrap();
        let without = SimConfig::new(&m, &a, &sys, &p)
            .with_grad_sync(false)
            .simulate_iteration(64)
            .unwrap();
        assert!(with.iteration_time > without.iteration_time);
    }

    #[test]
    fn pipeline_timeline_shows_stagger() {
        let m = mingpt();
        let a = v100();
        let sys = hgx(4);
        let p = Parallelism::builder().pp(4, 1).build().unwrap();
        let r = SimConfig::new(&m, &a, &sys, &p).simulate_iteration(16).unwrap();
        // First compute on stage 3 starts later than on stage 0.
        let first_start = |dev: usize| {
            r.timeline
                .entries()
                .iter()
                .filter(|e| e.device == dev && e.activity == crate::timeline::Activity::Compute)
                .map(|e| e.start_s)
                .fold(f64::INFINITY, f64::min)
        };
        assert!(first_start(3) > first_start(0));
    }

    #[test]
    fn rejects_invalid_mapping() {
        let m = mingpt();
        let a = v100();
        let sys = hgx(8);
        let p = Parallelism::builder().dp(4, 1).build().unwrap(); // 4 != 8
        assert!(SimConfig::new(&m, &a, &sys, &p).simulate_iteration(8).is_err());
        let good = Parallelism::data_parallel_intra(8).unwrap();
        assert!(SimConfig::new(&m, &a, &sys, &good).simulate_iteration(0).is_err());
    }

    fn mingpt16() -> TransformerModel {
        TransformerModel::builder("minGPT-16L")
            .layers(16)
            .hidden_size(1024)
            .heads(8)
            .seq_len(512)
            .vocab_size(50257)
            .include_head(false)
            .build()
            .unwrap()
    }

    #[test]
    fn interleaving_shrinks_the_simulated_bubble() {
        // 16 layers over 4 devices: naive GPipe vs 2- and 4-way interleaved.
        let m = mingpt16();
        let a = v100();
        let sys = hgx(4);
        let p = Parallelism::builder()
            .pp(4, 1)
            .microbatches(MicrobatchPolicy::Explicit(8))
            .build()
            .unwrap();
        let run = |schedule| {
            SimConfig::new(&m, &a, &sys, &p)
                .with_efficiency(amped_core::EfficiencyModel::Constant(0.5))
                .with_schedule(schedule)
                .simulate_iteration(16)
                .unwrap()
        };
        let gpipe = run(PipelineSchedule::GPipe);
        let v2 = run(PipelineSchedule::Interleaved { virtual_stages: 2 });
        let v4 = run(PipelineSchedule::Interleaved { virtual_stages: 4 });
        assert!(
            v2.iteration_time < gpipe.iteration_time,
            "2-way interleaving must beat GPipe: {} vs {}",
            v2.iteration_time,
            gpipe.iteration_time
        );
        assert!(v4.iteration_time < v2.iteration_time * 1.001);
        assert!(v2.mean_utilization > gpipe.mean_utilization);

        // The analytical knob R = 1/v tracks the simulated improvement:
        // bubble_sim(v) / bubble_sim(1) ≈ 1/v within a loose band.
        let compute_floor = gpipe
            .device_stats
            .iter()
            .map(|d| d.compute_busy_s)
            .fold(0.0f64, f64::max);
        let bubble = |r: &crate::training::SimResult| r.iteration_time - compute_floor;
        // The idle gap shrinks, though less than the ideal 1/v because each
        // microbatch now crosses 2x as many chunk boundaries.
        let ratio = bubble(&v2) / bubble(&gpipe).max(1e-12);
        assert!(ratio < 0.9, "interleaved bubble ratio = {ratio:.2}");
    }

    #[test]
    fn interleaved_one_equals_gpipe() {
        let m = mingpt16();
        let a = v100();
        let sys = hgx(4);
        let p = Parallelism::builder().pp(4, 1).build().unwrap();
        let g = SimConfig::new(&m, &a, &sys, &p)
            .simulate_iteration(16)
            .unwrap()
            .iteration_time;
        let i1 = SimConfig::new(&m, &a, &sys, &p)
            .with_schedule(PipelineSchedule::Interleaved { virtual_stages: 1 })
            .simulate_iteration(16)
            .unwrap()
            .iteration_time;
        assert!((g - i1).abs() / g < 1e-9);
    }

    #[test]
    fn interleaved_with_dp_still_syncs_gradients() {
        let m = mingpt16();
        let a = v100();
        let sys = hgx(8);
        let p = Parallelism::builder()
            .pp(4, 1)
            .dp(2, 1)
            .microbatches(MicrobatchPolicy::Explicit(8))
            .build()
            .unwrap();
        let with = SimConfig::new(&m, &a, &sys, &p)
            .with_schedule(PipelineSchedule::Interleaved { virtual_stages: 2 })
            .simulate_iteration(32)
            .unwrap();
        let without = SimConfig::new(&m, &a, &sys, &p)
            .with_schedule(PipelineSchedule::Interleaved { virtual_stages: 2 })
            .with_grad_sync(false)
            .simulate_iteration(32)
            .unwrap();
        assert!(with.iteration_time > without.iteration_time);
    }

    #[test]
    fn moe_layers_lengthen_stage_durations() {
        let moe = TransformerModel::builder("moe-sim")
            .layers(8)
            .hidden_size(512)
            .heads(8)
            .seq_len(128)
            .vocab_size(1000)
            .include_head(false)
            .moe(amped_core::MoeConfig::glam(4))
            .build()
            .unwrap();
        let dense = TransformerModel::builder("dense-sim")
            .layers(8)
            .hidden_size(512)
            .heads(8)
            .seq_len(128)
            .vocab_size(1000)
            .include_head(false)
            .build()
            .unwrap();
        let a = v100();
        let sys = SystemSpec::new(4, 2, Link::new(5e-6, 2.4e12), Link::new(1e-5, 1e11), 2)
            .unwrap();
        let p = Parallelism::builder().tp(2, 1).dp(1, 4).build().unwrap();
        let t_moe = SimConfig::new(&moe, &a, &sys, &p)
            .simulate_iteration(32)
            .unwrap()
            .iteration_time;
        let t_dense = SimConfig::new(&dense, &a, &sys, &p)
            .simulate_iteration(32)
            .unwrap()
            .iteration_time;
        // Top-2 experts roughly double the MLP compute and add all-to-all.
        assert!(t_moe > 1.2 * t_dense, "moe {t_moe} dense {t_dense}");
    }

    #[test]
    fn dp_traffic_matches_the_analytical_ring_volume() {
        // Pure intra-node DP: the only transfers are the gradient ring.
        let m = mingpt();
        let a = v100();
        let sys = hgx(8);
        let p = Parallelism::data_parallel_intra(8).unwrap();
        let r = SimConfig::new(&m, &a, &sys, &p).simulate_iteration(64).unwrap();
        assert_eq!(r.inter_bytes, 0.0);
        // The synchronized volume covers the layer-stack weights (the
        // fixture excludes head and embeddings) at fp16.
        let grad_bytes: f64 = m
            .layer_stack()
            .iter()
            .map(|&k| LayerCounts::for_layer(&m, k, 1.0).weights * 2.0)
            .sum();
        // Ring all-reduce moves 2(n-1)/n * V per rank, n ranks total.
        let expect = 2.0 * 7.0 * grad_bytes / 8.0 * 8.0;
        let rel = (r.intra_bytes - expect).abs() / expect;
        assert!(rel < 0.02, "sim {} vs analytic {expect} ({rel:.3})", r.intra_bytes);
    }

    #[test]
    fn hierarchical_grad_sync_beats_flat_inter_ring() {
        // DP 4x4 over 4 nodes: the hierarchical sync keeps 3/4 of the ring
        // traffic on NVLink; compare against DP 1x16 (all hops inter-node).
        let m = mingpt();
        let a = v100();
        let hier_sys =
            SystemSpec::new(4, 4, Link::new(5e-6, 2.4e12), Link::new(1e-5, 5e10), 4).unwrap();
        let flat_sys =
            SystemSpec::new(16, 1, Link::new(5e-6, 2.4e12), Link::new(1e-5, 5e10), 1).unwrap();
        let p_hier = Parallelism::builder().dp(4, 4).build().unwrap();
        let p_flat = Parallelism::builder().dp(1, 16).build().unwrap();
        let run = |sys: &SystemSpec, p: &Parallelism| {
            let with = SimConfig::new(&m, &a, sys, p)
                .simulate_iteration(64)
                .unwrap()
                .iteration_time;
            let without = SimConfig::new(&m, &a, sys, p)
                .with_grad_sync(false)
                .simulate_iteration(64)
                .unwrap()
                .iteration_time;
            with - without
        };
        let hier_cost = run(&hier_sys, &p_hier);
        let flat_cost = run(&flat_sys, &p_flat);
        assert!(hier_cost > 0.0);
        assert!(
            hier_cost < flat_cost,
            "hierarchical sync {hier_cost} must beat flat inter ring {flat_cost}"
        );
    }

    #[test]
    fn straggler_schedule_slows_the_iteration() {
        let m = mingpt();
        let a = v100();
        let sys = hgx(4);
        let p = Parallelism::data_parallel_intra(4).unwrap();
        let healthy = SimConfig::new(&m, &a, &sys, &p)
            .simulate_iteration(32)
            .unwrap();
        let plan = crate::fault::FaultPlan::seeded(3).with_straggler(0, 2.0);
        let slowed = SimConfig::new(&m, &a, &sys, &p)
            .with_fault_schedule(plan.materialize(4))
            .simulate_iteration(32)
            .unwrap();
        assert!(
            slowed.iteration_time > 1.2 * healthy.iteration_time,
            "straggler {} vs healthy {}",
            slowed.iteration_time,
            healthy.iteration_time
        );
    }

    #[test]
    fn checkpoint_writes_appear_and_extend_the_iteration() {
        let m = mingpt();
        let a = v100();
        let sys = hgx(4);
        let p = Parallelism::builder().pp(4, 1).build().unwrap();
        let cfg = SimConfig::new(&m, &a, &sys, &p);
        let plain = cfg.clone().simulate_iteration(16).unwrap();
        let ckpt = cfg
            .with_checkpoint_writes(vec![0.5; 4])
            .simulate_iteration(16)
            .unwrap();
        assert!(
            ckpt.iteration_time >= plain.iteration_time + 0.5,
            "ckpt {} vs plain {}",
            ckpt.iteration_time,
            plain.iteration_time
        );
        let n_ckpt = ckpt
            .timeline
            .entries()
            .iter()
            .filter(|e| e.label == "ckpt")
            .count();
        assert_eq!(n_ckpt, 4, "one checkpoint task per stage");
        assert!(plain.timeline.entries().iter().all(|e| e.label != "ckpt"));
    }

    #[test]
    fn inactive_plan_run_is_exactly_the_fault_free_product() {
        let m = mingpt();
        let a = v100();
        let sys = hgx(4);
        let p = Parallelism::data_parallel_intra(4).unwrap();
        let cfg = SimConfig::new(&m, &a, &sys, &p);
        let iter = cfg.simulate_iteration(32).unwrap();
        let run = cfg.simulate_run(32, 7, &crate::fault::FaultPlan::none()).unwrap();
        assert_eq!(
            run.total_time_s.to_bits(),
            (iter.iteration_time * 7.0).to_bits()
        );
        assert_eq!(run.num_failures, 0);
        assert_eq!(run.num_checkpoints, 0);
        assert!((run.goodput() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn failures_and_checkpoints_cost_time_and_replay_deterministically() {
        let m = mingpt();
        let a = v100();
        let sys = hgx(4);
        let p = Parallelism::data_parallel_intra(4).unwrap();
        let cfg = SimConfig::new(&m, &a, &sys, &p);
        let iter = cfg.simulate_iteration(32).unwrap().iteration_time;
        // MTBF tuned so a 50-batch run sees a handful of failures.
        let plan = crate::fault::FaultPlan::seeded(17)
            .with_device_mtbf(4.0 * 40.0 * iter)
            .with_restart(2.0 * iter)
            .with_ckpt_write_bw(1e9);
        let run = cfg.simulate_run(32, 50, &plan).unwrap();
        assert!(run.num_failures > 0, "expected at least one failure");
        assert!(run.num_checkpoints > 0);
        assert!(run.total_time_s > run.fault_free_time_s);
        assert!(
            (run.total_time_s
                - (run.fault_free_time_s + run.checkpoint_time_s + run.rework_time_s))
                .abs()
                < 1e-6 * run.total_time_s,
            "accounting must decompose the wall clock"
        );
        assert!(run.goodput() < 1.0);
        let again = cfg.simulate_run(32, 50, &plan).unwrap();
        assert_eq!(run.total_time_s.to_bits(), again.total_time_s.to_bits());
        assert_eq!(run.num_failures, again.num_failures);
    }

    #[test]
    fn run_events_tile_the_wall_clock() {
        let m = mingpt();
        let a = v100();
        let sys = hgx(4);
        let p = Parallelism::data_parallel_intra(4).unwrap();
        let cfg = SimConfig::new(&m, &a, &sys, &p);
        let iter = cfg.simulate_iteration(32).unwrap().iteration_time;
        let plan = crate::fault::FaultPlan::seeded(17)
            .with_device_mtbf(4.0 * 40.0 * iter)
            .with_restart(2.0 * iter)
            .with_ckpt_write_bw(1e9);
        let run = cfg.simulate_run(32, 50, &plan).unwrap();
        assert!(!run.events.is_empty());
        let mut cursor = 0.0f64;
        for ev in &run.events {
            assert_eq!(ev.start_s.to_bits(), cursor.to_bits(), "events must abut");
            assert!(ev.end_s >= ev.start_s);
            cursor = ev.end_s;
        }
        assert_eq!(cursor.to_bits(), run.total_time_s.to_bits());
        assert!(run.events.iter().any(|e| e.span == RunSpan::Lost));
        assert!(run.events.iter().any(|e| e.span == RunSpan::Restart));
        assert!(run.events.iter().any(|e| e.span == RunSpan::Checkpoint));
        let rework: f64 = run
            .events
            .iter()
            .filter(|e| matches!(e.span, RunSpan::Lost | RunSpan::Restart))
            .map(|e| e.end_s - e.start_s)
            .sum();
        assert!(
            (rework - run.rework_time_s).abs() < 1e-9 * run.total_time_s,
            "lost + restart slices must account for the rework time"
        );
    }

    /// Eight single-accel nodes: dp 4 × pp 2 lands one replica on each
    /// two-node rack, so a rack outage breaks exactly one replica.
    fn rack_cluster() -> (SystemSpec, Parallelism, amped_core::FailureDomainTree) {
        let sys = SystemSpec::new(8, 1, Link::new(5e-6, 2.4e12), Link::new(1e-5, 1e11), 1)
            .unwrap();
        let p = Parallelism::builder().dp(1, 4).pp(1, 2).build().unwrap();
        let tree = amped_core::FailureDomainTree::new(8, 2, 4).unwrap();
        (sys, p, tree)
    }

    #[test]
    fn elastic_outages_shrink_and_regrow_instead_of_restarting() {
        let m = mingpt();
        let a = v100();
        let (sys, p, tree) = rack_cluster();
        let cfg = SimConfig::new(&m, &a, &sys, &p);
        let iter = cfg.simulate_iteration(32).unwrap().iteration_time;
        let tree = tree.with_rack_mtbf(4.0 * 30.0 * iter);
        let base = crate::fault::FaultPlan::seeded(23)
            .with_domain_tree(tree)
            .with_restart(2.0 * iter)
            .with_ckpt_interval(10.0 * iter);
        let fatal = cfg.simulate_run(32, 60, &base).unwrap();
        assert!(fatal.num_domain_outages > 0, "expected rack outages");
        assert_eq!(fatal.elastic_overhead_s, 0.0);
        assert!(fatal.rework_time_s > 0.0, "without regrow, outages are fatal");
        assert!(fatal.events.iter().any(|e| e.span == RunSpan::Lost));

        let elastic = cfg
            .simulate_run(32, 60, &base.clone().with_regrow(5.0 * iter))
            .unwrap();
        assert!(elastic.num_domain_outages > 0);
        assert!(elastic.elastic_overhead_s > 0.0);
        assert!(elastic.events.iter().any(|e| e.span == RunSpan::Shrunk));
        assert!(elastic.events.iter().any(|e| e.span == RunSpan::Regrow));
        // Blast radius 1 of 4 replicas: nothing is ever fatal here, so the
        // only rework would come from device failures — there are none.
        assert_eq!(elastic.rework_time_s, 0.0);
        // The accounting identity extends to the elastic overhead.
        assert!(
            (elastic.total_time_s
                - (elastic.fault_free_time_s
                    + elastic.checkpoint_time_s
                    + elastic.rework_time_s
                    + elastic.elastic_overhead_s))
                .abs()
                < 1e-6 * elastic.total_time_s,
            "accounting must decompose the wall clock"
        );
        // Bit-identical replay on a second run.
        let again = cfg
            .simulate_run(32, 60, &base.with_regrow(5.0 * iter))
            .unwrap();
        assert_eq!(elastic.total_time_s.to_bits(), again.total_time_s.to_bits());
        assert_eq!(elastic.num_domain_outages, again.num_domain_outages);
        // Events still tile the wall clock bit-exactly.
        let mut cursor = 0.0f64;
        for ev in &elastic.events {
            assert_eq!(ev.start_s.to_bits(), cursor.to_bits(), "events must abut");
            cursor = ev.end_s;
        }
        assert_eq!(cursor.to_bits(), elastic.total_time_s.to_bits());
    }

    #[test]
    fn preemptions_are_elastic_when_regrow_is_configured() {
        let m = mingpt();
        let a = v100();
        let (sys, p, tree) = rack_cluster();
        let cfg = SimConfig::new(&m, &a, &sys, &p);
        let iter = cfg.simulate_iteration(32).unwrap().iteration_time;
        let plan = crate::fault::FaultPlan::seeded(5)
            .with_domain_tree(tree)
            .with_preemption(8.0 * 25.0 * iter)
            .with_restart(2.0 * iter)
            .with_regrow(4.0 * iter);
        let run = cfg.simulate_run(32, 60, &plan).unwrap();
        assert!(run.num_preemptions > 0, "expected spot preemptions");
        assert_eq!(run.num_domain_outages, 0);
        assert!(run.events.iter().any(|e| e.span == RunSpan::Shrunk));
        assert!(run.elastic_overhead_s > 0.0);
        assert_eq!(run.rework_time_s, 0.0, "single-node blast radius never kills dp 4");
    }

    #[test]
    fn run_observer_reconciles_and_never_perturbs() {
        let m = mingpt();
        let a = v100();
        let sys = hgx(4);
        let p = Parallelism::data_parallel_intra(4).unwrap();
        let cfg = SimConfig::new(&m, &a, &sys, &p);
        let iter = cfg.simulate_iteration(32).unwrap().iteration_time;
        let plan = crate::fault::FaultPlan::seeded(17)
            .with_device_mtbf(4.0 * 40.0 * iter)
            .with_restart(2.0 * iter)
            .with_ckpt_write_bw(1e9);
        let plain = cfg.simulate_run(32, 50, &plan).unwrap();

        let obs = std::sync::Arc::new(amped_obs::Observer::new());
        let observed = cfg
            .clone()
            .with_observer(obs.clone())
            .simulate_run(32, 50, &plan)
            .unwrap();
        assert_eq!(
            plain.total_time_s.to_bits(),
            observed.total_time_s.to_bits(),
            "instrumentation must not perturb the replay"
        );

        let counters = obs.counters();
        assert_eq!(counters["sim.run.batches"], 50);
        assert_eq!(counters["sim.run.failures"], observed.num_failures);
        assert_eq!(counters["sim.run.checkpoints"], observed.num_checkpoints);
        assert!(counters["sim.des.runs"] >= 3, "healthy + perturbed + ckpt");
        assert!(counters["sim.des.events_processed"] > 0);
        let gauges = obs.gauges();
        assert!((gauges["sim.run.goodput"] - observed.goodput()).abs() < 1e-12);
        assert!(gauges["sim.run.rework_s"] > 0.0);
        // The iteration phases show up as spans on the trace.
        let names: std::collections::BTreeSet<_> =
            obs.trace_events().iter().map(|e| e.name.clone()).collect();
        assert!(names.contains("sim.iteration.healthy"));
        assert!(names.contains("sim.iteration.perturbed"));
        assert!(names.contains("sim.replay"));
    }

    #[test]
    fn hopeless_mtbf_errors_instead_of_hanging() {
        let m = mingpt();
        let a = v100();
        let sys = hgx(4);
        let p = Parallelism::data_parallel_intra(4).unwrap();
        let cfg = SimConfig::new(&m, &a, &sys, &p);
        let iter = cfg.simulate_iteration(32).unwrap().iteration_time;
        let plan = crate::fault::FaultPlan::seeded(1)
            .with_device_mtbf(iter * 1e-3)
            .with_restart(iter);
        assert!(cfg.simulate_run(32, 10, &plan).is_err());
    }

    #[test]
    fn inter_node_dp_is_slower_than_intra() {
        let m = mingpt();
        let a = v100();
        let one_node = SystemSpec::new(
            1, 8, Link::new(5e-6, 2.4e12), Link::new(1e-5, 1e11), 8,
        )
        .unwrap();
        let eight_nodes = SystemSpec::new(
            8, 1, Link::new(5e-6, 2.4e12), Link::new(1e-5, 1e11), 1,
        )
        .unwrap();
        let p_intra = Parallelism::data_parallel_intra(8).unwrap();
        let p_inter = Parallelism::builder().dp(1, 8).build().unwrap();
        let t_intra = SimConfig::new(&m, &a, &one_node, &p_intra)
            .simulate_iteration(64)
            .unwrap()
            .iteration_time;
        let t_inter = SimConfig::new(&m, &a, &eight_nodes, &p_inter)
            .simulate_iteration(64)
            .unwrap()
            .iteration_time;
        assert!(t_inter > t_intra);
    }
}
