//! The discrete-event simulator as a [`CostBackend`].
//!
//! [`SimBackend`] makes the simulator consumable wherever the analytical
//! model is: the search's refinement pass, the CLI's `--backend sim`, and
//! the differential/regression tests all price a [`Scenario`] through the
//! same trait and read the same [`Estimate`] shape.
//!
//! # Breakdown attribution
//!
//! The simulator produces a task timeline, not Eq. 2–12 component sums, so
//! the [`Breakdown`](amped_core::Breakdown) is *re-attributed* from task
//! labels ([`BreakdownFidelity::Approximate`]):
//!
//! * `fwd` / `bwd` / `wupd` compute tasks map to the three compute
//!   components. Tensor-parallel and MoE collective time is folded into
//!   stage compute durations by the simulator's fidelity boundary, so
//!   `tp_comm_*` and `moe_comm` are always zero here and their time rides
//!   in `compute_forward`/`compute_backward`.
//! * `act>` / `err<` stage-boundary transfers map to `pp_comm`.
//! * Gradient-sync transfers map to `dp_comm_intra`/`dp_comm_inter` (the
//!   hierarchical phases by name; a flat ring by whether the mapping
//!   crosses nodes).
//! * Everything are per-device averages (total task seconds divided by the
//!   device count), matching the analytical model's per-worker accounting;
//!   `bubble` absorbs the remaining makespan so
//!   `Breakdown::total() == time_per_iteration` whenever attributed time
//!   does not exceed the makespan (it is clamped at zero otherwise).

use std::sync::Arc;

use amped_core::{
    metrics, BreakdownFidelity, CostBackend, Error, Estimate, Result, Scenario, Seconds,
    TrainingConfig,
};
use amped_memory::{MemoryModel, PipelineSchedule as MemorySchedule};
use amped_obs::Observer;

use crate::fault::FaultPlan;
use crate::timeline::Activity;
use crate::training::{PipelineSchedule, SimConfig};

/// The `amped-sim` discrete-event simulator behind the [`CostBackend`]
/// contract.
///
/// Deterministic: the simulator is event-ordered with stable tie-breaking,
/// and fault schedules are pure functions of their seed, so repeated
/// evaluations of one scenario are bit-identical — which is what lets the
/// search's `--refine-sim` pass re-rank candidates reproducibly at any
/// worker count.
#[derive(Debug, Clone, Default)]
pub struct SimBackend {
    schedule: PipelineSchedule,
    fault_plan: Option<FaultPlan>,
    observer: Option<Arc<Observer>>,
    skip_device_samples: bool,
}

impl SimBackend {
    /// A simulator backend running the default (GPipe) schedule — the
    /// schedule of the paper's experimental validation.
    pub fn new() -> Self {
        SimBackend::default()
    }

    /// Choose the pipeline schedule simulated for every scenario.
    pub fn with_schedule(mut self, schedule: PipelineSchedule) -> Self {
        self.schedule = schedule;
        self
    }

    /// Price scenarios under a fault plan: each evaluation becomes a full
    /// [`SimConfig::simulate_run`] replay (stragglers, link faults,
    /// checkpoints, seeded failures) instead of `iteration × batches`. An
    /// inactive plan (no seed) changes nothing — outputs stay bit-identical
    /// to a backend that never saw a plan.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// The configured fault plan, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.fault_plan.as_ref()
    }

    /// Attach an observer: each evaluation records a `sim.evaluate` span,
    /// bumps `backend.sim.evaluations`, and forwards the observer into the
    /// simulator so DES internals (`sim.des.*`) are captured too. Attaching
    /// an observer never changes any estimate — instrumentation is passive.
    pub fn with_observer(mut self, observer: Arc<Observer>) -> Self {
        self.observer = Some(observer);
        self
    }

    /// Do not record per-device utilization samples. The search's parallel
    /// refine pass uses this: device samples are last-writer-wins, which
    /// would make the metrics report depend on worker scheduling.
    pub fn without_device_samples(mut self) -> Self {
        self.skip_device_samples = true;
        self
    }

    /// The configured pipeline schedule.
    pub fn schedule(&self) -> PipelineSchedule {
        self.schedule
    }

    /// The memory-model schedule matching the simulated one (the memory
    /// model has no interleaved variant; interleaving keeps 1F1B's
    /// in-flight bound per chunk).
    fn memory_schedule(&self) -> MemorySchedule {
        match self.schedule {
            PipelineSchedule::GPipe => MemorySchedule::GPipe,
            PipelineSchedule::OneFOneB | PipelineSchedule::Interleaved { .. } => {
                MemorySchedule::OneFOneB
            }
        }
    }

    /// The Fig. 2b feasibility gate: per-stage peak footprints, with the
    /// torchgpipe last-stage microbatch gather under GPipe — the effect
    /// that caps the paper's pipeline scaling at 8 GPUs.
    ///
    /// # Errors
    ///
    /// Returns an error naming the worst stage when its footprint exceeds
    /// the accelerator memory, so refined rankings can never surface a
    /// memory-infeasible candidate.
    fn check_memory(&self, scenario: &Scenario, training: &TrainingConfig) -> Result<()> {
        let p = &scenario.parallelism;
        let global_batch = training.global_batch();
        let ub = p.microbatch_size(global_batch);
        let n_ub = p.num_microbatches(global_batch);
        let gather_on_last_stage = matches!(self.schedule, PipelineSchedule::GPipe) && p.pp() > 1;
        let mem = MemoryModel::new(&scenario.model, p)
            .with_precision(scenario.precision)
            .with_schedule(self.memory_schedule())
            .with_activation_recompute(scenario.options.activation_recompute);
        let stages = mem.stage_footprints(ub, n_ub, gather_on_last_stage);
        let capacity = scenario.accelerator.memory_bytes();
        let (worst_stage, worst) = stages
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total().total_cmp(&b.1.total()))
            .expect("at least one pipeline stage");
        if worst.total() > capacity {
            return Err(Error::invalid(
                "sim-backend",
                format!(
                    "stage {worst_stage} needs {:.2} GB but {} has {:.2} GB \
                     (microbatch {ub}, {n_ub} microbatches)",
                    worst.total() / 1e9,
                    scenario.accelerator.name(),
                    capacity / 1e9,
                ),
            ));
        }
        Ok(())
    }
}

impl CostBackend for SimBackend {
    fn name(&self) -> &'static str {
        "sim"
    }

    fn breakdown_fidelity(&self) -> BreakdownFidelity {
        BreakdownFidelity::Approximate
    }

    fn evaluate(&self, scenario: &Scenario, training: &TrainingConfig) -> Result<Estimate> {
        let _span = self.observer.as_ref().map(|o| o.span("sim.evaluate"));
        if let Some(obs) = &self.observer {
            obs.add("backend.sim.evaluations", 1);
        }
        let p = &scenario.parallelism;
        p.validate_against(&scenario.system, &scenario.model)?;
        self.check_memory(scenario, training)?;

        let global_batch = training.global_batch();
        let mut cfg = SimConfig::new(
            &scenario.model,
            &scenario.accelerator,
            &scenario.system,
            p,
        )
        .with_precision(scenario.precision)
        .with_efficiency(scenario.efficiency.clone())
        .with_options(scenario.options)
        .with_schedule(self.schedule);
        if let Some(obs) = &self.observer {
            cfg = cfg.with_observer(obs.clone());
            if self.skip_device_samples {
                cfg = cfg.without_device_samples();
            }
        }

        // An active fault plan turns the evaluation into a full-run replay;
        // otherwise the original iteration × batches path runs untouched.
        let active_plan = self.fault_plan.as_ref().filter(|plan| plan.is_active());
        let (result, total_time) = match active_plan {
            Some(plan) => {
                let run = cfg.simulate_run(global_batch, training.num_batches(), plan)?;
                let total = run.total_time_s;
                (run.iteration, total)
            }
            None => {
                let r = cfg.simulate_iteration(global_batch)?;
                let total = r.iteration_time * training.num_batches() as f64;
                (r, total)
            }
        };

        let devices = result.timeline.num_devices().max(1) as f64;
        let mut b = amped_core::Breakdown::default();
        for e in result.timeline.entries() {
            let share = (e.end_s - e.start_s) / devices;
            match (e.activity, e.label) {
                (Activity::Compute, "fwd") => b.compute_forward += share,
                (Activity::Compute, "bwd") => b.compute_backward += share,
                (Activity::Compute, "wupd") => b.weight_update += share,
                (Activity::Comm, "act>") | (Activity::Comm, "err<") => b.pp_comm += share,
                (Activity::Comm, "gsync-rs") | (Activity::Comm, "gsync-ag") => {
                    b.dp_comm_intra += share
                }
                (Activity::Comm, "gsync-x") => b.dp_comm_inter += share,
                (Activity::Comm, "gsync") => {
                    if p.dp_inter() > 1 {
                        b.dp_comm_inter += share;
                    } else {
                        b.dp_comm_intra += share;
                    }
                }
                _ => {}
            }
        }
        let attributed = b.compute_total() + b.comm_total();
        b.bubble = (result.iteration_time - attributed).max(0.0);

        let time_per_iteration = result.iteration_time;
        let model_flops = metrics::model_flops_per_iteration(
            &scenario.model,
            global_batch,
            scenario.options.activation_recompute,
        );
        let workers = p.total_workers() as f64;
        let tokens_per_sec = if time_per_iteration > 0.0 {
            (global_batch * scenario.model.seq_len()) as f64 / time_per_iteration
        } else {
            0.0
        };
        Ok(Estimate {
            breakdown: b,
            time_per_iteration: Seconds::new(time_per_iteration),
            total_time: Seconds::new(total_time),
            microbatch_size: result.microbatch_size,
            num_microbatches: result.num_microbatches,
            efficiency: scenario.efficiency.eval(result.microbatch_size),
            model_flops_per_iteration: model_flops,
            tflops_per_gpu: metrics::tflops_per_gpu(model_flops, time_per_iteration, workers),
            total_workers: p.total_workers(),
            tokens_per_sec,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amped_core::{
        AcceleratorSpec, EfficiencyModel, Link, MicrobatchPolicy, Parallelism, SystemSpec,
        TransformerModel,
    };

    fn scenario(p: Parallelism, nodes: usize, per_node: usize) -> Scenario {
        let model = TransformerModel::builder("sim-backend-m")
            .layers(12)
            .hidden_size(768)
            .heads(12)
            .seq_len(512)
            .vocab_size(50257)
            .include_head(false)
            .build()
            .unwrap();
        let accel = AcceleratorSpec::builder("V100")
            .frequency_hz(1.53e9)
            .cores(80)
            .mac_units(8, 64, 16)
            .nonlin_units(80, 64, 32)
            .memory(32e9, 0.9e12)
            .build()
            .unwrap();
        let system = SystemSpec::new(
            nodes,
            per_node,
            Link::new(5e-6, 2.4e12),
            Link::new(1e-5, 1e11),
            per_node,
        )
        .unwrap();
        Scenario::new(model, accel, system, p)
            .with_efficiency(EfficiencyModel::Constant(0.5))
    }

    #[test]
    fn sim_backend_matches_raw_simulation_makespan() {
        let p = Parallelism::builder()
            .pp(4, 1)
            .dp(2, 1)
            .microbatches(MicrobatchPolicy::Explicit(8))
            .build()
            .unwrap();
        let s = scenario(p, 1, 8);
        let training = TrainingConfig::new(64, 5).unwrap();
        let est = SimBackend::new().evaluate(&s, &training).unwrap();
        let raw = SimConfig::new(&s.model, &s.accelerator, &s.system, &s.parallelism)
            .with_efficiency(s.efficiency.clone())
            .simulate_iteration(64)
            .unwrap();
        assert_eq!(
            est.time_per_iteration.get().to_bits(),
            raw.iteration_time.to_bits()
        );
        assert_eq!(
            est.total_time.get().to_bits(),
            (raw.iteration_time * 5.0).to_bits()
        );
        assert_eq!(est.num_microbatches, raw.num_microbatches);
    }

    #[test]
    fn breakdown_total_reconstructs_the_iteration_time() {
        let p = Parallelism::builder()
            .pp(4, 1)
            .dp(2, 1)
            .microbatches(MicrobatchPolicy::Explicit(8))
            .build()
            .unwrap();
        let s = scenario(p, 1, 8);
        let est = SimBackend::new()
            .evaluate(&s, &TrainingConfig::new(64, 1).unwrap())
            .unwrap();
        let b = &est.breakdown;
        assert!(b.compute_forward > 0.0);
        assert!(b.compute_backward > 0.0);
        assert!(b.pp_comm > 0.0, "stage transfers must be attributed");
        assert!(b.dp_comm_intra > 0.0, "grad sync must be attributed");
        // TP/MoE are folded into compute by the simulator's fidelity
        // boundary.
        assert_eq!(b.tp_comm_intra, 0.0);
        assert_eq!(b.moe_comm, 0.0);
        let total = b.total();
        let t = est.time_per_iteration.get();
        assert!(
            (total - t).abs() <= 1e-9 * t,
            "breakdown total {total} vs makespan {t}"
        );
        assert!(b.bubble > 0.0, "a 4-stage GPipe run has a bubble");
    }

    #[test]
    fn default_evaluate_many_is_a_bitwise_passthrough() {
        // SimBackend keeps the trait's default `evaluate_many` (a loop
        // over `evaluate`): batched results must match per-candidate calls
        // bit-for-bit, including per-slot errors for invalid mappings.
        let base = Parallelism::builder().pp(2, 1).dp(4, 1).build().unwrap();
        let s = scenario(base, 1, 8);
        let training = TrainingConfig::new(32, 3).unwrap();
        let mappings = vec![
            base,
            Parallelism::builder().pp(4, 1).dp(2, 1).build().unwrap(),
            Parallelism::builder().pp(2, 1).build().unwrap(), // invalid: 2 != 8
            Parallelism::builder().dp(8, 1).build().unwrap(),
        ];
        let backend = SimBackend::new();
        let batched = backend.evaluate_many(&s, &mappings, &training);
        assert_eq!(batched.len(), mappings.len());
        for (p, b) in mappings.iter().zip(&batched) {
            let scalar = backend.evaluate(&s.clone().with_parallelism(*p), &training);
            match (scalar, b) {
                (Ok(scalar), Ok(b)) => assert_eq!(
                    scalar.total_time.get().to_bits(),
                    b.total_time.get().to_bits()
                ),
                (Err(_), Err(_)) => {}
                (scalar, b) => panic!("outcome mismatch: {scalar:?} vs {b:?}"),
            }
        }
    }

    #[test]
    fn evaluations_are_deterministic() {
        let p = Parallelism::builder().pp(2, 1).dp(4, 1).build().unwrap();
        let s = scenario(p, 1, 8);
        let training = TrainingConfig::new(32, 3).unwrap();
        let backend: &dyn CostBackend = &SimBackend::new();
        assert_eq!(backend.name(), "sim");
        assert_eq!(backend.breakdown_fidelity(), BreakdownFidelity::Approximate);
        let a = backend.evaluate(&s, &training).unwrap();
        let b = backend.evaluate(&s, &training).unwrap();
        assert_eq!(
            a.total_time.get().to_bits(),
            b.total_time.get().to_bits()
        );
    }

    #[test]
    fn inactive_fault_plan_is_bit_identical_to_no_plan() {
        let p = Parallelism::builder()
            .pp(2, 1)
            .dp(4, 1)
            .microbatches(MicrobatchPolicy::Explicit(8))
            .build()
            .unwrap();
        let s = scenario(p, 1, 8);
        let training = TrainingConfig::new(64, 4).unwrap();
        let plain = SimBackend::new().evaluate(&s, &training).unwrap();
        let inert = SimBackend::new()
            .with_fault_plan(FaultPlan::none().with_random_stragglers(3, 2.0))
            .evaluate(&s, &training)
            .unwrap();
        assert_eq!(
            plain.total_time.get().to_bits(),
            inert.total_time.get().to_bits()
        );
        assert_eq!(
            plain.time_per_iteration.get().to_bits(),
            inert.time_per_iteration.get().to_bits()
        );
    }

    #[test]
    fn active_fault_plan_extends_the_total_time() {
        let p = Parallelism::builder()
            .pp(2, 1)
            .dp(4, 1)
            .microbatches(MicrobatchPolicy::Explicit(8))
            .build()
            .unwrap();
        let s = scenario(p, 1, 8);
        let training = TrainingConfig::new(64, 20).unwrap();
        let plain = SimBackend::new().evaluate(&s, &training).unwrap();
        let iter = plain.time_per_iteration.get();
        let faulted = SimBackend::new()
            .with_fault_plan(
                FaultPlan::seeded(7)
                    .with_random_stragglers(1, 1.5)
                    .with_device_mtbf(8.0 * 30.0 * iter)
                    .with_restart(iter),
            )
            .evaluate(&s, &training)
            .unwrap();
        assert!(
            faulted.total_time.get() > plain.total_time.get(),
            "faults must cost time: {} vs {}",
            faulted.total_time.get(),
            plain.total_time.get()
        );
        assert!(faulted.time_per_iteration.get() > plain.time_per_iteration.get());
        // Deterministic replay: same plan, same bits.
        let again = SimBackend::new()
            .with_fault_plan(
                FaultPlan::seeded(7)
                    .with_random_stragglers(1, 1.5)
                    .with_device_mtbf(8.0 * 30.0 * iter)
                    .with_restart(iter),
            )
            .evaluate(&s, &training)
            .unwrap();
        assert_eq!(
            faulted.total_time.get().to_bits(),
            again.total_time.get().to_bits()
        );
    }

    #[test]
    fn observed_backend_is_bit_identical_and_counts_evaluations() {
        let p = Parallelism::builder()
            .pp(2, 1)
            .dp(4, 1)
            .microbatches(MicrobatchPolicy::Explicit(8))
            .build()
            .unwrap();
        let s = scenario(p, 1, 8);
        let training = TrainingConfig::new(64, 4).unwrap();
        let plain = SimBackend::new().evaluate(&s, &training).unwrap();
        let obs = Arc::new(Observer::new());
        let observed = SimBackend::new()
            .with_observer(obs.clone())
            .evaluate(&s, &training)
            .unwrap();
        assert_eq!(
            plain.total_time.get().to_bits(),
            observed.total_time.get().to_bits()
        );
        let counters = obs.counters();
        assert_eq!(counters["backend.sim.evaluations"], 1);
        assert_eq!(counters["sim.des.runs"], 1);
        assert!(counters["sim.des.events_processed"] > 0);
        assert!(obs.gauges()["sim.des.max_queue_depth"] > 0.0);
        // Device samples are on by default and skippable for parallel use.
        assert!(!obs.report("t").devices.is_empty());
        let quiet = Arc::new(Observer::new());
        SimBackend::new()
            .with_observer(quiet.clone())
            .without_device_samples()
            .evaluate(&s, &training)
            .unwrap();
        assert!(quiet.report("t").devices.is_empty());
    }

    #[test]
    fn memory_infeasible_candidates_are_rejected() {
        // One microbatch of the whole replica batch on a GPipe pipeline:
        // the last stage gathers every output and a tiny device runs out.
        let p = Parallelism::builder()
            .pp(4, 1)
            .microbatches(MicrobatchPolicy::Explicit(1))
            .build()
            .unwrap();
        let mut s = scenario(p, 1, 4);
        s.accelerator = AcceleratorSpec::builder("tiny")
            .frequency_hz(1.53e9)
            .cores(80)
            .mac_units(8, 64, 16)
            .nonlin_units(80, 64, 32)
            .memory(0.2e9, 0.9e12)
            .build()
            .unwrap();
        let err = SimBackend::new()
            .evaluate(&s, &TrainingConfig::new(4096, 1).unwrap())
            .unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("GB"), "unexpected error: {msg}");
    }
}
