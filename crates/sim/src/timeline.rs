//! Activity timelines — the simulator's substitute for the paper's Fig. 1
//! `nvidia-smi` utilization traces.

use serde::{Deserialize, Serialize};

/// What a device was doing during an interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Activity {
    /// The compute unit was busy with training math.
    Compute,
    /// A send port was busy.
    Comm,
    /// The device was draining a checkpoint snapshot to storage.
    Checkpoint,
    /// The device was redoing work discarded by a fault restart.
    Recompute,
}

/// One recorded interval.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimelineEntry {
    /// Device index.
    pub device: usize,
    /// Activity kind.
    pub activity: Activity,
    /// Start time in seconds.
    pub start_s: f64,
    /// End time in seconds.
    pub end_s: f64,
    /// Label of the task that produced the interval.
    pub label: &'static str,
}

/// The recorded activity of all devices over a run.
#[derive(Debug, Clone, Default)]
pub struct Timeline {
    entries: Vec<TimelineEntry>,
    num_devices: usize,
    makespan_s: f64,
}

impl Timeline {
    /// An empty timeline over `num_devices` devices.
    pub fn new(num_devices: usize) -> Self {
        Timeline {
            entries: Vec::new(),
            num_devices,
            makespan_s: 0.0,
        }
    }

    /// Record an interval.
    pub fn push(
        &mut self,
        device: usize,
        activity: Activity,
        start_s: f64,
        end_s: f64,
        label: &'static str,
    ) {
        debug_assert!(end_s >= start_s, "interval must not be reversed");
        self.entries.push(TimelineEntry {
            device,
            activity,
            start_s,
            end_s,
            label,
        });
    }

    /// Set the run makespan (done by the simulator at the end).
    pub fn set_makespan(&mut self, makespan_s: f64) {
        self.makespan_s = makespan_s;
    }

    /// The run makespan in seconds.
    pub fn makespan(&self) -> f64 {
        self.makespan_s
    }

    /// Number of devices.
    pub fn num_devices(&self) -> usize {
        self.num_devices
    }

    /// All recorded intervals, in start order of recording.
    pub fn entries(&self) -> &[TimelineEntry] {
        &self.entries
    }

    /// Compute utilization of `device` sampled into `buckets` equal time
    /// bins over the makespan — a discrete `nvidia-smi`-style trace.
    pub fn utilization_trace(&self, device: usize, buckets: usize) -> Vec<f64> {
        let mut trace = vec![0.0; buckets.max(1)];
        if self.makespan_s <= 0.0 || buckets == 0 {
            return trace;
        }
        let width = self.makespan_s / buckets as f64;
        for e in &self.entries {
            if e.device != device || e.activity != Activity::Compute {
                continue;
            }
            let first = ((e.start_s / width).floor() as usize).min(buckets - 1);
            let last = ((e.end_s / width).ceil() as usize).min(buckets);
            for (b, slot) in trace.iter_mut().enumerate().take(last).skip(first) {
                let lo = (b as f64 * width).max(e.start_s);
                let hi = ((b + 1) as f64 * width).min(e.end_s);
                if hi > lo {
                    *slot += (hi - lo) / width;
                }
            }
        }
        for v in &mut trace {
            *v = v.min(1.0);
        }
        trace
    }

    /// Render one device's trace as a sparkline string (`" .:-=+*#%@"`).
    pub fn ascii_trace(&self, device: usize, buckets: usize) -> String {
        const RAMP: &[u8] = b" .:-=+*#%@";
        self.utilization_trace(device, buckets)
            .into_iter()
            .map(|u| {
                let idx = (u * (RAMP.len() - 1) as f64).round() as usize;
                RAMP[idx.min(RAMP.len() - 1)] as char
            })
            .collect()
    }

    /// Total compute-busy seconds of a device.
    pub fn compute_busy(&self, device: usize) -> f64 {
        self.entries
            .iter()
            .filter(|e| e.device == device && e.activity == Activity::Compute)
            .map(|e| e.end_s - e.start_s)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_reflects_busy_intervals() {
        let mut t = Timeline::new(1);
        t.push(0, Activity::Compute, 0.0, 5.0, "a");
        t.set_makespan(10.0);
        let trace = t.utilization_trace(0, 10);
        assert!(trace[..5].iter().all(|&u| (u - 1.0).abs() < 1e-9));
        assert!(trace[5..].iter().all(|&u| u == 0.0));
    }

    #[test]
    fn comm_does_not_count_as_compute() {
        let mut t = Timeline::new(1);
        t.push(0, Activity::Comm, 0.0, 10.0, "x");
        t.set_makespan(10.0);
        assert!(t.utilization_trace(0, 4).iter().all(|&u| u == 0.0));
        assert_eq!(t.compute_busy(0), 0.0);
    }

    #[test]
    fn partial_bucket_is_fractional() {
        let mut t = Timeline::new(1);
        t.push(0, Activity::Compute, 0.0, 2.5, "a");
        t.set_makespan(10.0);
        let trace = t.utilization_trace(0, 2); // buckets of 5 s
        assert!((trace[0] - 0.5).abs() < 1e-9);
        assert_eq!(trace[1], 0.0);
    }

    #[test]
    fn ascii_trace_has_requested_width() {
        let mut t = Timeline::new(2);
        t.push(1, Activity::Compute, 0.0, 1.0, "a");
        t.set_makespan(1.0);
        let s = t.ascii_trace(1, 16);
        assert_eq!(s.chars().count(), 16);
        assert!(s.contains('@'));
        let idle = t.ascii_trace(0, 16);
        assert!(idle.chars().all(|c| c == ' '));
    }

    #[test]
    fn empty_timeline_is_safe() {
        let t = Timeline::new(1);
        assert_eq!(t.utilization_trace(0, 4), vec![0.0; 4]);
        assert_eq!(t.makespan(), 0.0);
        assert_eq!(t.num_devices(), 1);
        assert!(t.entries().is_empty());
    }
}
