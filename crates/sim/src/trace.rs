//! Chrome-tracing export: load a simulated timeline into
//! `chrome://tracing` / Perfetto for interactive inspection.

use crate::timeline::{Activity, Timeline};

/// Serialize a timeline as a Chrome Trace Event JSON array: one complete
/// (`"ph": "X"`) event per recorded interval, devices as thread ids,
/// compute vs communication as categories. Timestamps are microseconds,
/// as the format requires.
///
/// # Example
///
/// ```
/// use amped_sim::{trace::to_chrome_trace, Activity, Timeline};
/// let mut t = Timeline::new(2);
/// t.push(0, Activity::Compute, 0.0, 1e-3, "fwd");
/// t.set_makespan(1e-3);
/// let json = to_chrome_trace(&t);
/// assert!(json.starts_with('['));
/// assert!(json.contains("\"name\":\"fwd\""));
/// ```
pub fn to_chrome_trace(timeline: &Timeline) -> String {
    let mut out = String::from("[");
    for (i, e) in timeline.entries().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let cat = match e.activity {
            Activity::Compute => "compute",
            Activity::Comm => "comm",
        };
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{:.3},\"dur\":{:.3},\"pid\":0,\"tid\":{}}}",
            e.label,
            cat,
            e.start_s * 1e6,
            (e.end_s - e.start_s) * 1e6,
            e.device
        ));
    }
    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Timeline {
        let mut t = Timeline::new(2);
        t.push(0, Activity::Compute, 0.0, 0.5, "fwd");
        t.push(1, Activity::Comm, 0.25, 0.75, "act>");
        t.set_makespan(0.75);
        t
    }

    #[test]
    fn emits_one_event_per_interval() {
        let json = to_chrome_trace(&sample());
        let v: serde_json::Value = serde_json::from_str(&json).expect("valid JSON");
        let events = v.as_array().expect("array");
        assert_eq!(events.len(), 2);
        assert_eq!(events[0]["ph"], "X");
        assert_eq!(events[0]["tid"], 0);
        assert_eq!(events[1]["cat"], "comm");
        // Microsecond timestamps.
        assert_eq!(events[1]["ts"].as_f64().unwrap(), 0.25e6);
        assert_eq!(events[1]["dur"].as_f64().unwrap(), 0.5e6);
    }

    #[test]
    fn empty_timeline_is_empty_array() {
        let json = to_chrome_trace(&Timeline::new(1));
        assert_eq!(json, "[]");
    }
}
