//! Chrome-tracing export: load simulated timelines and fault-replayed
//! runs into `chrome://tracing` / Perfetto for interactive inspection.
//!
//! The JSON writing itself lives in `amped-obs` ([`amped_obs::chrome_trace`]),
//! which escapes label strings properly — a label containing quotes or
//! backslashes cannot corrupt the output. This module maps simulator
//! structures onto [`TraceEvent`]s: pipeline stages become Perfetto
//! process groups (`pid`), devices become threads (`tid`), and
//! checkpoint/recompute activity gets its own categories so fault replay
//! is visually distinct from ordinary compute and communication.

use amped_obs::{chrome_trace, TraceEvent};

use crate::timeline::{Activity, Timeline};
use crate::training::{RunResult, RunSpan};

/// The Chrome-trace category string of an [`Activity`].
pub fn activity_category(activity: Activity) -> &'static str {
    match activity {
        Activity::Compute => "compute",
        Activity::Comm => "comm",
        Activity::Checkpoint => "ckpt",
        Activity::Recompute => "recompute",
    }
}

/// Lower a timeline to trace events: one complete (`"ph": "X"`) event per
/// recorded interval, `pid` = pipeline stage (`device % pipeline_stages`),
/// `tid` = device, timestamps in microseconds.
pub fn timeline_events(timeline: &Timeline, pipeline_stages: usize) -> Vec<TraceEvent> {
    let pp = pipeline_stages.max(1);
    timeline
        .entries()
        .iter()
        .map(|e| TraceEvent {
            name: e.label.to_string(),
            cat: activity_category(e.activity).to_string(),
            ts_us: e.start_s * 1e6,
            dur_us: (e.end_s - e.start_s) * 1e6,
            pid: (e.device % pp) as u64,
            tid: e.device as u64,
        })
        .collect()
}

/// Serialize a timeline as a Chrome Trace Event JSON array under a single
/// process group (devices as thread ids).
///
/// # Example
///
/// ```
/// use amped_sim::{trace::to_chrome_trace, Activity, Timeline};
/// let mut t = Timeline::new(2);
/// t.push(0, Activity::Compute, 0.0, 1e-3, "fwd");
/// t.set_makespan(1e-3);
/// let json = to_chrome_trace(&t);
/// assert!(json.starts_with('['));
/// assert!(json.contains("\"name\":\"fwd\""));
/// ```
pub fn to_chrome_trace(timeline: &Timeline) -> String {
    chrome_trace(&timeline_events(timeline, 1))
}

/// Serialize a timeline with pipeline stages as Perfetto process groups:
/// `pid` = stage, `tid` = device. The view fault replays want — each
/// stage's devices cluster together, checkpoint writes (`cat: "ckpt"`)
/// stand apart from compute.
pub fn to_chrome_trace_staged(timeline: &Timeline, pipeline_stages: usize) -> String {
    chrome_trace(&timeline_events(timeline, pipeline_stages))
}

/// Lower a fault-replayed run to coarse trace events: one slice per
/// [`RunEvent`](crate::training::RunEvent) per device (`pid` = pipeline
/// stage, `tid` = device). Training segments carry `cat: "compute"`,
/// checkpoint commits `"ckpt"` (emitted only on each stage's dp-rank-0
/// writer device), and failure windows — discarded progress plus restart
/// — `"recompute"`.
pub fn run_events(run: &RunResult, pipeline_stages: usize) -> Vec<TraceEvent> {
    let pp = pipeline_stages.max(1);
    let n_dev = run.iteration.device_stats.len().max(1);
    let mut events = Vec::new();
    for ev in &run.events {
        let (name, cat) = match ev.span {
            RunSpan::Train => ("train", "compute"),
            RunSpan::Checkpoint => ("ckpt", "ckpt"),
            RunSpan::Lost => ("lost", "recompute"),
            RunSpan::Restart => ("restart", "recompute"),
            RunSpan::Shrunk => ("shrunk", "compute"),
            RunSpan::Regrow => ("regrow", "recompute"),
        };
        for d in 0..n_dev {
            // Checkpoints drain through one DP rank per stage (devices
            // 0..pp are the dp-rank-0 writers in the device layout).
            if ev.span == RunSpan::Checkpoint && d >= pp {
                continue;
            }
            events.push(TraceEvent {
                name: name.to_string(),
                cat: cat.to_string(),
                ts_us: ev.start_s * 1e6,
                dur_us: (ev.end_s - ev.start_s) * 1e6,
                pid: (d % pp) as u64,
                tid: d as u64,
            });
        }
    }
    events
}

/// Serialize a fault-replayed run as Chrome Trace Event JSON
/// (see [`run_events`]).
pub fn run_to_chrome_trace(run: &RunResult, pipeline_stages: usize) -> String {
    chrome_trace(&run_events(run, pipeline_stages))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Timeline {
        let mut t = Timeline::new(2);
        t.push(0, Activity::Compute, 0.0, 0.5, "fwd");
        t.push(1, Activity::Comm, 0.25, 0.75, "act>");
        t.set_makespan(0.75);
        t
    }

    #[test]
    fn emits_one_event_per_interval() {
        let json = to_chrome_trace(&sample());
        let v: serde_json::Value = serde_json::from_str(&json).expect("valid JSON");
        let events = v.as_array().expect("array");
        assert_eq!(events.len(), 2);
        assert_eq!(events[0]["ph"], "X");
        assert_eq!(events[0]["tid"], 0);
        assert_eq!(events[1]["cat"], "comm");
        // Microsecond timestamps.
        assert_eq!(events[1]["ts"].as_f64().unwrap(), 0.25e6);
        assert_eq!(events[1]["dur"].as_f64().unwrap(), 0.5e6);
    }

    #[test]
    fn empty_timeline_is_empty_array() {
        let json = to_chrome_trace(&Timeline::new(1));
        assert_eq!(json, "[]");
    }

    #[test]
    fn labels_with_quotes_and_backslashes_stay_valid_json() {
        let mut t = Timeline::new(1);
        t.push(0, Activity::Compute, 0.0, 0.5, r#"say "hi" \ bye"#);
        t.set_makespan(0.5);
        let json = to_chrome_trace(&t);
        let v: serde_json::Value = serde_json::from_str(&json).expect("must escape labels");
        assert_eq!(v[0]["name"], r#"say "hi" \ bye"#);
    }

    #[test]
    fn staged_export_maps_stages_to_pids() {
        let mut t = Timeline::new(4);
        // Devices 0..4 on a 2-stage pipeline: stages are device % 2.
        t.push(3, Activity::Checkpoint, 0.0, 0.1, "ckpt");
        t.set_makespan(0.1);
        let json = to_chrome_trace_staged(&t, 2);
        let v: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(v[0]["pid"], 1);
        assert_eq!(v[0]["tid"], 3);
        assert_eq!(v[0]["cat"], "ckpt");
    }

    #[test]
    fn checkpoint_and_recompute_have_distinct_categories() {
        assert_eq!(activity_category(Activity::Compute), "compute");
        assert_eq!(activity_category(Activity::Comm), "comm");
        assert_eq!(activity_category(Activity::Checkpoint), "ckpt");
        assert_eq!(activity_category(Activity::Recompute), "recompute");
    }
}
