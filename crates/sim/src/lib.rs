//! # amped-sim — discrete-event simulator of distributed transformer training
//!
//! The AMPeD paper validates its analytical model against wall-clock
//! measurements on real GPU clusters (an HGX-2 with 16 V100s, and published
//! GPipe runs on P100s). This crate is the workspace's **substitution** for
//! those testbeds: a discrete-event simulator that *executes* the same
//! distributed-training schedules — microbatched pipelines (GPipe or 1F1B),
//! data-parallel gradient all-reduces lowered to per-step ring transfers,
//! stage-boundary activation sends — over devices and links configured with
//! the same Table-I/IV parameters.
//!
//! Where the analytical model *sums* component times, the simulator lets
//! overlap, contention and pipeline bubbles *emerge* from event ordering,
//! which is exactly what makes it a meaningful cross-check ("experimental"
//! series of Fig. 2a/2b) rather than a reimplementation of the same
//! equations.
//!
//! Fidelity boundary: devices are simulated per (data-parallel rank ×
//! pipeline stage); tensor-parallel and MoE sub-device behaviour is folded
//! into stage task durations analytically (the validation experiments the
//! paper runs on real hardware use DP and PP only).
//!
//! # Example
//!
//! ```
//! use amped_core::prelude::*;
//! use amped_sim::{PipelineSchedule, SimConfig};
//!
//! # fn main() -> Result<(), amped_core::Error> {
//! let model = TransformerModel::builder("minGPT")
//!     .layers(12).hidden_size(768).heads(12).seq_len(512).vocab_size(50257)
//!     .include_head(false)
//!     .build()?;
//! let v100 = AcceleratorSpec::builder("V100")
//!     .frequency_hz(1.53e9).cores(80).mac_units(8, 64, 16)
//!     .nonlin_units(80, 64, 32).memory(32e9, 0.9e12)
//!     .build()?;
//! let node = SystemSpec::new(1, 8, Link::new(5e-6, 2.4e12), Link::new(1e-5, 1e11), 8)?;
//! let mapping = Parallelism::builder().dp(8, 1).build()?;
//!
//! let result = SimConfig::new(&model, &v100, &node, &mapping)
//!     .with_schedule(PipelineSchedule::GPipe)
//!     .simulate_iteration(256)?;
//! assert!(result.iteration_time > 0.0);
//! assert!(result.device_stats.len() == 8);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod des;
pub mod fault;
pub mod graph;
pub mod timeline;
pub mod trace;
pub mod training;

pub use backend::SimBackend;
pub use des::{DeviceStats, SimOutcome, Simulator};
pub use fault::{
    DomainEvent, DomainEventStream, DomainTier, FaultPlan, FaultSchedule, LinkFault, SplitMix64,
    Straggler,
};
pub use graph::{LinkClass, Task, TaskGraph, TaskId, TaskKind};
pub use timeline::{Activity, Timeline, TimelineEntry};
pub use training::{PipelineSchedule, RunEvent, RunResult, RunSpan, SimConfig, SimResult};
