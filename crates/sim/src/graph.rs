//! Task graphs: the unit of work the simulator executes.
//!
//! A [`TaskGraph`] is a DAG of [`Task`]s. Compute tasks occupy a device's
//! compute unit for a duration; transfer tasks occupy the sender's port of
//! the named [`LinkClass`] for `latency + bytes/bandwidth`. Dependencies
//! are explicit edges; per-device execution order among ready tasks follows
//! the task priority (its creation index unless overridden), which is how
//! pipeline schedules like 1F1B are expressed.

use serde::{Deserialize, Serialize};

/// Identifier of a task within its graph (dense, `0..len`).
pub type TaskId = usize;

/// Which link a transfer crosses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LinkClass {
    /// Intra-node fabric (NVLink/NVSwitch/optical substrate).
    Intra,
    /// Inter-node network (per-accelerator NIC share).
    Inter,
}

/// What a task does.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TaskKind {
    /// Busy a device's compute unit for `duration_s`.
    Compute {
        /// Executing device.
        device: usize,
        /// Busy time in seconds.
        duration_s: f64,
    },
    /// Move `bytes` from `src` to `dst` over `link`.
    Transfer {
        /// Sending device (whose send port serializes the transfer).
        src: usize,
        /// Receiving device.
        dst: usize,
        /// Payload in bytes.
        bytes: f64,
        /// Link class crossed.
        link: LinkClass,
    },
}

/// A node of the task graph.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Task {
    /// What the task does.
    pub kind: TaskKind,
    /// Per-device ordering key: among *ready* tasks contending for the same
    /// resource, lower priority values start first.
    pub priority: u64,
    /// Human-readable label recorded into the timeline (e.g. `"fwd m3 s1"`).
    pub label: &'static str,
}

/// A DAG of compute and transfer tasks over a set of devices.
#[derive(Debug, Clone, Default)]
pub struct TaskGraph {
    tasks: Vec<Task>,
    preds: Vec<Vec<TaskId>>,
    succs: Vec<Vec<TaskId>>,
    num_devices: usize,
}

impl TaskGraph {
    /// An empty graph over `num_devices` devices.
    pub fn new(num_devices: usize) -> Self {
        TaskGraph {
            tasks: Vec::new(),
            preds: Vec::new(),
            succs: Vec::new(),
            num_devices,
        }
    }

    /// Number of devices the graph spans.
    pub fn num_devices(&self) -> usize {
        self.num_devices
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// Whether the graph has no tasks.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Add a task with dependencies `deps`; returns its id. Priority
    /// defaults to the creation index.
    ///
    /// # Panics
    ///
    /// Panics if a dependency id is out of range (forward references are
    /// impossible by construction) or a device index is out of range.
    pub fn add(&mut self, kind: TaskKind, label: &'static str, deps: &[TaskId]) -> TaskId {
        let id = self.tasks.len();
        for &d in deps {
            assert!(d < id, "dependency {d} of task {id} does not exist yet");
        }
        match kind {
            TaskKind::Compute { device, duration_s } => {
                assert!(device < self.num_devices, "device {device} out of range");
                assert!(
                    duration_s.is_finite() && duration_s >= 0.0,
                    "compute duration must be non-negative, got {duration_s}"
                );
            }
            TaskKind::Transfer { src, dst, bytes, .. } => {
                assert!(
                    src < self.num_devices && dst < self.num_devices,
                    "transfer endpoints out of range"
                );
                assert!(
                    bytes.is_finite() && bytes >= 0.0,
                    "transfer bytes must be non-negative"
                );
            }
        }
        self.tasks.push(Task {
            kind,
            priority: id as u64,
            label,
        });
        self.preds.push(deps.to_vec());
        self.succs.push(Vec::new());
        for &d in deps {
            self.succs[d].push(id);
        }
        id
    }

    /// Add a task with an explicit priority.
    pub fn add_with_priority(
        &mut self,
        kind: TaskKind,
        label: &'static str,
        deps: &[TaskId],
        priority: u64,
    ) -> TaskId {
        let id = self.add(kind, label, deps);
        self.tasks[id].priority = priority;
        id
    }

    /// The task with id `id`.
    pub fn task(&self, id: TaskId) -> &Task {
        &self.tasks[id]
    }

    /// All tasks.
    pub fn tasks(&self) -> &[Task] {
        &self.tasks
    }

    /// Predecessors of `id`.
    pub fn preds(&self, id: TaskId) -> &[TaskId] {
        &self.preds[id]
    }

    /// Successors of `id`.
    pub fn succs(&self, id: TaskId) -> &[TaskId] {
        &self.succs[id]
    }

    /// Total compute seconds per device (lower bound on its busy time).
    pub fn compute_load(&self) -> Vec<f64> {
        let mut load = vec![0.0; self.num_devices];
        for t in &self.tasks {
            if let TaskKind::Compute { device, duration_s } = t.kind {
                load[device] += duration_s;
            }
        }
        load
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_a_simple_chain() {
        let mut g = TaskGraph::new(2);
        let a = g.add(
            TaskKind::Compute {
                device: 0,
                duration_s: 1.0,
            },
            "a",
            &[],
        );
        let t = g.add(
            TaskKind::Transfer {
                src: 0,
                dst: 1,
                bytes: 1e6,
                link: LinkClass::Intra,
            },
            "t",
            &[a],
        );
        let b = g.add(
            TaskKind::Compute {
                device: 1,
                duration_s: 2.0,
            },
            "b",
            &[t],
        );
        assert_eq!(g.len(), 3);
        assert_eq!(g.preds(b), &[t]);
        assert_eq!(g.succs(a), &[t]);
        let load = g.compute_load();
        assert_eq!(load, vec![1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "does not exist yet")]
    fn forward_dependency_rejected() {
        let mut g = TaskGraph::new(1);
        g.add(
            TaskKind::Compute {
                device: 0,
                duration_s: 1.0,
            },
            "x",
            &[5],
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_device_rejected() {
        let mut g = TaskGraph::new(1);
        g.add(
            TaskKind::Compute {
                device: 3,
                duration_s: 1.0,
            },
            "x",
            &[],
        );
    }

    #[test]
    fn priority_defaults_to_creation_order() {
        let mut g = TaskGraph::new(1);
        let a = g.add(
            TaskKind::Compute {
                device: 0,
                duration_s: 1.0,
            },
            "a",
            &[],
        );
        let b = g.add_with_priority(
            TaskKind::Compute {
                device: 0,
                duration_s: 1.0,
            },
            "b",
            &[],
            0,
        );
        assert_eq!(g.task(a).priority, 0);
        assert_eq!(g.task(b).priority, 0);
        assert!(!g.is_empty());
    }
}
