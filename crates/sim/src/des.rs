//! The discrete-event executor.
//!
//! Resources are device compute units and per-link-class send ports. Each
//! resource runs one task at a time; among ready tasks queued on a resource
//! the one with the lowest priority value starts first. Time advances
//! through a finish-event heap — the standard event-driven simulation loop.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;

use amped_obs::Observer;

use crate::fault::FaultSchedule;
use crate::graph::{LinkClass, TaskGraph, TaskId, TaskKind};
use crate::timeline::{Activity, Timeline};

/// Link parameters the executor prices transfers with.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetworkParams {
    /// Intra-node latency in seconds.
    pub intra_latency_s: f64,
    /// Intra-node bandwidth in bits/s (per accelerator).
    pub intra_bw_bps: f64,
    /// Inter-node latency in seconds.
    pub inter_latency_s: f64,
    /// Inter-node bandwidth in bits/s (effective per accelerator).
    pub inter_bw_bps: f64,
}

impl NetworkParams {
    fn transfer_time(&self, bytes: f64, link: LinkClass) -> f64 {
        let (lat, bw) = match link {
            LinkClass::Intra => (self.intra_latency_s, self.intra_bw_bps),
            LinkClass::Inter => (self.inter_latency_s, self.inter_bw_bps),
        };
        lat + bytes * 8.0 / bw
    }
}

/// Per-device accounting after a run.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct DeviceStats {
    /// Seconds the compute unit was busy.
    pub compute_busy_s: f64,
    /// Seconds the device's send ports were busy.
    pub comm_busy_s: f64,
    /// Completion time of the device's last task.
    pub last_finish_s: f64,
}

impl DeviceStats {
    /// Compute utilization relative to the whole-run makespan.
    pub fn utilization(&self, makespan_s: f64) -> f64 {
        if makespan_s > 0.0 {
            self.compute_busy_s / makespan_s
        } else {
            0.0
        }
    }
}

/// The result of executing a task graph.
#[derive(Debug, Clone)]
pub struct SimOutcome {
    /// Total wall-clock time (the latest task completion).
    pub makespan_s: f64,
    /// Per-device accounting.
    pub device_stats: Vec<DeviceStats>,
    /// The full activity timeline.
    pub timeline: Timeline,
    /// Total bytes that crossed intra-node links.
    pub intra_bytes: f64,
    /// Total bytes that crossed inter-node links.
    pub inter_bytes: f64,
}

/// Executes [`TaskGraph`]s over a set of devices and links.
#[derive(Debug, Clone)]
pub struct Simulator {
    network: NetworkParams,
    record_timeline: bool,
    faults: Option<FaultSchedule>,
    observer: Option<Arc<Observer>>,
}

// Resource indices: device d owns compute resource 3d, intra send port
// 3d+1, inter send port 3d+2.
const RES_PER_DEVICE: usize = 3;

fn resource_of(kind: &TaskKind) -> usize {
    match *kind {
        TaskKind::Compute { device, .. } => RES_PER_DEVICE * device,
        TaskKind::Transfer {
            src,
            link: LinkClass::Intra,
            ..
        } => RES_PER_DEVICE * src + 1,
        TaskKind::Transfer {
            src,
            link: LinkClass::Inter,
            ..
        } => RES_PER_DEVICE * src + 2,
    }
}

/// Total order over event timestamps: finite f64 plus a tie-breaking
/// sequence number. Panics on NaN at construction.
#[derive(Debug, Clone, Copy, PartialEq)]
struct EventTime(f64);

impl EventTime {
    fn new(t: f64) -> Self {
        assert!(t.is_finite(), "event time must be finite, got {t}");
        EventTime(t)
    }
}

impl Eq for EventTime {}

impl PartialOrd for EventTime {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for EventTime {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.partial_cmp(&other.0).expect("finite by construction")
    }
}

impl Simulator {
    /// A simulator over the given link parameters.
    ///
    /// # Panics
    ///
    /// Panics if any bandwidth is non-positive or latency negative.
    pub fn new(network: NetworkParams) -> Self {
        assert!(
            network.intra_bw_bps > 0.0 && network.inter_bw_bps > 0.0,
            "bandwidths must be positive"
        );
        assert!(
            network.intra_latency_s >= 0.0 && network.inter_latency_s >= 0.0,
            "latencies must be non-negative"
        );
        Simulator {
            network,
            record_timeline: true,
            faults: None,
            observer: None,
        }
    }

    /// Disable timeline recording (saves memory on very large graphs).
    pub fn without_timeline(mut self) -> Self {
        self.record_timeline = false;
        self
    }

    /// Record engine internals — events processed, peak event-queue depth
    /// — into `observer` after every run. Purely additive bookkeeping: the
    /// simulated makespan and timeline are bit-identical with or without
    /// an observer attached.
    pub fn with_observer(mut self, observer: Arc<Observer>) -> Self {
        self.observer = Some(observer);
        self
    }

    /// Price tasks under a resolved fault schedule: straggler devices
    /// stretch their compute tasks, degraded links stretch transfers whose
    /// start time falls inside a fault window. Without this call the
    /// executor never consults fault state, keeping the no-fault path
    /// bit-identical to a simulator built before faults existed.
    pub fn with_fault_schedule(mut self, schedule: FaultSchedule) -> Self {
        self.faults = Some(schedule);
        self
    }

    /// Execute `graph` to completion and return the outcome.
    ///
    /// # Panics
    ///
    /// Panics if the graph contains a dependency cycle (impossible for
    /// graphs built through [`TaskGraph::add`], which forbids forward
    /// references).
    pub fn run(&self, graph: &TaskGraph) -> SimOutcome {
        let n_tasks = graph.len();
        let n_devices = graph.num_devices();
        let mut pending: Vec<usize> = (0..n_tasks).map(|t| graph.preds(t).len()).collect();

        // Per-resource ready queues ordered by (priority, task id).
        let mut queues: Vec<BinaryHeap<Reverse<(u64, TaskId)>>> =
            (0..n_devices * RES_PER_DEVICE).map(|_| BinaryHeap::new()).collect();
        let mut busy: Vec<bool> = vec![false; n_devices * RES_PER_DEVICE];

        // Finish events: (time, seq, resource, task).
        let mut events: BinaryHeap<Reverse<(EventTime, u64, usize, TaskId)>> = BinaryHeap::new();
        let mut seq: u64 = 0;

        let mut stats = vec![DeviceStats::default(); n_devices];
        let mut timeline = Timeline::new(n_devices);
        let (mut intra_bytes, mut inter_bytes) = (0.0f64, 0.0f64);
        for t in graph.tasks() {
            if let TaskKind::Transfer { bytes, link, .. } = t.kind {
                match link {
                    LinkClass::Intra => intra_bytes += bytes,
                    LinkClass::Inter => inter_bytes += bytes,
                }
            }
        }
        let mut completed = 0usize;
        let mut now = 0.0f64;

        let duration_of = |kind: &TaskKind, now: f64| -> f64 {
            let base = match *kind {
                TaskKind::Compute { duration_s, .. } => duration_s,
                TaskKind::Transfer { bytes, link, .. } => self.network.transfer_time(bytes, link),
            };
            match &self.faults {
                None => base,
                Some(f) => f.adjust(kind, base, now),
            }
        };

        // Seed roots.
        for t in 0..n_tasks {
            if pending[t] == 0 {
                queues[resource_of(&graph.task(t).kind)].push(Reverse((graph.task(t).priority, t)));
            }
        }

        // Dispatch everything startable at the current time.
        let dispatch =
            |now: f64,
             queues: &mut Vec<BinaryHeap<Reverse<(u64, TaskId)>>>,
             busy: &mut Vec<bool>,
             events: &mut BinaryHeap<Reverse<(EventTime, u64, usize, TaskId)>>,
             seq: &mut u64,
             stats: &mut Vec<DeviceStats>,
             timeline: &mut Timeline| {
                for res in 0..queues.len() {
                    while !busy[res] {
                        let Some(Reverse((_, task))) = queues[res].pop() else {
                            break;
                        };
                        let t = graph.task(task);
                        let dur = duration_of(&t.kind, now);
                        busy[res] = true;
                        *seq += 1;
                        events.push(Reverse((EventTime::new(now + dur), *seq, res, task)));
                        match t.kind {
                            TaskKind::Compute { device, .. } => {
                                stats[device].compute_busy_s += dur;
                                if self.record_timeline {
                                    // Checkpoint drains occupy the compute
                                    // unit but are storage writes, not
                                    // training math — give them their own
                                    // timeline/trace category.
                                    let activity = if t.label == "ckpt" {
                                        Activity::Checkpoint
                                    } else {
                                        Activity::Compute
                                    };
                                    timeline.push(device, activity, now, now + dur, t.label);
                                }
                            }
                            TaskKind::Transfer { src, .. } => {
                                stats[src].comm_busy_s += dur;
                                if self.record_timeline {
                                    timeline.push(src, Activity::Comm, now, now + dur, t.label);
                                }
                            }
                        }
                    }
                }
            };

        dispatch(
            now, &mut queues, &mut busy, &mut events, &mut seq, &mut stats, &mut timeline,
        );
        let mut max_queue_depth = events.len();

        while let Some(Reverse((time, _, res, task))) = events.pop() {
            now = time.0;
            busy[res] = false;
            completed += 1;
            let device = match graph.task(task).kind {
                TaskKind::Compute { device, .. } => device,
                TaskKind::Transfer { dst, .. } => dst,
            };
            stats[device].last_finish_s = stats[device].last_finish_s.max(now);
            if let TaskKind::Transfer { src, .. } = graph.task(task).kind {
                stats[src].last_finish_s = stats[src].last_finish_s.max(now);
            }
            for &succ in graph.succs(task) {
                pending[succ] -= 1;
                if pending[succ] == 0 {
                    let t = graph.task(succ);
                    queues[resource_of(&t.kind)].push(Reverse((t.priority, succ)));
                }
            }
            dispatch(
                now, &mut queues, &mut busy, &mut events, &mut seq, &mut stats, &mut timeline,
            );
            max_queue_depth = max_queue_depth.max(events.len());
        }

        assert_eq!(
            completed, n_tasks,
            "dependency cycle: {} of {} tasks completed",
            completed, n_tasks
        );

        if let Some(obs) = &self.observer {
            obs.add("sim.des.runs", 1);
            obs.add("sim.des.events_processed", completed as u64);
            obs.gauge_max("sim.des.max_queue_depth", max_queue_depth as f64);
        }

        timeline.set_makespan(now);
        SimOutcome {
            makespan_s: now,
            device_stats: stats,
            timeline,
            intra_bytes,
            inter_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::TaskGraph;

    fn net() -> NetworkParams {
        NetworkParams {
            intra_latency_s: 1e-6,
            intra_bw_bps: 1e9, // 1 Gbit/s: 1 MB takes 8 ms
            inter_latency_s: 1e-5,
            inter_bw_bps: 1e8,
        }
    }

    fn compute(device: usize, duration_s: f64) -> TaskKind {
        TaskKind::Compute { device, duration_s }
    }

    #[test]
    fn serial_chain_sums_durations() {
        let mut g = TaskGraph::new(1);
        let a = g.add(compute(0, 1.0), "a", &[]);
        let b = g.add(compute(0, 2.0), "b", &[a]);
        let _c = g.add(compute(0, 3.0), "c", &[b]);
        let out = Simulator::new(net()).run(&g);
        assert!((out.makespan_s - 6.0).abs() < 1e-12);
        assert!((out.device_stats[0].compute_busy_s - 6.0).abs() < 1e-12);
        assert!((out.device_stats[0].utilization(out.makespan_s) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn independent_tasks_on_two_devices_overlap() {
        let mut g = TaskGraph::new(2);
        g.add(compute(0, 5.0), "a", &[]);
        g.add(compute(1, 5.0), "b", &[]);
        let out = Simulator::new(net()).run(&g);
        assert!((out.makespan_s - 5.0).abs() < 1e-12);
    }

    #[test]
    fn same_device_serializes() {
        let mut g = TaskGraph::new(1);
        g.add(compute(0, 5.0), "a", &[]);
        g.add(compute(0, 5.0), "b", &[]);
        let out = Simulator::new(net()).run(&g);
        assert!((out.makespan_s - 10.0).abs() < 1e-12);
    }

    #[test]
    fn transfer_time_is_latency_plus_bytes_over_bw() {
        let mut g = TaskGraph::new(2);
        let a = g.add(compute(0, 1.0), "a", &[]);
        let t = g.add(
            TaskKind::Transfer {
                src: 0,
                dst: 1,
                bytes: 1e6,
                link: LinkClass::Intra,
            },
            "t",
            &[a],
        );
        g.add(compute(1, 1.0), "b", &[t]);
        let out = Simulator::new(net()).run(&g);
        let expect = 1.0 + (1e-6 + 8e6 / 1e9) + 1.0;
        assert!((out.makespan_s - expect).abs() < 1e-9, "{}", out.makespan_s);
    }

    #[test]
    fn transfer_overlaps_with_unrelated_compute() {
        // Device 0 computes while its send port pushes data out.
        let mut g = TaskGraph::new(2);
        g.add(compute(0, 1.0), "a", &[]);
        g.add(
            TaskKind::Transfer {
                src: 0,
                dst: 1,
                bytes: 1e8, // 0.8 s on intra
                link: LinkClass::Intra,
            },
            "t",
            &[],
        );
        let out = Simulator::new(net()).run(&g);
        assert!(out.makespan_s < 1.1, "compute and transfer must overlap");
    }

    #[test]
    fn priority_breaks_ties_on_a_resource() {
        let mut g = TaskGraph::new(1);
        let slow = g.add_with_priority(compute(0, 3.0), "low-prio", &[], 10);
        let fast = g.add_with_priority(compute(0, 1.0), "high-prio", &[], 1);
        let out = Simulator::new(net()).run(&g);
        // high-prio starts first: check via timeline ordering.
        let entries = out.timeline.entries();
        assert_eq!(entries[0].label, "high-prio");
        assert_eq!(entries[1].label, "low-prio");
        let _ = (slow, fast);
    }

    #[test]
    fn pipeline_bubble_emerges() {
        // 2-stage pipeline, 2 microbatches, unit compute, zero-cost links:
        // stage 1 idles one slot at the start => makespan 3 not 2.
        let mut g = TaskGraph::new(2);
        let f00 = g.add(compute(0, 1.0), "f00", &[]);
        let f01 = g.add(compute(1, 1.0), "f01", &[f00]);
        let f10 = g.add(compute(0, 1.0), "f10", &[]);
        let f11 = g.add(compute(1, 1.0), "f11", &[f10, f01]);
        let _ = f11;
        let out = Simulator::new(net()).run(&g);
        assert!((out.makespan_s - 3.0).abs() < 1e-9);
        let u1 = out.device_stats[1].utilization(out.makespan_s);
        assert!((u1 - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn inter_link_is_priced_differently() {
        let mut g = TaskGraph::new(2);
        g.add(
            TaskKind::Transfer {
                src: 0,
                dst: 1,
                bytes: 1e6,
                link: LinkClass::Inter,
            },
            "t",
            &[],
        );
        let out = Simulator::new(net()).run(&g);
        let expect = 1e-5 + 8e6 / 1e8;
        assert!((out.makespan_s - expect).abs() < 1e-9);
    }

    #[test]
    fn empty_graph_finishes_instantly() {
        let g = TaskGraph::new(4);
        let out = Simulator::new(net()).run(&g);
        assert_eq!(out.makespan_s, 0.0);
        assert_eq!(out.device_stats.len(), 4);
    }

    #[test]
    fn straggler_stretches_its_device_compute() {
        let mut g = TaskGraph::new(2);
        g.add(compute(0, 1.0), "a", &[]);
        g.add(compute(1, 1.0), "b", &[]);
        let sched = crate::fault::FaultSchedule {
            compute_slowdown: vec![1.0, 3.0],
            link_faults: Vec::new(),
        };
        let out = Simulator::new(net()).with_fault_schedule(sched).run(&g);
        assert!((out.makespan_s - 3.0).abs() < 1e-12);
        assert!((out.device_stats[0].compute_busy_s - 1.0).abs() < 1e-12);
        assert!((out.device_stats[1].compute_busy_s - 3.0).abs() < 1e-12);
    }

    #[test]
    fn link_fault_applies_only_inside_its_window() {
        use crate::fault::{FaultSchedule, LinkFault};
        // Two back-to-back 1 MB intra transfers (~8 ms each): a window
        // covering only the first stretches it 10x.
        let mut g = TaskGraph::new(2);
        let t1 = g.add(
            TaskKind::Transfer { src: 0, dst: 1, bytes: 1e6, link: LinkClass::Intra },
            "t1",
            &[],
        );
        g.add(
            TaskKind::Transfer { src: 0, dst: 1, bytes: 1e6, link: LinkClass::Intra },
            "t2",
            &[t1],
        );
        let base = 1e-6 + 8e6 / 1e9;
        let sched = FaultSchedule {
            compute_slowdown: vec![1.0, 1.0],
            link_faults: vec![LinkFault {
                device: 0,
                link: LinkClass::Intra,
                factor: 10.0,
                from_s: 0.0,
                until_s: base / 2.0, // open when t1 starts, closed before t2
            }],
        };
        let out = Simulator::new(net()).with_fault_schedule(sched).run(&g);
        assert!((out.makespan_s - 11.0 * base).abs() < 1e-9, "{}", out.makespan_s);
    }

    #[test]
    fn noop_fault_schedule_is_bit_identical_to_no_schedule() {
        let mut g = TaskGraph::new(2);
        let a = g.add(compute(0, 1.37), "a", &[]);
        let t = g.add(
            TaskKind::Transfer { src: 0, dst: 1, bytes: 3.3e6, link: LinkClass::Inter },
            "t",
            &[a],
        );
        g.add(compute(1, 0.91), "b", &[t]);
        let plain = Simulator::new(net()).run(&g);
        let sched = crate::fault::FaultSchedule {
            compute_slowdown: vec![1.0, 1.0],
            link_faults: Vec::new(),
        };
        let faulted = Simulator::new(net()).with_fault_schedule(sched).run(&g);
        assert_eq!(plain.makespan_s.to_bits(), faulted.makespan_s.to_bits());
    }

    #[test]
    fn observer_records_engine_internals_without_perturbing_results() {
        let mut g = TaskGraph::new(2);
        g.add(compute(0, 1.0), "a", &[]);
        g.add(compute(1, 2.0), "b", &[]);
        let plain = Simulator::new(net()).run(&g);
        let obs = Arc::new(Observer::new());
        let observed = Simulator::new(net())
            .with_observer(Arc::clone(&obs))
            .run(&g);
        assert_eq!(plain.makespan_s.to_bits(), observed.makespan_s.to_bits());
        let counters = obs.counters();
        assert_eq!(counters["sim.des.runs"], 1);
        assert_eq!(counters["sim.des.events_processed"], 2);
        assert!(obs.gauge("sim.des.max_queue_depth").get() >= 2.0);
    }

    #[test]
    fn ckpt_labeled_compute_gets_checkpoint_activity() {
        let mut g = TaskGraph::new(1);
        g.add(compute(0, 1.0), "ckpt", &[]);
        g.add(compute(0, 1.0), "fwd", &[]);
        let out = Simulator::new(net()).run(&g);
        let by_label = |l: &str| {
            out.timeline
                .entries()
                .iter()
                .find(|e| e.label == l)
                .unwrap()
                .activity
        };
        assert_eq!(by_label("ckpt"), Activity::Checkpoint);
        assert_eq!(by_label("fwd"), Activity::Compute);
    }

    #[test]
    #[should_panic(expected = "bandwidths must be positive")]
    fn zero_bandwidth_rejected() {
        Simulator::new(NetworkParams {
            intra_latency_s: 0.0,
            intra_bw_bps: 0.0,
            inter_latency_s: 0.0,
            inter_bw_bps: 1.0,
        });
    }
}
