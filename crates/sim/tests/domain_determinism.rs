//! Property tests over correlated fault materialization.
//!
//! The laws the domain-event stream promises, checked over random domain
//! trees, tier rates, and seeds:
//!
//! * same seed + same tree ⇒ bit-identical event schedule, no matter how
//!   the stream is pulled (straight collect, one-at-a-time, or through
//!   clones) — this is what makes `search --goodput` reproducible at any
//!   `--jobs` count;
//! * the merged stream is time-ordered and every event's blast radius
//!   stays inside the tree;
//! * a plan with no seed injects nothing at all.

use amped_core::FailureDomainTree;
use amped_sim::{DomainEvent, FaultPlan};
use proptest::prelude::*;

/// Random tree shapes and tier rates; the `mask` gates which of the three
/// tiers (rack outage / pod outage / preemption) are configured.
#[allow(clippy::type_complexity)]
fn domain_strategy(
) -> impl Strategy<Value = (usize, usize, usize, u64, f64, f64, f64, u8)> {
    (
        1usize..48,      // nodes
        1usize..9,       // nodes per rack
        1usize..5,       // racks per pod
        0u64..1_000_000, // master seed
        1e3f64..1e7,     // rack MTBF, seconds
        1e3f64..1e7,     // pod MTBF, seconds
        1e3f64..1e7,     // preemption MTBF, seconds
        0u8..8,          // tier mask
    )
}

#[allow(clippy::too_many_arguments)]
fn build(
    nodes: usize,
    npr: usize,
    rpp: usize,
    seed: Option<u64>,
    rack_mtbf: f64,
    pod_mtbf: f64,
    preempt_mtbf: f64,
    mask: u8,
) -> (FailureDomainTree, FaultPlan) {
    let mut tree = FailureDomainTree::new(nodes, npr.min(nodes), rpp).unwrap();
    if mask & 1 != 0 {
        tree = tree.with_rack_mtbf(rack_mtbf);
    }
    if mask & 2 != 0 {
        tree = tree.with_pod_mtbf(pod_mtbf);
    }
    let mut plan = match seed {
        Some(s) => FaultPlan::seeded(s),
        None => FaultPlan::none(),
    }
    .with_domain_tree(tree.clone());
    if mask & 4 != 0 {
        plan = plan.with_preemption(preempt_mtbf);
    }
    plan.validate().unwrap();
    (tree, plan)
}

proptest! {
    #[test]
    fn same_seed_and_tree_reproduce_the_schedule_in_any_pull_order(
        (nodes, npr, rpp, seed, rm, pm, em, mask) in domain_strategy(),
    ) {
        let (tree, plan) = build(nodes, npr, rpp, Some(seed), rm, pm, em, mask);
        let a: Vec<DomainEvent> = plan.domain_events().take(128).collect();
        let b: Vec<DomainEvent> = plan.domain_events().take(128).collect();
        prop_assert_eq!(&a, &b);

        // Time-ordered, and every blast radius stays inside the tree.
        let mut last = 0.0f64;
        for e in &a {
            prop_assert!(e.at_s >= last, "stream must be time-ordered");
            last = e.at_s;
            let (n0, n1) = e.node_span(&tree);
            prop_assert!(n0 < n1 && n1 <= nodes, "span [{}, {}) of {} nodes", n0, n1, nodes);
        }

        // Pulling one event at a time, probing a clone before each pull,
        // still yields the same schedule: enumeration order and stream
        // cloning never touch the per-tier generators.
        let mut stream = plan.domain_events();
        let mut interleaved: Vec<DomainEvent> = Vec::new();
        while interleaved.len() < a.len() {
            let mut probe = stream.clone();
            let _ = probe.next();
            match stream.next() {
                Some(e) => interleaved.push(e),
                None => break,
            }
        }
        prop_assert_eq!(a, interleaved);
    }

    #[test]
    fn unseeded_plans_inject_no_domain_events(
        (nodes, npr, rpp, _seed, rm, pm, em, mask) in domain_strategy(),
    ) {
        let (_, plan) = build(nodes, npr, rpp, None, rm, pm, em, mask | 7);
        prop_assert!(plan.domain_events().next().is_none());
    }
}
