//! Property tests over the discrete-event executor: physical invariants
//! that must hold for any task graph.

use amped_sim::des::NetworkParams;
use amped_sim::{LinkClass, Simulator, TaskGraph, TaskKind};
use proptest::prelude::*;

fn network() -> NetworkParams {
    NetworkParams {
        intra_latency_s: 1e-6,
        intra_bw_bps: 1e10,
        inter_latency_s: 1e-5,
        inter_bw_bps: 1e9,
    }
}

/// A random DAG: `n` compute tasks over `d` devices with edges only from
/// lower to higher indices (guaranteed acyclic), plus some transfers.
fn random_graph() -> impl Strategy<Value = TaskGraph> {
    (
        1usize..=4,                                    // devices
        prop::collection::vec((0usize..4, 1u64..=100), 1..=24), // (device, duration ticks)
        prop::collection::vec((0usize..24, 0usize..24), 0..=30), // candidate edges
    )
        .prop_map(|(devices, tasks, edges)| {
            let mut g = TaskGraph::new(devices);
            let ids: Vec<_> = tasks
                .iter()
                .enumerate()
                .map(|(i, (dev, ticks))| {
                    let deps: Vec<usize> = edges
                        .iter()
                        .filter(|(from, to)| *to == i && *from < i)
                        .map(|(from, _)| *from)
                        .collect();
                    g.add(
                        TaskKind::Compute {
                            device: dev % devices,
                            duration_s: *ticks as f64 * 1e-3,
                        },
                        "c",
                        &deps,
                    )
                })
                .collect();
            // A few transfers between consecutive tasks on distinct devices.
            for w in ids.windows(2) {
                if let (
                    TaskKind::Compute { device: a, .. },
                    TaskKind::Compute { device: b, .. },
                ) = (g.task(w[0]).kind, g.task(w[1]).kind)
                {
                    if a != b {
                        g.add(
                            TaskKind::Transfer {
                                src: a,
                                dst: b,
                                bytes: 1e6,
                                link: LinkClass::Intra,
                            },
                            "t",
                            &[w[0]],
                        );
                    }
                }
            }
            g
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn makespan_bounds_hold(graph in random_graph()) {
        let out = Simulator::new(network()).run(&graph);
        // Lower bound: the busiest device's total compute.
        let max_load = graph
            .compute_load()
            .into_iter()
            .fold(0.0f64, f64::max);
        prop_assert!(out.makespan_s >= max_load - 1e-12);
        // Upper bound: fully serialized execution of everything.
        let serial: f64 = graph
            .tasks()
            .iter()
            .map(|t| match t.kind {
                TaskKind::Compute { duration_s, .. } => duration_s,
                TaskKind::Transfer { bytes, .. } => 1e-6 + bytes * 8.0 / 1e10,
            })
            .sum();
        prop_assert!(out.makespan_s <= serial + 1e-9);
    }

    #[test]
    fn execution_is_deterministic(graph in random_graph()) {
        let sim = Simulator::new(network());
        let a = sim.run(&graph);
        let b = sim.run(&graph);
        prop_assert_eq!(a.makespan_s, b.makespan_s);
        prop_assert_eq!(a.device_stats.len(), b.device_stats.len());
        for (x, y) in a.device_stats.iter().zip(&b.device_stats) {
            prop_assert_eq!(x.compute_busy_s, y.compute_busy_s);
        }
    }

    #[test]
    fn stats_are_physical(graph in random_graph()) {
        let out = Simulator::new(network()).run(&graph);
        for d in &out.device_stats {
            prop_assert!(d.compute_busy_s >= 0.0);
            prop_assert!(d.compute_busy_s <= out.makespan_s + 1e-12);
            prop_assert!(d.utilization(out.makespan_s) <= 1.0 + 1e-9);
            prop_assert!(d.last_finish_s <= out.makespan_s + 1e-12);
        }
        // Timeline accounting matches device stats.
        for dev in 0..graph.num_devices() {
            let from_timeline = out.timeline.compute_busy(dev);
            prop_assert!((from_timeline - out.device_stats[dev].compute_busy_s).abs() < 1e-9);
        }
    }

    #[test]
    fn timeline_intervals_never_overlap_per_device(graph in random_graph()) {
        let out = Simulator::new(network()).run(&graph);
        for dev in 0..graph.num_devices() {
            let mut intervals: Vec<(f64, f64)> = out
                .timeline
                .entries()
                .iter()
                .filter(|e| e.device == dev && e.activity == amped_sim::Activity::Compute)
                .map(|e| (e.start_s, e.end_s))
                .collect();
            intervals.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
            for w in intervals.windows(2) {
                prop_assert!(
                    w[1].0 >= w[0].1 - 1e-12,
                    "compute intervals overlap on device {dev}: {w:?}"
                );
            }
        }
    }
}
