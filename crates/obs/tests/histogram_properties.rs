//! Property tests for the fixed-log-bucket histogram: quantile accuracy
//! against a brute-force sorted reference, and merge algebra (the
//! `Observer::absorb` aggregation path must be order-insensitive).

use amped_obs::{Histogram, Observer, SUBBUCKETS};
use proptest::prelude::*;

/// The histogram's error bound at value `x`: one bucket width. Buckets are
/// exact below `SUBBUCKETS` and at most `x / SUBBUCKETS` wide above it
/// (log-linear layout), so this bound is independent of the
/// implementation's private bucket tables.
fn one_bucket_width(x: u64) -> f64 {
    (x as f64 / SUBBUCKETS as f64).max(1.0)
}

/// The lower nearest-rank quantile on sorted data — the definition the
/// histogram documents.
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    let rank = (q * (sorted.len() - 1) as f64).floor() as usize;
    sorted[rank]
}

fn build(values: &[u64]) -> Histogram {
    let h = Histogram::new();
    for &v in values {
        h.record(v);
    }
    h
}

proptest! {
    #[test]
    fn quantiles_are_monotone_bounded_and_near_exact(
        values in prop::collection::vec(0u64..2_000_000, 1..200),
        qs in prop::collection::vec(0.0f64..=1.0, 1..20),
    ) {
        let h = build(&values);
        let mut sorted = values.clone();
        sorted.sort_unstable();
        let (min, max) = (sorted[0], *sorted.last().unwrap());

        // Monotone in q.
        let mut qs = qs;
        qs.sort_by(f64::total_cmp);
        let estimates: Vec<f64> = qs.iter().map(|&q| h.quantile(q).unwrap()).collect();
        for w in estimates.windows(2) {
            prop_assert!(w[0] <= w[1], "quantile not monotone: {} > {}", w[0], w[1]);
        }

        for (&q, &est) in qs.iter().zip(&estimates) {
            // Bounded by the observed extremes.
            prop_assert!(est >= min as f64 && est <= max as f64,
                "q={q}: {est} outside [{min}, {max}]");
            // Within one bucket width of the exact order statistic.
            let exact = exact_quantile(&sorted, q);
            prop_assert!((est - exact as f64).abs() <= one_bucket_width(exact),
                "q={q}: estimate {est} vs exact {exact}");
        }
    }

    #[test]
    fn count_sum_extremes_match_brute_force(
        values in prop::collection::vec(0u64..2_000_000, 1..200),
    ) {
        let h = build(&values);
        prop_assert_eq!(h.count(), values.len() as u64);
        prop_assert_eq!(h.sum(), values.iter().sum::<u64>());
        prop_assert_eq!(h.min(), values.iter().min().copied());
        prop_assert_eq!(h.max(), values.iter().max().copied());
    }

    #[test]
    fn merge_is_commutative(
        a in prop::collection::vec(0u64..2_000_000, 0..100),
        b in prop::collection::vec(0u64..2_000_000, 0..100),
    ) {
        let ab = build(&a);
        ab.merge(&build(&b));
        let ba = build(&b);
        ba.merge(&build(&a));
        prop_assert_eq!(ab.nonzero_buckets(), ba.nonzero_buckets());
        prop_assert_eq!(ab.summary(), ba.summary());
    }

    #[test]
    fn merge_is_associative(
        a in prop::collection::vec(0u64..2_000_000, 0..60),
        b in prop::collection::vec(0u64..2_000_000, 0..60),
        c in prop::collection::vec(0u64..2_000_000, 0..60),
    ) {
        // (a ∪ b) ∪ c
        let left = build(&a);
        left.merge(&build(&b));
        left.merge(&build(&c));
        // a ∪ (b ∪ c)
        let bc = build(&b);
        bc.merge(&build(&c));
        let right = build(&a);
        right.merge(&bc);
        prop_assert_eq!(left.nonzero_buckets(), right.nonzero_buckets());
        prop_assert_eq!(left.summary(), right.summary());
    }

    #[test]
    fn absorb_order_does_not_change_aggregated_histograms(
        a in prop::collection::vec(0u64..2_000_000, 0..60),
        b in prop::collection::vec(0u64..2_000_000, 0..60),
    ) {
        // Per-request observers folded into a process observer in either
        // order must agree — the serve aggregation path.
        let make = |values: &[u64], name: &str| {
            let o = Observer::new();
            for &v in values {
                o.observe(name, v);
            }
            o
        };
        let first = Observer::new();
        first.absorb(&make(&a, "serve.http.estimate.us"));
        first.absorb(&make(&b, "serve.http.estimate.us"));
        let second = Observer::new();
        second.absorb(&make(&b, "serve.http.estimate.us"));
        second.absorb(&make(&a, "serve.http.estimate.us"));
        prop_assert_eq!(first.histograms(), second.histograms());
        let total: u64 = first
            .histogram("serve.http.estimate.us")
            .nonzero_buckets()
            .iter()
            .map(|(_, n)| n)
            .sum();
        prop_assert_eq!(total, (a.len() + b.len()) as u64);
    }
}
