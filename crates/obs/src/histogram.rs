//! A lock-free, fixed-log-bucket latency [`Histogram`].
//!
//! # Bucket layout
//!
//! Values (non-negative integers, by convention microseconds) land in one
//! of [`NUM_BUCKETS`] fixed buckets: the first [`SUBBUCKETS`] buckets hold
//! exact small values, and every power-of-two octave above that is split
//! into [`SUBBUCKETS`] linear sub-buckets (the HdrHistogram log-linear
//! scheme, reduced to its atomic core). Reporting a bucket's midpoint
//! bounds the relative quantile error by `1 / (2 * SUBBUCKETS)` — 3.125%
//! with 16 sub-buckets, comfortably inside the ~4% budget — while keeping
//! the whole structure a flat array of `AtomicU64` counters: `record` is
//! two shifts, a mask, and four relaxed atomic ops, with no locks anywhere.
//!
//! Merging is bucket-wise addition, so per-request histograms can be
//! folded into a long-lived process histogram (`Observer::absorb`) without
//! losing any distributional information beyond the bucketing itself.

use std::sync::atomic::{AtomicU64, Ordering};

/// Linear sub-buckets per power-of-two octave (a power of two).
pub const SUBBUCKETS: usize = 16;
const LOG2_SUB: u32 = SUBBUCKETS.trailing_zeros();

/// Total bucket count; the layout covers the full `u64` range.
pub const NUM_BUCKETS: usize = (64 - LOG2_SUB as usize + 1) * SUBBUCKETS;

/// Bucket index for a recorded value.
fn bucket_index(v: u64) -> usize {
    if v < SUBBUCKETS as u64 {
        return v as usize;
    }
    let octave = 63 - v.leading_zeros(); // >= LOG2_SUB
    let sub = ((v >> (octave - LOG2_SUB)) & (SUBBUCKETS as u64 - 1)) as usize;
    (octave - LOG2_SUB + 1) as usize * SUBBUCKETS + sub
}

/// Smallest value that lands in bucket `i`.
fn bucket_lower(i: usize) -> u64 {
    if i < SUBBUCKETS {
        return i as u64;
    }
    let octave = (i / SUBBUCKETS) as u32 + LOG2_SUB - 1;
    let sub = (i % SUBBUCKETS) as u64;
    (1u64 << octave) + (sub << (octave - LOG2_SUB))
}

/// Width of bucket `i` in value units (1 for the exact region).
pub fn bucket_width(i: usize) -> u64 {
    if i < 2 * SUBBUCKETS {
        return 1;
    }
    let octave = (i / SUBBUCKETS) as u32 + LOG2_SUB - 1;
    1u64 << (octave - LOG2_SUB)
}

/// Largest value that lands in bucket `i` (inclusive).
fn bucket_upper(i: usize) -> u64 {
    bucket_lower(i).saturating_add(bucket_width(i) - 1)
}

/// Point estimate reported for values in bucket `i`: the midpoint.
fn bucket_mid(i: usize) -> f64 {
    bucket_lower(i) as f64 + (bucket_width(i) - 1) as f64 / 2.0
}

/// A lock-free histogram over fixed logarithmic buckets.
///
/// Every mutation is a relaxed atomic op on a flat `AtomicU64` array, so
/// handles can be shared across worker threads (`Arc<Histogram>`) and
/// recorded into from hot paths without contention. Quantile estimates are
/// within one bucket width of the exact order statistic and never outside
/// the observed `[min, max]`.
///
/// # Example
///
/// ```
/// use amped_obs::Histogram;
/// let h = Histogram::new();
/// for v in [1u64, 2, 3, 100] {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 4);
/// assert_eq!(h.sum(), 106);
/// assert_eq!(h.max(), Some(100));
/// assert!(h.quantile(0.0).unwrap() >= 1.0);
/// ```
#[derive(Debug)]
pub struct Histogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// A fresh, empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Record one value.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Smallest recorded value (`None` when empty).
    pub fn min(&self) -> Option<u64> {
        let v = self.min.load(Ordering::Relaxed);
        (v != u64::MAX || self.count() > 0).then_some(v)
    }

    /// Largest recorded value (`None` when empty).
    pub fn max(&self) -> Option<u64> {
        (self.count() > 0).then(|| self.max.load(Ordering::Relaxed))
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count() == 0
    }

    /// Estimate the `q`-quantile (`q` clamped into `[0, 1]`) using the
    /// lower nearest-rank definition: the estimate targets the value at
    /// sorted index `floor(q * (count - 1))`. Returns the midpoint of the
    /// bucket holding that rank, clamped to the observed `[min, max]`, so
    /// the result is monotone in `q`, never outside the observed range,
    /// and within one bucket width of the exact order statistic. `None`
    /// when empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        let count = self.count();
        if count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = (q * (count - 1) as f64).floor() as u64;
        let mut cumulative = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            cumulative += b.load(Ordering::Relaxed);
            if cumulative > rank {
                let mid = bucket_mid(i);
                let lo = self.min().unwrap_or(0) as f64;
                let hi = self.max().unwrap_or(u64::MAX) as f64;
                return Some(mid.clamp(lo, hi));
            }
        }
        // A concurrent `record` between the count load and the bucket walk
        // can leave the walk one short; fall back to the observed maximum.
        self.max().map(|m| m as f64)
    }

    /// Fold `other` into `self` bucket-wise: counts add, `min`/`max`
    /// extend. `other` is unchanged.
    pub fn merge(&self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter().zip(other.buckets.iter()) {
            let n = theirs.load(Ordering::Relaxed);
            if n > 0 {
                mine.fetch_add(n, Ordering::Relaxed);
            }
        }
        self.count
            .fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.sum
            .fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
        self.min
            .fetch_min(other.min.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max
            .fetch_max(other.max.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Non-empty buckets as `(inclusive upper bound, count)` pairs in
    /// ascending bound order — the raw material for Prometheus exposition
    /// (where `le` is an inclusive bound, matching ours exactly for
    /// integer samples).
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let n = b.load(Ordering::Relaxed);
                (n > 0).then(|| (bucket_upper(i), n))
            })
            .collect()
    }

    /// The frozen summary carried by run reports (`None` when empty).
    pub fn summary(&self) -> Option<HistogramSummary> {
        if self.is_empty() {
            return None;
        }
        Some(HistogramSummary {
            count: self.count(),
            sum: self.sum(),
            min: self.min().unwrap_or(0),
            max: self.max().unwrap_or(0),
            p50: self.quantile(0.50).unwrap_or(0.0),
            p90: self.quantile(0.90).unwrap_or(0.0),
            p99: self.quantile(0.99).unwrap_or(0.0),
            p999: self.quantile(0.999).unwrap_or(0.0),
        })
    }
}

/// A frozen snapshot of one histogram: totals plus the standard latency
/// quantiles, as serialized into [`crate::RunReport`] JSON.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSummary {
    /// Number of recorded values.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Smallest recorded value.
    pub min: u64,
    /// Largest recorded value.
    pub max: u64,
    /// Estimated median.
    pub p50: f64,
    /// Estimated 90th percentile.
    pub p90: f64,
    /// Estimated 99th percentile.
    pub p99: f64,
    /// Estimated 99.9th percentile.
    pub p999: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_is_continuous_and_self_inverse() {
        let mut prev_upper = None;
        for i in 0..NUM_BUCKETS {
            let lo = bucket_lower(i);
            if let Some(p) = prev_upper {
                assert_eq!(lo, p + 1, "gap before bucket {i}");
            }
            assert_eq!(bucket_index(lo), i, "lower bound maps back");
            let hi = bucket_upper(i);
            assert_eq!(bucket_index(hi), i, "upper bound maps back");
            if hi == u64::MAX {
                break;
            }
            prev_upper = Some(hi);
        }
        assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1);
    }

    #[test]
    fn relative_error_is_bounded() {
        for i in SUBBUCKETS..NUM_BUCKETS {
            let lo = bucket_lower(i);
            if lo == 0 || bucket_upper(i) == u64::MAX {
                continue;
            }
            let err = (bucket_width(i) as f64 / 2.0) / lo as f64;
            assert!(err <= 1.0 / (2.0 * SUBBUCKETS as f64) + 1e-12, "bucket {i}: {err}");
        }
    }

    #[test]
    fn exact_region_reports_exact_quantiles() {
        let h = Histogram::new();
        for v in 0..10u64 {
            h.record(v);
        }
        assert_eq!(h.quantile(0.0), Some(0.0));
        assert_eq!(h.quantile(0.5), Some(4.0));
        assert_eq!(h.quantile(1.0), Some(9.0));
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(9));
    }

    #[test]
    fn empty_histogram_has_no_quantiles() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.summary(), None);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
    }

    #[test]
    fn merge_adds_buckets_and_extends_extremes() {
        let a = Histogram::new();
        let b = Histogram::new();
        a.record(3);
        a.record(1000);
        b.record(7);
        b.record(2);
        a.merge(&b);
        assert_eq!(a.count(), 4);
        assert_eq!(a.sum(), 1012);
        assert_eq!(a.min(), Some(2));
        assert_eq!(a.max(), Some(1000));
        let total: u64 = a.nonzero_buckets().iter().map(|(_, n)| n).sum();
        assert_eq!(total, 4);
    }

    #[test]
    fn nonzero_buckets_are_sorted_and_balance() {
        let h = Histogram::new();
        for v in [1u64, 1, 17, 300, 1 << 40] {
            h.record(v);
        }
        let buckets = h.nonzero_buckets();
        assert!(buckets.windows(2).all(|w| w[0].0 < w[1].0));
        assert_eq!(buckets.iter().map(|(_, n)| n).sum::<u64>(), h.count());
    }
}
