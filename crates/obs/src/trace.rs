//! The generalized Chrome Trace Event writer.
//!
//! Both simulator timelines (`amped-sim`) and search-worker spans render
//! through this one writer, so a single `--trace-out` file opens in
//! `chrome://tracing` / Perfetto regardless of which subsystem produced
//! it. Unlike the original `amped-sim` writer this one escapes label
//! strings properly, so labels containing quotes or backslashes cannot
//! corrupt the JSON.

/// One complete (`"ph": "X"`) Chrome Trace Event.
///
/// Timestamps and durations are microseconds, as the format requires.
/// `pid`/`tid` select the Perfetto track: the simulator maps pipeline
/// stages to `pid` and devices to `tid`; the search maps worker threads
/// to `tid` under a single `pid`.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Event label shown on the slice.
    pub name: String,
    /// Category (`compute`, `comm`, `ckpt`, `recompute`, `phase`, …).
    pub cat: String,
    /// Start timestamp in microseconds.
    pub ts_us: f64,
    /// Duration in microseconds.
    pub dur_us: f64,
    /// Process id (top-level Perfetto grouping).
    pub pid: u64,
    /// Thread id (track within the process group).
    pub tid: u64,
}

/// Escape a string for embedding inside a JSON string literal.
///
/// Handles quotes, backslashes, and control characters; everything else
/// passes through verbatim (the output is UTF-8 JSON, no `\u` escaping of
/// non-ASCII is needed).
///
/// # Example
///
/// ```
/// assert_eq!(amped_obs::escape_json("a\"b\\c"), "a\\\"b\\\\c");
/// ```
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Format a float as a JSON number (non-finite values degrade to `0`,
/// which JSON cannot represent directly).
pub(crate) fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        String::from("0")
    }
}

/// Serialize events as a Chrome Trace Event JSON array.
///
/// # Example
///
/// ```
/// use amped_obs::{chrome_trace, TraceEvent};
/// let events = vec![TraceEvent {
///     name: "fwd".into(), cat: "compute".into(),
///     ts_us: 0.0, dur_us: 10.0, pid: 0, tid: 1,
/// }];
/// let json = chrome_trace(&events);
/// assert!(json.contains("\"ph\":\"X\""));
/// ```
pub fn chrome_trace(events: &[TraceEvent]) -> String {
    let mut out = String::from("[");
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":{},\"tid\":{}}}",
            escape_json(&e.name),
            escape_json(&e.cat),
            json_f64(e.ts_us),
            json_f64(e.dur_us),
            e.pid,
            e.tid
        ));
    }
    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(name: &str) -> TraceEvent {
        TraceEvent {
            name: name.into(),
            cat: "compute".into(),
            ts_us: 1.5,
            dur_us: 2.5,
            pid: 3,
            tid: 4,
        }
    }

    #[test]
    fn escapes_quotes_backslashes_and_controls() {
        assert_eq!(escape_json(r#"say "hi""#), r#"say \"hi\""#);
        assert_eq!(escape_json(r"a\b"), r"a\\b");
        assert_eq!(escape_json("x\ny\t"), "x\\ny\\t");
        assert_eq!(escape_json("\u{1}"), "\\u0001");
        assert_eq!(escape_json("plain"), "plain");
    }

    #[test]
    fn hostile_labels_still_produce_valid_json() {
        let json = chrome_trace(&[event("he said \"hi\" \\ bye")]);
        let v: serde_json::Value = serde_json::from_str(&json).expect("valid JSON");
        let arr = v.as_array().unwrap();
        assert_eq!(arr[0]["name"], "he said \"hi\" \\ bye");
        assert_eq!(arr[0]["pid"], 3);
        assert_eq!(arr[0]["tid"], 4);
    }

    #[test]
    fn empty_event_list_is_empty_array() {
        assert_eq!(chrome_trace(&[]), "[]");
    }

    #[test]
    fn non_finite_timestamps_degrade_to_zero() {
        let mut e = event("x");
        e.ts_us = f64::NAN;
        e.dur_us = f64::INFINITY;
        let json = chrome_trace(&[e]);
        let v: serde_json::Value = serde_json::from_str(&json).expect("valid JSON");
        assert_eq!(v[0]["ts"].as_f64().unwrap(), 0.0);
        assert_eq!(v[0]["dur"].as_f64().unwrap(), 0.0);
    }
}
