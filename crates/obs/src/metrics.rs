//! The [`Observer`]: a thread-safe registry of counters, gauges, spans,
//! and device-utilization samples for one run.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::ThreadId;
use std::time::Instant;

use crate::histogram::{Histogram, HistogramSummary};
use crate::report::RunReport;
use crate::trace::{chrome_trace, TraceEvent};

/// A monotone counter handle (an `Arc<AtomicU64>` under the hood).
///
/// Registration takes a registry lock once; after that every update is a
/// single relaxed atomic add, so hot loops can hold a handle and count
/// without contention.
#[derive(Debug, Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Add `n` to the counter.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Increment the counter by one.
    pub fn incr(&self) {
        self.add(1);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A floating-point gauge handle (f64 bits in an `AtomicU64`).
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Overwrite the gauge.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Raise the gauge to `v` if `v` is larger (lock-free max).
    pub fn max(&self, v: f64) {
        let mut cur = self.0.load(Ordering::Relaxed);
        while f64::from_bits(cur) < v {
            match self
                .0
                .compare_exchange_weak(cur, v.to_bits(), Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// The current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// A latency timer guard from [`Observer::timer`]: on drop it bumps
/// `{prefix}.count`, adds the elapsed microseconds to `{prefix}.us_total`,
/// raises the `{prefix}.us_max` gauge, and records the sample into the
/// `{prefix}.us` histogram so latency is a full distribution, not just a
/// count/total/max triple. The legacy series keep their names; the
/// histogram's `count`/`sum` agree with them exactly (tested).
#[derive(Debug)]
pub struct Timer {
    pub(crate) count: Counter,
    pub(crate) us_total: Counter,
    pub(crate) us_max: Gauge,
    pub(crate) latency: Arc<Histogram>,
    pub(crate) start: Instant,
}

impl Drop for Timer {
    fn drop(&mut self) {
        let us = self.start.elapsed().as_micros() as u64;
        self.count.incr();
        self.us_total.add(us);
        self.us_max.max(us as f64);
        self.latency.record(us);
    }
}

/// One device's share of busy time in a simulated timeline, as sampled
/// into the run report's `devices` section.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceUtil {
    /// Global device index.
    pub device: usize,
    /// Pipeline stage hosting the device.
    pub stage: usize,
    /// Busy seconds / makespan, in `[0, 1]`.
    pub busy_fraction: f64,
}

/// A completed span as recorded by an [`Observer`].
#[derive(Debug, Clone)]
struct SpanRecord {
    name: &'static str,
    cat: &'static str,
    track: u64,
    start_us: f64,
    dur_us: f64,
}

/// An in-flight span; records itself into the observer on drop.
///
/// Spans nest naturally: Perfetto stacks `"ph": "X"` events on the same
/// track by time containment, so a guard opened inside another guard's
/// lifetime renders as its child.
#[derive(Debug)]
pub struct Span<'a> {
    obs: &'a Observer,
    name: &'static str,
    cat: &'static str,
    start: Instant,
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        self.obs.record_span(self.name, self.cat, self.start);
    }
}

/// The per-run observability sink: counters, gauges, spans, and device
/// utilization, all safe to share across worker threads (`Arc<Observer>`).
///
/// Everything here is passive bookkeeping — attaching an observer must
/// never change what the instrumented code computes.
#[derive(Debug)]
pub struct Observer {
    epoch: Instant,
    counters: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    gauges: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
    spans: Mutex<Vec<SpanRecord>>,
    tracks: Mutex<HashMap<ThreadId, u64>>,
    devices: Mutex<Vec<DeviceUtil>>,
}

impl Default for Observer {
    fn default() -> Self {
        Observer::new()
    }
}

impl Observer {
    /// A fresh observer; its epoch (trace time zero) is now.
    pub fn new() -> Self {
        Observer {
            epoch: Instant::now(),
            counters: Mutex::new(BTreeMap::new()),
            gauges: Mutex::new(BTreeMap::new()),
            histograms: Mutex::new(BTreeMap::new()),
            spans: Mutex::new(Vec::new()),
            tracks: Mutex::new(HashMap::new()),
            devices: Mutex::new(Vec::new()),
        }
    }

    /// The counter registered under `name` (created at zero on first use).
    pub fn counter(&self, name: &str) -> Counter {
        let mut map = self.counters.lock().expect("counter registry poisoned");
        let cell = map
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(AtomicU64::new(0)));
        Counter(Arc::clone(cell))
    }

    /// Add `n` to the counter `name` (registering it if needed).
    pub fn add(&self, name: &str, n: u64) {
        self.counter(name).add(n);
    }

    /// The gauge registered under `name` (created at zero on first use).
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut map = self.gauges.lock().expect("gauge registry poisoned");
        let cell = map
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(AtomicU64::new(0)));
        Gauge(Arc::clone(cell))
    }

    /// Overwrite the gauge `name` with `v`.
    pub fn gauge_set(&self, name: &str, v: f64) {
        self.gauge(name).set(v);
    }

    /// Raise the gauge `name` to `v` if `v` is larger.
    pub fn gauge_max(&self, name: &str, v: f64) {
        self.gauge(name).max(v);
    }

    /// The histogram registered under `name` (created empty on first use).
    /// Like counters, registration takes the registry lock once; every
    /// `record` through the returned handle is lock-free.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = self.histograms.lock().expect("histogram registry poisoned");
        let cell = map
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(Histogram::new()));
        Arc::clone(cell)
    }

    /// Record one value into the histogram `name`.
    pub fn observe(&self, name: &str, v: u64) {
        self.histogram(name).record(v);
    }

    /// Summaries of every non-empty histogram, sorted by name.
    pub fn histograms(&self) -> BTreeMap<String, HistogramSummary> {
        self.histograms
            .lock()
            .expect("histogram registry poisoned")
            .iter()
            .filter_map(|(k, h)| h.summary().map(|s| (k.clone(), s)))
            .collect()
    }

    /// Handles to every registered histogram, sorted by name (the raw
    /// bucket view behind Prometheus exposition).
    pub fn histogram_handles(&self) -> Vec<(String, Arc<Histogram>)> {
        self.histograms
            .lock()
            .expect("histogram registry poisoned")
            .iter()
            .map(|(k, h)| (k.clone(), Arc::clone(h)))
            .collect()
    }

    /// Open a work span (category `"task"`); it records on drop.
    pub fn span(&self, name: &'static str) -> Span<'_> {
        self.span_with_cat(name, "task")
    }

    /// Open a top-level phase span (category `"phase"`); phase durations
    /// are aggregated by name into the run report.
    pub fn phase(&self, name: &'static str) -> Span<'_> {
        self.span_with_cat(name, "phase")
    }

    /// Open a span with an explicit category.
    pub fn span_with_cat(&self, name: &'static str, cat: &'static str) -> Span<'_> {
        Span {
            obs: self,
            name,
            cat,
            start: Instant::now(),
        }
    }

    /// Replace the recorded per-device utilization samples.
    pub fn set_device_utilization(&self, devices: Vec<DeviceUtil>) {
        *self.devices.lock().expect("device registry poisoned") = devices;
    }

    /// Open a latency timer that records under `prefix` when dropped:
    /// `{prefix}.count` and `{prefix}.us_total` counters plus a
    /// `{prefix}.us_max` gauge. Unlike [`Observer::span`] this keeps no
    /// per-event record, so it is safe on hot paths of long-lived
    /// processes where an unbounded span log would be a leak.
    pub fn timer(&self, prefix: &str) -> Timer {
        Timer {
            count: self.counter(&format!("{prefix}.count")),
            us_total: self.counter(&format!("{prefix}.us_total")),
            us_max: self.gauge(&format!("{prefix}.us_max")),
            latency: self.histogram(&format!("{prefix}.us")),
            start: Instant::now(),
        }
    }

    /// Fold another observer's counters, gauges, and histograms into this
    /// one: counters add, gauges keep the maximum, histogram buckets add.
    /// Spans, thread tracks and device samples are *not* transferred —
    /// this is the aggregation path for short-lived per-request observers
    /// feeding a long-lived process observer, where retaining every span
    /// would grow without bound.
    pub fn absorb(&self, other: &Observer) {
        for (name, value) in other.counters() {
            if value > 0 {
                self.add(&name, value);
            }
        }
        for (name, value) in other.gauges() {
            self.gauge_max(&name, value);
        }
        for (name, theirs) in other.histogram_handles() {
            if !theirs.is_empty() {
                self.histogram(&name).merge(&theirs);
            }
        }
    }

    /// Snapshot of every counter.
    pub fn counters(&self) -> BTreeMap<String, u64> {
        self.counters
            .lock()
            .expect("counter registry poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
            .collect()
    }

    /// Snapshot of every gauge.
    pub fn gauges(&self) -> BTreeMap<String, f64> {
        self.gauges
            .lock()
            .expect("gauge registry poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), f64::from_bits(v.load(Ordering::Relaxed))))
            .collect()
    }

    /// Build the serializable run report for this observer.
    pub fn report(&self, command: &str) -> RunReport {
        let spans = self.spans.lock().expect("span registry poisoned");
        // Aggregate phase spans by name, ordered by first start time.
        let mut agg: Vec<(String, f64, f64)> = Vec::new();
        for s in spans.iter().filter(|s| s.cat == "phase") {
            match agg.iter_mut().find(|(n, _, _)| n == s.name) {
                Some((_, secs, first)) => {
                    *secs += s.dur_us / 1e6;
                    if s.start_us < *first {
                        *first = s.start_us;
                    }
                }
                None => agg.push((s.name.to_string(), s.dur_us / 1e6, s.start_us)),
            }
        }
        agg.sort_by(|a, b| a.2.total_cmp(&b.2));
        RunReport {
            command: command.to_string(),
            phases: agg.into_iter().map(|(n, s, _)| (n, s)).collect(),
            counters: self.counters(),
            gauges: self.gauges(),
            histograms: self.histograms(),
            devices: self.devices.lock().expect("device registry poisoned").clone(),
        }
    }

    /// The recorded spans as [`TraceEvent`]s (one track per thread).
    pub fn trace_events(&self) -> Vec<TraceEvent> {
        self.spans
            .lock()
            .expect("span registry poisoned")
            .iter()
            .map(|s| TraceEvent {
                name: s.name.to_string(),
                cat: s.cat.to_string(),
                ts_us: s.start_us,
                dur_us: s.dur_us,
                pid: 0,
                tid: s.track,
            })
            .collect()
    }

    /// The recorded spans as a Chrome Trace Event JSON array.
    pub fn chrome_trace(&self) -> String {
        chrome_trace(&self.trace_events())
    }

    fn record_span(&self, name: &'static str, cat: &'static str, start: Instant) {
        let end = Instant::now();
        let start_us = start.saturating_duration_since(self.epoch).as_secs_f64() * 1e6;
        let dur_us = end.saturating_duration_since(start).as_secs_f64() * 1e6;
        let track = self.track_id();
        self.spans
            .lock()
            .expect("span registry poisoned")
            .push(SpanRecord {
                name,
                cat,
                track,
                start_us,
                dur_us,
            });
    }

    /// A small stable integer for the current thread (assigned on first
    /// use, in first-span order).
    fn track_id(&self) -> u64 {
        let mut map = self.tracks.lock().expect("track registry poisoned");
        let next = map.len() as u64;
        *map.entry(std::thread::current().id()).or_insert(next)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_across_handles_and_threads() {
        let obs = Arc::new(Observer::new());
        let c = obs.counter("n");
        c.add(2);
        let obs2 = Arc::clone(&obs);
        std::thread::spawn(move || obs2.add("n", 5))
            .join()
            .unwrap();
        assert_eq!(obs.counter("n").get(), 7);
        assert_eq!(obs.counters()["n"], 7);
    }

    #[test]
    fn gauge_max_is_monotone() {
        let obs = Observer::new();
        obs.gauge_max("depth", 3.0);
        obs.gauge_max("depth", 1.0);
        assert_eq!(obs.gauge("depth").get(), 3.0);
        obs.gauge_set("depth", 0.5);
        assert_eq!(obs.gauge("depth").get(), 0.5);
    }

    #[test]
    fn spans_record_on_drop_with_thread_tracks() {
        let obs = Arc::new(Observer::new());
        {
            let _outer = obs.phase("search");
            let _inner = obs.span("evaluate");
        }
        let obs2 = Arc::clone(&obs);
        std::thread::spawn(move || {
            let _s = obs2.span("worker");
        })
        .join()
        .unwrap();
        let events = obs.trace_events();
        assert_eq!(events.len(), 3);
        let worker = events.iter().find(|e| e.name == "worker").unwrap();
        let main = events.iter().find(|e| e.name == "evaluate").unwrap();
        assert_ne!(worker.tid, main.tid, "each thread gets its own track");
        assert!(events.iter().all(|e| e.dur_us >= 0.0));
    }

    #[test]
    fn report_aggregates_phases_by_name_in_start_order() {
        let obs = Observer::new();
        {
            let _a = obs.phase("enumerate");
        }
        {
            let _b = obs.phase("explore");
        }
        {
            let _a2 = obs.phase("enumerate");
        }
        let report = obs.report("search");
        let names: Vec<&str> = report.phases.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["enumerate", "explore"]);
        assert!(report.phases.iter().all(|(_, s)| *s >= 0.0));
    }

    #[test]
    fn device_utilization_replaces_previous_samples() {
        let obs = Observer::new();
        obs.set_device_utilization(vec![DeviceUtil {
            device: 0,
            stage: 0,
            busy_fraction: 0.5,
        }]);
        obs.set_device_utilization(vec![
            DeviceUtil {
                device: 0,
                stage: 0,
                busy_fraction: 0.75,
            },
            DeviceUtil {
                device: 1,
                stage: 1,
                busy_fraction: 0.25,
            },
        ]);
        let report = obs.report("simulate");
        assert_eq!(report.devices.len(), 2);
        assert_eq!(report.devices[0].busy_fraction, 0.75);
    }

    #[test]
    fn timer_records_count_total_and_max() {
        let obs = Observer::new();
        for _ in 0..3 {
            drop(obs.timer("serve.http.estimate"));
        }
        let counters = obs.counters();
        assert_eq!(counters["serve.http.estimate.count"], 3);
        let total = counters["serve.http.estimate.us_total"];
        let max = obs.gauges()["serve.http.estimate.us_max"];
        assert!(max <= total as f64, "max {max} > total {total}");
    }

    #[test]
    fn timer_histogram_agrees_with_legacy_series() {
        // Regression for the Timer distribution fix: the new `{p}.us`
        // histogram must agree exactly with the legacy `{p}.count` and
        // `{p}.us_total` series — same drops, same microseconds.
        let obs = Observer::new();
        for _ in 0..5 {
            let t = obs.timer("serve.http.estimate");
            std::thread::sleep(std::time::Duration::from_micros(50));
            drop(t);
        }
        let counters = obs.counters();
        let h = obs.histogram("serve.http.estimate.us");
        assert_eq!(h.count(), counters["serve.http.estimate.count"]);
        assert_eq!(h.sum(), counters["serve.http.estimate.us_total"]);
        assert_eq!(
            h.max().unwrap() as f64,
            obs.gauges()["serve.http.estimate.us_max"]
        );
        let summary = &obs.histograms()["serve.http.estimate.us"];
        assert_eq!(summary.count, 5);
        assert!(summary.p50 <= summary.p99 && summary.p99 <= summary.max as f64);
    }

    #[test]
    fn absorb_merges_histogram_buckets() {
        let process = Observer::new();
        process.observe("latency.us", 10);

        let request = Observer::new();
        request.observe("latency.us", 20);
        request.observe("latency.us", 30);
        request.observe("other.us", 7);

        process.absorb(&request);
        let merged = process.histogram("latency.us");
        assert_eq!(merged.count(), 3);
        assert_eq!(merged.sum(), 60);
        assert_eq!(merged.min(), Some(10));
        assert_eq!(merged.max(), Some(30));
        assert_eq!(process.histogram("other.us").count(), 1);
        // The donor observer is untouched.
        assert_eq!(request.histogram("latency.us").count(), 2);
    }

    #[test]
    fn absorb_adds_counters_and_maxes_gauges() {
        let process = Observer::new();
        process.add("requests", 2);
        process.gauge_max("depth", 3.0);

        let request = Observer::new();
        request.add("requests", 5);
        request.add("cache.hits", 7);
        request.gauge_max("depth", 1.0);
        request.gauge_max("latency", 9.0);

        process.absorb(&request);
        let counters = process.counters();
        assert_eq!(counters["requests"], 7);
        assert_eq!(counters["cache.hits"], 7);
        let gauges = process.gauges();
        assert_eq!(gauges["depth"], 3.0);
        assert_eq!(gauges["latency"], 9.0);
    }
}
