//! Observability substrate for the AMPeD workspace: hierarchical spans,
//! a thread-safe counter/gauge registry, JSON run reports, and a
//! generalized Chrome-trace writer.
//!
//! AMPeD's whole point is explaining where training time goes; this crate
//! gives the tooling itself the same treatment. The parallel design-space
//! search, the cost backends, and the discrete-event simulator all accept
//! an optional [`Observer`] and record what they did: how many candidates
//! were generated / pruned / memory-rejected, how the estimate caches hit,
//! how many events the DES processed and how deep its queue got, and how
//! long each phase took on the wall clock.
//!
//! # Contract: observability never perturbs results
//!
//! Instrumentation is strictly *passive*. Counters and gauges are atomics
//! or mutex-guarded maps written on the side; spans only read the clock.
//! No estimate, ranking, or simulated makespan may depend on whether an
//! observer is attached — the search's bit-identical-at-any-`--jobs`
//! guarantee holds with instrumentation on or off (and is tested). When no
//! observer is attached the cost is a single `Option` check per site:
//! zero-overhead when disabled.
//!
//! # Outputs
//!
//! * [`Observer::report`] → [`RunReport`] → [`RunReport::to_json`]: the
//!   machine-readable metrics file behind the CLI's `--metrics-out`.
//! * [`Observer::chrome_trace`]: the recorded spans as a Chrome Trace
//!   Event JSON array (one track per worker thread), the search half of
//!   the CLI's unified `--trace-out`. Simulator timelines use the same
//!   [`chrome_trace`] writer via `amped-sim`.
//! * [`prometheus_exposition`]: every counter, gauge, and [`Histogram`]
//!   in Prometheus text format, behind `GET /v1/metrics?format=prometheus`
//!   in `amped-serve`. Latency distributions come from the lock-free
//!   fixed-log-bucket [`Histogram`] (`Observer::histogram`), which every
//!   [`Observer::timer`] feeds alongside its legacy count/total/max
//!   series.
//!
//! # Example
//!
//! ```
//! use amped_obs::Observer;
//! use std::sync::Arc;
//!
//! let obs = Arc::new(Observer::new());
//! {
//!     let _phase = obs.phase("demo");
//!     obs.add("demo.widgets", 3);
//!     obs.gauge_max("demo.depth", 7.0);
//! }
//! let report = obs.report("demo");
//! assert_eq!(report.counters["demo.widgets"], 3);
//! assert!(report.to_json().contains("\"demo.depth\""));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod histogram;
mod metrics;
mod prom;
mod report;
mod trace;

pub use histogram::{Histogram, HistogramSummary, NUM_BUCKETS, SUBBUCKETS};
pub use metrics::{Counter, DeviceUtil, Gauge, Observer, Span, Timer};
pub use prom::prometheus_exposition;
pub use report::RunReport;
pub use trace::{chrome_trace, escape_json, TraceEvent};
