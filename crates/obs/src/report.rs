//! The serializable run report behind the CLI's `--metrics-out`.

use std::collections::BTreeMap;

use crate::histogram::HistogramSummary;
use crate::metrics::DeviceUtil;
use crate::trace::{escape_json, json_f64};

/// A machine-readable summary of one instrumented run: per-phase wall
/// times, every counter and gauge, and per-device utilization when a
/// simulation ran.
///
/// Serialized by [`RunReport::to_json`] as plain JSON (hand-rolled so the
/// observability crate stays dependency-free; the CI smoke test parses it
/// back with the workspace `serde_json` shim to keep the writer honest).
#[derive(Debug, Clone)]
pub struct RunReport {
    /// The CLI subcommand (or caller-chosen label) that produced the run.
    pub command: String,
    /// `(phase name, wall seconds)` aggregated by name, in first-start order.
    pub phases: Vec<(String, f64)>,
    /// Every registered counter, sorted by name.
    pub counters: BTreeMap<String, u64>,
    /// Every registered gauge, sorted by name.
    pub gauges: BTreeMap<String, f64>,
    /// Summary of every non-empty latency histogram, sorted by name.
    pub histograms: BTreeMap<String, HistogramSummary>,
    /// Per-device busy fractions from the most recent simulated timeline
    /// (empty for purely analytical runs).
    pub devices: Vec<DeviceUtil>,
}

impl RunReport {
    /// Serialize as pretty-printed JSON.
    ///
    /// # Example
    ///
    /// ```
    /// use amped_obs::Observer;
    /// let obs = Observer::new();
    /// obs.add("search.candidates.generated", 10);
    /// let json = obs.report("search").to_json();
    /// assert!(json.contains("\"search.candidates.generated\": 10"));
    /// ```
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!(
            "  \"command\": \"{}\",\n",
            escape_json(&self.command)
        ));

        out.push_str("  \"phases\": [");
        for (i, (name, secs)) in self.phases.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"name\": \"{}\", \"seconds\": {}}}",
                escape_json(name),
                json_f64(*secs)
            ));
        }
        if !self.phases.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("],\n");

        out.push_str("  \"counters\": {");
        for (i, (name, value)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    \"{}\": {}", escape_json(name), value));
        }
        if !self.counters.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("},\n");

        out.push_str("  \"gauges\": {");
        for (i, (name, value)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    \"{}\": {}",
                escape_json(name),
                json_f64(*value)
            ));
        }
        if !self.gauges.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("},\n");

        out.push_str("  \"histograms\": {");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    \"{}\": {{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \
                 \"p50\": {}, \"p90\": {}, \"p99\": {}, \"p999\": {}}}",
                escape_json(name),
                h.count,
                h.sum,
                h.min,
                h.max,
                json_f64(h.p50),
                json_f64(h.p90),
                json_f64(h.p99),
                json_f64(h.p999)
            ));
        }
        if !self.histograms.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("},\n");

        out.push_str("  \"devices\": [");
        for (i, d) in self.devices.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"device\": {}, \"stage\": {}, \"busy_fraction\": {}}}",
                d.device,
                d.stage,
                json_f64(d.busy_fraction)
            ));
        }
        if !self.devices.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }

    /// A short human-readable summary (the CLI's `-v` output): phase
    /// timings and every counter, one per line.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        for (name, secs) in &self.phases {
            out.push_str(&format!("phase {name}: {:.3} ms\n", secs * 1e3));
        }
        for (name, value) in &self.counters {
            out.push_str(&format!("{name}: {value}\n"));
        }
        for (name, value) in &self.gauges {
            out.push_str(&format!("{name}: {value:.3}\n"));
        }
        for (name, h) in &self.histograms {
            out.push_str(&format!(
                "{name}: p50={:.0} p90={:.0} p99={:.0} p999={:.0} max={} (n={})\n",
                h.p50, h.p90, h.p99, h.p999, h.max, h.count
            ));
        }
        if !self.devices.is_empty() {
            let mean = self.devices.iter().map(|d| d.busy_fraction).sum::<f64>()
                / self.devices.len() as f64;
            out.push_str(&format!(
                "devices: {} (mean busy {:.1}%)\n",
                self.devices.len(),
                mean * 100.0
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Observer;

    fn sample() -> RunReport {
        let obs = Observer::new();
        {
            let _p = obs.phase("explore");
        }
        obs.add("search.candidates.generated", 12);
        obs.add("search.candidates.pruned", 4);
        obs.gauge_set("sim.des.max_queue_depth", 9.0);
        obs.observe("search.evaluate.us", 10);
        obs.observe("search.evaluate.us", 30);
        obs.set_device_utilization(vec![DeviceUtil {
            device: 0,
            stage: 0,
            busy_fraction: 0.5,
        }]);
        obs.report("search")
    }

    #[test]
    fn report_json_round_trips_through_serde_json() {
        let json = sample().to_json();
        let v: serde_json::Value = serde_json::from_str(&json).expect("valid JSON");
        assert_eq!(v["command"], "search");
        assert_eq!(v["counters"]["search.candidates.generated"], 12);
        assert_eq!(v["gauges"]["sim.des.max_queue_depth"].as_f64(), Some(9.0));
        assert_eq!(v["devices"][0]["busy_fraction"].as_f64(), Some(0.5));
        assert_eq!(v["phases"][0]["name"], "explore");
        let h = &v["histograms"]["search.evaluate.us"];
        assert_eq!(h["count"], 2);
        assert_eq!(h["sum"], 40);
        assert_eq!(h["min"], 10);
        assert_eq!(h["max"], 30);
        assert_eq!(h["p50"].as_f64(), Some(10.0));
    }

    #[test]
    fn empty_report_is_still_valid_json() {
        let json = Observer::new().report("estimate \"x\"").to_json();
        let v: serde_json::Value = serde_json::from_str(&json).expect("valid JSON");
        assert_eq!(v["command"], "estimate \"x\"");
        assert!(v["counters"].as_object().unwrap().is_empty());
        assert!(v["histograms"].as_object().unwrap().is_empty());
        assert!(v["devices"].as_array().unwrap().is_empty());
    }

    #[test]
    fn summary_lists_counters_and_devices() {
        let s = sample().summary();
        assert!(s.contains("search.candidates.generated: 12"));
        assert!(s.contains("phase explore"));
        assert!(s.contains("mean busy 50.0%"));
        assert!(s.contains("search.evaluate.us: p50=10"));
    }
}
