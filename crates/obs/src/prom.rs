//! Prometheus text exposition (format version 0.0.4) for an [`Observer`].
//!
//! Behind `GET /v1/metrics?format=prometheus` in `amped-serve`. The writer
//! is hand-rolled like the JSON one so the crate stays dependency-free;
//! CI parses the output back with an independent python checker to keep it
//! honest. Mapping:
//!
//! * counter `a.b.c` → `# TYPE a_b_c counter` + one sample;
//! * gauge `a.b` → `# TYPE a_b gauge` + one sample;
//! * histogram `a.us` → `# TYPE a_us histogram` with sparse cumulative
//!   `a_us_bucket{le="..."}` lines (inclusive integer bounds — exactly the
//!   `le` contract for integer samples), a `+Inf` bucket, `a_us_sum`, and
//!   `a_us_count`.

use crate::metrics::Observer;

/// Map a dotted metric name onto the Prometheus identifier charset
/// (`[a-zA-Z_:][a-zA-Z0-9_:]*`).
fn prom_name(name: &str) -> String {
    let mut out: String = name
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect();
    if out.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        out.insert(0, '_');
    }
    out
}

/// Render a sample value the way the text format expects (`+Inf`/`-Inf`/
/// `NaN` spellings instead of Rust's defaults).
fn prom_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{v}")
    }
}

/// The full exposition document for `obs`: every counter, gauge, and
/// histogram, each preceded by its `# TYPE` line.
///
/// # Example
///
/// ```
/// use amped_obs::{prometheus_exposition, Observer};
/// let obs = Observer::new();
/// obs.add("serve.requests.received", 3);
/// let text = prometheus_exposition(&obs);
/// assert!(text.contains("# TYPE serve_requests_received counter"));
/// assert!(text.contains("serve_requests_received 3"));
/// ```
pub fn prometheus_exposition(obs: &Observer) -> String {
    let mut out = String::new();
    for (name, value) in obs.counters() {
        let n = prom_name(&name);
        out.push_str(&format!("# TYPE {n} counter\n{n} {value}\n"));
    }
    for (name, value) in obs.gauges() {
        let n = prom_name(&name);
        out.push_str(&format!("# TYPE {n} gauge\n{n} {}\n", prom_f64(value)));
    }
    for (name, h) in obs.histogram_handles() {
        if h.is_empty() {
            continue;
        }
        let n = prom_name(&name);
        out.push_str(&format!("# TYPE {n} histogram\n"));
        let mut cumulative = 0u64;
        for (upper, count) in h.nonzero_buckets() {
            cumulative += count;
            if upper == u64::MAX {
                continue; // folded into +Inf below
            }
            out.push_str(&format!("{n}_bucket{{le=\"{upper}\"}} {cumulative}\n"));
        }
        out.push_str(&format!("{n}_bucket{{le=\"+Inf\"}} {cumulative}\n"));
        out.push_str(&format!("{n}_sum {}\n", h.sum()));
        out.push_str(&format!("{n}_count {}\n", h.count()));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_sanitized() {
        assert_eq!(prom_name("serve.http.429"), "serve_http_429");
        assert_eq!(prom_name("9lives"), "_9lives");
    }

    #[test]
    fn exposition_has_cumulative_buckets_ending_at_inf() {
        let obs = Observer::new();
        obs.add("reqs", 2);
        obs.gauge_set("depth", 1.5);
        obs.observe("lat.us", 3);
        obs.observe("lat.us", 3);
        obs.observe("lat.us", 100);
        let text = prometheus_exposition(&obs);
        assert!(text.contains("# TYPE reqs counter\nreqs 2\n"));
        assert!(text.contains("# TYPE depth gauge\ndepth 1.5\n"));
        assert!(text.contains("# TYPE lat_us histogram\n"));
        assert!(text.contains("lat_us_bucket{le=\"3\"} 2\n"));
        assert!(text.contains("lat_us_bucket{le=\"+Inf\"} 3\n"));
        assert!(text.contains("lat_us_sum 106\n"));
        assert!(text.contains("lat_us_count 3\n"));
        // Cumulative bucket counts never decrease.
        let mut last = 0u64;
        for line in text.lines().filter(|l| l.contains("_bucket{")) {
            let v: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(v >= last || line.contains("le=\"+Inf\""));
            last = if line.contains("+Inf") { 0 } else { v };
        }
    }

    #[test]
    fn empty_observer_renders_empty_document() {
        assert_eq!(prometheus_exposition(&Observer::new()), "");
    }

    #[test]
    fn special_gauge_values_use_prom_spellings() {
        assert_eq!(prom_f64(f64::INFINITY), "+Inf");
        assert_eq!(prom_f64(f64::NEG_INFINITY), "-Inf");
        assert_eq!(prom_f64(f64::NAN), "NaN");
        assert_eq!(prom_f64(0.25), "0.25");
    }
}
