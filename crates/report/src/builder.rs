//! Assembling full Markdown reports from tables, charts and experiment
//! records.

use crate::chart::BarChart;
use crate::record::ExperimentRecord;
use crate::table::Table;

/// Builds a multi-section Markdown document incrementally.
///
/// # Example
///
/// ```
/// use amped_report::{ReportBuilder, Table};
/// let mut t = Table::new(["a", "b"]);
/// t.row(["1", "2"]);
/// let md = ReportBuilder::new("Results")
///     .paragraph("All numbers measured on the simulator.")
///     .section("Throughput", "")
///     .table(&t)
///     .finish();
/// assert!(md.starts_with("# Results"));
/// assert!(md.contains("## Throughput"));
/// ```
#[derive(Debug, Clone)]
pub struct ReportBuilder {
    out: String,
}

impl ReportBuilder {
    /// Start a report titled `title`.
    pub fn new(title: impl AsRef<str>) -> Self {
        ReportBuilder {
            out: format!("# {}\n", title.as_ref()),
        }
    }

    /// Append a free paragraph.
    pub fn paragraph(mut self, text: impl AsRef<str>) -> Self {
        self.out.push('\n');
        self.out.push_str(text.as_ref());
        self.out.push('\n');
        self
    }

    /// Start a new `##` section with an optional lead paragraph.
    pub fn section(mut self, heading: impl AsRef<str>, lead: impl AsRef<str>) -> Self {
        self.out.push_str(&format!("\n## {}\n", heading.as_ref()));
        if !lead.as_ref().is_empty() {
            self.out.push('\n');
            self.out.push_str(lead.as_ref());
            self.out.push('\n');
        }
        self
    }

    /// Append a table as Markdown.
    pub fn table(mut self, table: &Table) -> Self {
        self.out.push('\n');
        self.out.push_str(&table.to_markdown());
        self.out.push('\n');
        self
    }

    /// Append a bar chart inside a code fence.
    pub fn chart(mut self, chart: &BarChart) -> Self {
        self.out.push_str("\n```text\n");
        self.out.push_str(&chart.to_ascii(48));
        self.out.push_str("\n```\n");
        self
    }

    /// Append an experiment record (its own `###` section).
    pub fn record(mut self, record: &ExperimentRecord) -> Self {
        self.out.push('\n');
        self.out.push_str(&record.to_markdown());
        self
    }

    /// Append a fenced block of preformatted text (e.g. a breakdown).
    pub fn preformatted(mut self, text: impl AsRef<str>) -> Self {
        self.out.push_str("\n```text\n");
        self.out.push_str(text.as_ref());
        if !text.as_ref().ends_with('\n') {
            self.out.push('\n');
        }
        self.out.push_str("```\n");
        self
    }

    /// The assembled document.
    pub fn finish(self) -> String {
        self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assembles_all_section_kinds() {
        let mut table = Table::new(["x", "y"]);
        table.row(["1", "2"]);
        let mut chart = BarChart::new("times", "d");
        chart.bar("dp", 18.0).bar("pp", 21.0);
        let mut record = ExperimentRecord::new("T2", "validation");
        record.compare("145B", 148.0, 145.8);

        let md = ReportBuilder::new("AMPeD Report")
            .paragraph("intro text")
            .section("Validation", "lead")
            .table(&table)
            .record(&record)
            .section("Case studies", "")
            .chart(&chart)
            .preformatted("raw breakdown")
            .finish();

        assert!(md.starts_with("# AMPeD Report"));
        assert!(md.contains("## Validation"));
        assert!(md.contains("| x | y |"));
        assert!(md.contains("### T2"));
        assert!(md.contains("```text"));
        assert!(md.contains("raw breakdown"));
        // Fences are balanced.
        assert_eq!(md.matches("```").count() % 2, 0);
    }

    #[test]
    fn empty_lead_adds_no_blank_paragraph() {
        let md = ReportBuilder::new("T").section("S", "").finish();
        assert!(md.contains("## S\n"));
        assert!(!md.contains("## S\n\n\n"));
    }
}
