//! Report artifacts built straight from [`Sweep`]'s typed rows.
//!
//! Consumers used to rebuild series by re-parsing the labels embedded in
//! [`Sweep::to_csv`] or scanning flat point lists; these helpers read the
//! structured [`Sweep::rows`]/[`Sweep::cells`] API instead, so labels,
//! batch sizes and backend provenance arrive typed.

use amped_search::Sweep;

use crate::chart::{LineChart, Series};
use crate::table::Table;

/// One [`Series`] per sweep row — named by the row's mapping label, with
/// `(batch, training days)` points in batch order.
pub fn sweep_series(sweep: &Sweep) -> Vec<Series> {
    sweep
        .rows()
        .map(|row| Series::new(row.label(), row.days_points()))
        .collect()
}

/// A training-days-vs-batch line chart, one series per mapping.
pub fn sweep_chart(title: impl Into<String>, sweep: &Sweep) -> LineChart {
    let mut chart = LineChart::new(title);
    for series in sweep_series(sweep) {
        chart.series(series);
    }
    chart
}

/// Every cell of the grid as a table, carrying the backend that priced it
/// — the provenance column report records need when sweeps mix analytical
/// and simulated estimates.
pub fn sweep_table(sweep: &Sweep) -> Table {
    let mut t = Table::new(["mapping", "batch", "backend", "days"]);
    for cell in sweep.cells() {
        t.row([
            cell.label.to_string(),
            cell.global_batch.to_string(),
            cell.backend.to_string(),
            format!("{:.3}", cell.estimate.days()),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use amped_search::SearchEngine;

    fn sweep() -> Sweep {
        use amped_core::{
            AcceleratorSpec, EfficiencyModel, Link, Parallelism, SystemSpec, TransformerModel,
        };
        let model = TransformerModel::builder("report-sweep-m")
            .layers(8)
            .hidden_size(512)
            .heads(8)
            .seq_len(256)
            .vocab_size(8000)
            .build()
            .unwrap();
        let accel = AcceleratorSpec::builder("report-sweep-a")
            .frequency_hz(1e9)
            .cores(32)
            .mac_units(4, 128, 8)
            .nonlin_units(32, 8, 32)
            .memory(32e9, 1e12)
            .build()
            .unwrap();
        let system =
            SystemSpec::new(2, 4, Link::new(1e-6, 2.4e12), Link::new(1e-5, 1e11), 4).unwrap();
        let engine = SearchEngine::new(&model, &accel, &system)
            .with_efficiency(EfficiencyModel::Constant(0.5));
        let mappings = vec![
            (
                "dp".to_string(),
                Parallelism::builder().tp(4, 1).dp(1, 2).build().unwrap(),
            ),
            (
                "pp".to_string(),
                Parallelism::builder().tp(4, 1).pp(1, 2).build().unwrap(),
            ),
        ];
        Sweep::run(&engine, &mappings, &[32, 64], 5).unwrap()
    }

    #[test]
    fn series_come_from_typed_rows() {
        let sweep = sweep();
        let series = sweep_series(&sweep);
        assert_eq!(series.len(), 2);
        assert_eq!(series[0].name, "dp");
        assert_eq!(series[1].name, "pp");
        assert_eq!(series[0].points, sweep.days_series("dp"));
        assert_eq!(series[0].points.len(), 2);
        let chart = sweep_chart("days vs batch", &sweep).to_ascii(32, 8);
        assert!(chart.contains("dp"));
        assert!(chart.contains("pp"));
    }

    #[test]
    fn table_carries_backend_provenance() {
        let csv = sweep_table(&sweep()).to_csv();
        assert!(csv.starts_with("mapping,batch,backend,days"));
        assert!(csv.contains("dp,32,analytical,"));
        assert!(csv.contains("pp,64,analytical,"));
    }
}
