//! ASCII charts: horizontal bars and multi-series CSV export.

/// A named series of `(x, y)` points.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Legend label.
    pub name: String,
    /// The data points, in x order.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// A series with a label and points.
    pub fn new(name: impl Into<String>, points: Vec<(f64, f64)>) -> Self {
        Series {
            name: name.into(),
            points,
        }
    }

    /// Maximum y value (0 for an empty series).
    pub fn max_y(&self) -> f64 {
        self.points.iter().map(|p| p.1).fold(0.0, f64::max)
    }
}

/// Export several series sharing an x axis as CSV
/// (`x, <name1>, <name2>, …`); missing x values render as empty cells.
pub fn series_to_csv(series: &[Series]) -> String {
    let mut xs: Vec<f64> = series
        .iter()
        .flat_map(|s| s.points.iter().map(|p| p.0))
        .collect();
    xs.sort_by(|a, b| a.partial_cmp(b).expect("finite x"));
    xs.dedup();
    let mut out = String::from("x");
    for s in series {
        out.push(',');
        out.push_str(&s.name);
    }
    for x in xs {
        out.push('\n');
        out.push_str(&format!("{x}"));
        for s in series {
            out.push(',');
            if let Some(p) = s.points.iter().find(|p| p.0 == x) {
                out.push_str(&format!("{}", p.1));
            }
        }
    }
    out
}

/// A multi-series ASCII line chart — the shape of the paper's Fig. 2 and
/// 4–9. Each series gets a glyph; x positions map linearly into the plot
/// width, y values scale to the plot height.
#[derive(Debug, Clone, Default)]
pub struct LineChart {
    title: String,
    series: Vec<Series>,
}

impl LineChart {
    /// A chart titled `title`.
    pub fn new(title: impl Into<String>) -> Self {
        LineChart {
            title: title.into(),
            series: Vec::new(),
        }
    }

    /// Add a series.
    pub fn series(&mut self, series: Series) -> &mut Self {
        self.series.push(series);
        self
    }

    /// Render into a `width × height` character grid plus a legend.
    ///
    /// Later series draw over earlier ones where points collide.
    pub fn to_ascii(&self, width: usize, height: usize) -> String {
        const GLYPHS: &[char] = &['*', 'o', '+', 'x', '#', '@'];
        let (width, height) = (width.max(8), height.max(3));
        let points: Vec<(f64, f64)> = self
            .series
            .iter()
            .flat_map(|s| s.points.iter().copied())
            .collect();
        if points.is_empty() {
            return self.title.clone();
        }
        let (mut x0, mut x1, mut y1) = (f64::INFINITY, f64::NEG_INFINITY, f64::NEG_INFINITY);
        for &(x, y) in &points {
            x0 = x0.min(x);
            x1 = x1.max(x);
            y1 = y1.max(y);
        }
        let y0 = 0.0; // charts in the paper are zero-based
        let mut grid = vec![vec![' '; width]; height];
        for (si, s) in self.series.iter().enumerate() {
            let glyph = GLYPHS[si % GLYPHS.len()];
            for &(x, y) in &s.points {
                let cx = if x1 > x0 {
                    ((x - x0) / (x1 - x0) * (width - 1) as f64).round() as usize
                } else {
                    0
                };
                let cy = if y1 > y0 {
                    ((y - y0) / (y1 - y0) * (height - 1) as f64).round() as usize
                } else {
                    0
                };
                grid[height - 1 - cy.min(height - 1)][cx.min(width - 1)] = glyph;
            }
        }
        let mut out = format!("{} (y: 0..{y1:.1}, x: {x0:.0}..{x1:.0})\n", self.title);
        for row in grid {
            out.push('|');
            out.extend(row);
            out.push('\n');
        }
        out.push('+');
        out.push_str(&"-".repeat(width));
        out.push('\n');
        for (si, s) in self.series.iter().enumerate() {
            out.push_str(&format!("  {} {}\n", GLYPHS[si % GLYPHS.len()], s.name));
        }
        out
    }
}

/// A horizontal bar chart of labelled values — the shape of the paper's
/// Fig. 3, 10 and 11.
#[derive(Debug, Clone, Default)]
pub struct BarChart {
    title: String,
    bars: Vec<(String, f64)>,
    unit: String,
}

impl BarChart {
    /// A chart titled `title` with values in `unit`.
    pub fn new(title: impl Into<String>, unit: impl Into<String>) -> Self {
        BarChart {
            title: title.into(),
            bars: Vec::new(),
            unit: unit.into(),
        }
    }

    /// Append a bar.
    ///
    /// # Panics
    ///
    /// Panics if `value` is negative or not finite.
    pub fn bar(&mut self, label: impl Into<String>, value: f64) -> &mut Self {
        assert!(
            value.is_finite() && value >= 0.0,
            "bar values must be finite and non-negative, got {value}"
        );
        self.bars.push((label.into(), value));
        self
    }

    /// Render with bars scaled to `width` characters.
    pub fn to_ascii(&self, width: usize) -> String {
        let max = self.bars.iter().map(|b| b.1).fold(0.0, f64::max);
        let label_w = self
            .bars
            .iter()
            .map(|b| b.0.chars().count())
            .max()
            .unwrap_or(0);
        let mut out = self.title.clone();
        for (label, value) in &self.bars {
            let n = if max > 0.0 {
                ((value / max) * width as f64).round() as usize
            } else {
                0
            };
            out.push('\n');
            out.push_str(&format!(
                "{:<label_w$}  {:<width$}  {:.3} {}",
                label,
                "#".repeat(n),
                value,
                self.unit,
            ));
        }
        out
    }
}

impl std::fmt::Display for BarChart {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.to_ascii(40))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bars_scale_to_max() {
        let mut c = BarChart::new("training time", "days");
        c.bar("DP", 18.0).bar("PP", 21.0).bar("TP-inter", 57.0);
        let s = c.to_ascii(20);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        let hashes = |l: &str| l.chars().filter(|&ch| ch == '#').count();
        assert_eq!(hashes(lines[3]), 20); // max bar fills the width
        assert!(hashes(lines[1]) < hashes(lines[2]));
        assert!(s.contains("days"));
    }

    #[test]
    fn empty_chart_is_title_only() {
        let c = BarChart::new("empty", "x");
        assert_eq!(c.to_ascii(10), "empty");
        assert_eq!(c.to_string(), "empty");
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_bar_rejected() {
        BarChart::new("t", "u").bar("x", -1.0);
    }

    #[test]
    fn csv_merges_x_axes() {
        let a = Series::new("predicted", vec![(1.0, 10.0), (2.0, 20.0)]);
        let b = Series::new("measured", vec![(2.0, 21.0), (4.0, 39.0)]);
        let csv = series_to_csv(&[a, b]);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "x,predicted,measured");
        assert_eq!(lines[1], "1,10,");
        assert_eq!(lines[2], "2,20,21");
        assert_eq!(lines[3], "4,,39");
    }

    #[test]
    fn line_chart_renders_all_series() {
        let mut c = LineChart::new("perf vs batch");
        c.series(Series::new("predicted", vec![(1.0, 30.0), (60.0, 154.0)]));
        c.series(Series::new("published", vec![(1.0, 44.0), (60.0, 153.0)]));
        let s = c.to_ascii(40, 10);
        assert!(s.contains("perf vs batch"));
        assert!(s.contains('*') && s.contains('o'));
        assert!(s.contains("predicted") && s.contains("published"));
        assert_eq!(s.lines().filter(|l| l.starts_with('|')).count(), 10);
    }

    #[test]
    fn empty_line_chart_is_title_only() {
        assert_eq!(LineChart::new("t").to_ascii(40, 10), "t");
    }

    #[test]
    fn series_max() {
        let s = Series::new("s", vec![(0.0, 3.0), (1.0, 7.0)]);
        assert_eq!(s.max_y(), 7.0);
        assert_eq!(Series::new("e", vec![]).max_y(), 0.0);
    }
}
