//! Goodput / expected-time tables from resilience-annotated candidates.
//!
//! A [`SearchEngine`](amped_search::SearchEngine) run with
//! [`with_goodput`](amped_search::SearchEngine::with_goodput) attaches a
//! checkpoint/restart expected-time report to every candidate; this module
//! renders those reports as the fault-aware companion to the fault-free
//! ranking tables.

use amped_search::Candidate;

use crate::table::Table;

/// A compact `tp·pp·dp` label for a candidate's mapping.
fn mapping_label(c: &Candidate) -> String {
    format!(
        "tp{}·pp{}·dp{}",
        c.parallelism.tp(),
        c.parallelism.pp(),
        c.parallelism.dp()
    )
}

/// One row per resilience-annotated candidate: fault-free vs expected
/// days, the checkpoint interval in force, expected failure count and
/// goodput. Candidates without a [`Candidate::resilience`] report (a
/// search run without goodput ranking) are skipped.
pub fn resilience_table(candidates: &[Candidate]) -> Table {
    let mut t = Table::new([
        "mapping",
        "fault-free days",
        "expected days",
        "slowdown",
        "ckpt interval (s)",
        "exp. failures",
        "goodput",
    ]);
    for c in candidates {
        let Some(r) = &c.resilience else {
            continue;
        };
        t.row([
            mapping_label(c),
            format!("{:.3}", r.fault_free_s / 86_400.0),
            format!("{:.3}", r.expected_days()),
            format!("{:.3}x", r.slowdown()),
            format!("{:.0}", r.interval_s),
            format!("{:.2}", r.expected_failures),
            format!("{:.1}%", r.goodput() * 100.0),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use amped_core::{
        AcceleratorSpec, EfficiencyModel, Link, SystemSpec, TrainingConfig, TransformerModel,
    };
    use amped_search::{GoodputOptions, SearchEngine};

    fn ranked(goodput: bool) -> Vec<Candidate> {
        let model = TransformerModel::builder("report-resilience-m")
            .layers(8)
            .hidden_size(512)
            .heads(8)
            .seq_len(256)
            .vocab_size(8000)
            .build()
            .unwrap();
        let accel = AcceleratorSpec::builder("report-resilience-a")
            .frequency_hz(1e9)
            .cores(32)
            .mac_units(4, 128, 8)
            .nonlin_units(32, 8, 32)
            .memory(32e9, 1e12)
            .build()
            .unwrap();
        let system =
            SystemSpec::new(2, 4, Link::new(1e-6, 2.4e12), Link::new(1e-5, 1e11), 4).unwrap();
        let mut engine = SearchEngine::new(&model, &accel, &system)
            .with_efficiency(EfficiencyModel::Constant(0.5));
        if goodput {
            engine = engine.with_goodput(GoodputOptions::new(1000.0 * 3600.0));
        }
        engine.search(&TrainingConfig::new(32, 5).unwrap()).unwrap()
    }

    #[test]
    fn table_rows_mirror_the_annotated_candidates() {
        let candidates = ranked(true);
        let t = resilience_table(&candidates);
        assert_eq!(t.num_rows(), candidates.len());
        let csv = t.to_csv();
        assert!(csv.starts_with("mapping,fault-free days,expected days"));
        assert!(csv.contains("tp"));
        assert!(csv.contains('%'));
    }

    #[test]
    fn unannotated_candidates_are_skipped() {
        let candidates = ranked(false);
        assert!(!candidates.is_empty());
        assert_eq!(resilience_table(&candidates).num_rows(), 0);
    }
}
