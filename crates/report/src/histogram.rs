//! Latency-quantile tables from histogram-summary JSON.
//!
//! The observability layer serializes every latency histogram as a
//! summary object (`count`/`sum`/`min`/`max`/`p50`/`p90`/`p99`/`p999`);
//! that shape appears both as the `histograms` section of a run report
//! (`--metrics-out`, `GET /v1/metrics`) and as the `endpoints` section of
//! a `BENCH_serve.json` load-test report. This renderer turns any map of
//! those summaries into one table, so the CLI's metrics rendering and the
//! loadtest summary print byte-identical rows for identical documents.

use serde_json::Value;

use crate::table::Table;

/// Render a map of histogram summaries (`name` → summary object) as a
/// quantile table: one row per series with count, p50/p90/p99/p999 and
/// max, all in the recorded unit (microseconds by convention).
///
/// Accepts either the summary map itself or a whole run-report document
/// (in which case its `histograms` section is rendered). Malformed or
/// missing fields never panic; non-summary entries render as skipped rows.
pub fn histogram_table(doc: &Value) -> Table {
    let mut t = Table::new(["series", "count", "p50", "p90", "p99", "p999", "max"]);
    let map = match doc.get("histograms") {
        Some(section) => section,
        None => doc,
    };
    let Some(entries) = map.as_object() else {
        return t;
    };
    for (name, summary) in entries {
        let field = |key: &str| summary.get(key).and_then(Value::as_f64);
        let (Some(count), Some(p50), Some(p90), Some(p99), Some(p999), Some(max)) = (
            field("count"),
            field("p50"),
            field("p90"),
            field("p99"),
            field("p999"),
            field("max"),
        ) else {
            continue;
        };
        t.row([
            name.clone(),
            format!("{count:.0}"),
            format!("{p50:.0}"),
            format!("{p90:.0}"),
            format!("{p99:.0}"),
            format!("{p999:.0}"),
            format!("{max:.0}"),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"{
        "estimate": {"count": 8, "sum": 800, "min": 50, "max": 200,
                     "p50": 90.0, "p90": 150.0, "p99": 199.0, "p999": 200.0},
        "search": {"count": 4, "sum": 4000, "min": 500, "max": 1500,
                   "p50": 900.0, "p90": 1400.0, "p99": 1500.0, "p999": 1500.0}
    }"#;

    #[test]
    fn renders_one_row_per_series_with_quantile_columns() {
        let v: Value = serde_json::from_str(SAMPLE).unwrap();
        let t = histogram_table(&v);
        let csv = t.to_csv();
        assert!(csv.contains("series,count,p50,p90,p99,p999,max"), "{csv}");
        assert!(csv.contains("estimate,8,90,150,199,200,200"), "{csv}");
        assert!(csv.contains("search,4,900,1400,1500,1500,1500"), "{csv}");
        assert_eq!(t.num_rows(), 2);
    }

    #[test]
    fn unwraps_the_histograms_section_of_a_run_report() {
        let doc = format!(r#"{{"command": "serve", "histograms": {SAMPLE}}}"#);
        let v: Value = serde_json::from_str(&doc).unwrap();
        assert_eq!(histogram_table(&v).num_rows(), 2);
    }

    #[test]
    fn identical_documents_render_identical_bytes_regardless_of_wrapper() {
        let bare: Value = serde_json::from_str(SAMPLE).unwrap();
        let wrapped: Value =
            serde_json::from_str(&format!(r#"{{"histograms": {SAMPLE}}}"#)).unwrap();
        assert_eq!(
            histogram_table(&bare).to_ascii(),
            histogram_table(&wrapped).to_ascii()
        );
    }

    #[test]
    fn malformed_documents_render_empty_not_panic() {
        for doc in ["{}", "[1,2]", r#"{"estimate": 3}"#, r#"{"x": {"count": 1}}"#] {
            let v: Value = serde_json::from_str(doc).unwrap();
            assert_eq!(histogram_table(&v).num_rows(), 0, "{doc}");
        }
    }
}
