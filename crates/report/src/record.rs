//! Paper-vs-measured experiment records, the backbone of EXPERIMENTS.md.

use crate::table::Table;

/// One compared quantity inside an experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct Comparison {
    /// What is being compared (e.g. `"145B TFLOP/s/GPU"`).
    pub label: String,
    /// The paper's value.
    pub paper: f64,
    /// Our measured/predicted value.
    pub measured: f64,
    /// Which cost backend produced `measured` (`None` when the record
    /// predates backend provenance or the value is external).
    pub backend: Option<String>,
}

impl Comparison {
    /// A comparison row.
    pub fn new(label: impl Into<String>, paper: f64, measured: f64) -> Self {
        Comparison {
            label: label.into(),
            paper,
            measured,
            backend: None,
        }
    }

    /// Attach the name of the cost backend that produced the measured
    /// value (see `amped_core::CostBackend::name`).
    pub fn with_backend(mut self, backend: impl Into<String>) -> Self {
        self.backend = Some(backend.into());
        self
    }

    /// Relative error |measured − paper| / |paper| (infinite when the paper
    /// value is zero and the measured one is not).
    pub fn relative_error(&self) -> f64 {
        if self.paper == 0.0 {
            if self.measured == 0.0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            (self.measured - self.paper).abs() / self.paper.abs()
        }
    }
}

/// A reproduced table/figure: its id, comparisons and tolerance.
#[derive(Debug, Clone)]
pub struct ExperimentRecord {
    /// Paper artifact id (e.g. `"Table II"`, `"Fig. 2a"`).
    pub id: String,
    /// One-line description.
    pub name: String,
    /// The compared values.
    pub comparisons: Vec<Comparison>,
}

impl ExperimentRecord {
    /// An empty record.
    pub fn new(id: impl Into<String>, name: impl Into<String>) -> Self {
        ExperimentRecord {
            id: id.into(),
            name: name.into(),
            comparisons: Vec::new(),
        }
    }

    /// Append a comparison.
    pub fn compare(&mut self, label: impl Into<String>, paper: f64, measured: f64) -> &mut Self {
        self.comparisons.push(Comparison::new(label, paper, measured));
        self
    }

    /// Append a comparison recording which cost backend produced the
    /// measured value; the rendered tables grow a `backend` column as soon
    /// as any comparison carries provenance.
    pub fn compare_via(
        &mut self,
        label: impl Into<String>,
        backend: impl Into<String>,
        paper: f64,
        measured: f64,
    ) -> &mut Self {
        self.comparisons
            .push(Comparison::new(label, paper, measured).with_backend(backend));
        self
    }

    /// The largest relative error across comparisons (0 when empty).
    pub fn max_error(&self) -> f64 {
        self.comparisons
            .iter()
            .map(Comparison::relative_error)
            .fold(0.0, f64::max)
    }

    /// Whether every comparison is within `tolerance` relative error.
    pub fn within(&self, tolerance: f64) -> bool {
        self.max_error() <= tolerance
    }

    /// Render as a table (label, paper, measured, error %). A `backend`
    /// column appears when any comparison carries provenance, so legacy
    /// records render exactly as before.
    pub fn to_table(&self) -> Table {
        let with_backend = self.comparisons.iter().any(|c| c.backend.is_some());
        if !with_backend {
            let mut t = Table::new(["quantity", "paper", "measured", "error"]);
            for c in &self.comparisons {
                t.row([
                    c.label.clone(),
                    format!("{:.3}", c.paper),
                    format!("{:.3}", c.measured),
                    format!("{:.1}%", c.relative_error() * 100.0),
                ]);
            }
            return t;
        }
        let mut t = Table::new(["quantity", "backend", "paper", "measured", "error"]);
        for c in &self.comparisons {
            t.row([
                c.label.clone(),
                c.backend.clone().unwrap_or_else(|| "-".into()),
                format!("{:.3}", c.paper),
                format!("{:.3}", c.measured),
                format!("{:.1}%", c.relative_error() * 100.0),
            ]);
        }
        t
    }

    /// Render as a Markdown section for EXPERIMENTS.md.
    pub fn to_markdown(&self) -> String {
        format!(
            "### {} — {}\n\n{}\n\nmax error: {:.1}%\n",
            self.id,
            self.name,
            self.to_table().to_markdown(),
            self.max_error() * 100.0
        )
    }
}

impl std::fmt::Display for ExperimentRecord {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "[{}] {}", self.id, self.name)?;
        write!(f, "{}", self.to_table())?;
        write!(f, "\nmax error: {:.1}%", self.max_error() * 100.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_accumulate_to_max() {
        let mut r = ExperimentRecord::new("Table II", "Megatron throughput");
        r.compare("145B", 148.0, 147.0);
        r.compare("1T", 163.0, 144.3);
        assert!((r.max_error() - (163.0 - 144.3) / 163.0).abs() < 1e-12);
        assert!(r.within(0.12));
        assert!(!r.within(0.10));
    }

    #[test]
    fn zero_paper_value_handled() {
        let c = Comparison::new("x", 0.0, 0.0);
        assert_eq!(c.relative_error(), 0.0);
        let c = Comparison::new("x", 0.0, 1.0);
        assert!(c.relative_error().is_infinite());
    }

    #[test]
    fn renders_markdown_section() {
        let mut r = ExperimentRecord::new("Fig. 2a", "DP validation");
        r.compare("8 GPUs speedup", 6.2, 6.4);
        let md = r.to_markdown();
        assert!(md.starts_with("### Fig. 2a"));
        assert!(md.contains("| 8 GPUs speedup |"));
        assert!(md.contains("max error"));
    }

    #[test]
    fn backend_provenance_adds_a_column_only_when_present() {
        let mut r = ExperimentRecord::new("Fig. 2b", "PP validation");
        r.compare("4 GPUs speedup", 3.1, 3.0);
        assert!(!r.to_table().to_csv().contains("backend"));
        r.compare_via("8 GPUs speedup", "sim", 6.2, 6.4);
        let csv = r.to_table().to_csv();
        assert!(csv.starts_with("quantity,backend,paper,measured,error"));
        assert!(csv.contains("4 GPUs speedup,-,"));
        assert!(csv.contains("8 GPUs speedup,sim,"));
        let md = r.to_markdown();
        assert!(md.contains("| 8 GPUs speedup | sim |"));
    }

    #[test]
    fn empty_record_has_zero_error() {
        let r = ExperimentRecord::new("x", "y");
        assert_eq!(r.max_error(), 0.0);
        assert!(r.within(0.0));
        assert!(r.to_string().contains("[x]"));
    }
}
