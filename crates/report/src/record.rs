//! Paper-vs-measured experiment records, the backbone of EXPERIMENTS.md.

use crate::table::Table;

/// One compared quantity inside an experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct Comparison {
    /// What is being compared (e.g. `"145B TFLOP/s/GPU"`).
    pub label: String,
    /// The paper's value.
    pub paper: f64,
    /// Our measured/predicted value.
    pub measured: f64,
}

impl Comparison {
    /// A comparison row.
    pub fn new(label: impl Into<String>, paper: f64, measured: f64) -> Self {
        Comparison {
            label: label.into(),
            paper,
            measured,
        }
    }

    /// Relative error |measured − paper| / |paper| (infinite when the paper
    /// value is zero and the measured one is not).
    pub fn relative_error(&self) -> f64 {
        if self.paper == 0.0 {
            if self.measured == 0.0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            (self.measured - self.paper).abs() / self.paper.abs()
        }
    }
}

/// A reproduced table/figure: its id, comparisons and tolerance.
#[derive(Debug, Clone)]
pub struct ExperimentRecord {
    /// Paper artifact id (e.g. `"Table II"`, `"Fig. 2a"`).
    pub id: String,
    /// One-line description.
    pub name: String,
    /// The compared values.
    pub comparisons: Vec<Comparison>,
}

impl ExperimentRecord {
    /// An empty record.
    pub fn new(id: impl Into<String>, name: impl Into<String>) -> Self {
        ExperimentRecord {
            id: id.into(),
            name: name.into(),
            comparisons: Vec::new(),
        }
    }

    /// Append a comparison.
    pub fn compare(&mut self, label: impl Into<String>, paper: f64, measured: f64) -> &mut Self {
        self.comparisons.push(Comparison::new(label, paper, measured));
        self
    }

    /// The largest relative error across comparisons (0 when empty).
    pub fn max_error(&self) -> f64 {
        self.comparisons
            .iter()
            .map(Comparison::relative_error)
            .fold(0.0, f64::max)
    }

    /// Whether every comparison is within `tolerance` relative error.
    pub fn within(&self, tolerance: f64) -> bool {
        self.max_error() <= tolerance
    }

    /// Render as a table (label, paper, measured, error %).
    pub fn to_table(&self) -> Table {
        let mut t = Table::new(["quantity", "paper", "measured", "error"]);
        for c in &self.comparisons {
            t.row([
                c.label.clone(),
                format!("{:.3}", c.paper),
                format!("{:.3}", c.measured),
                format!("{:.1}%", c.relative_error() * 100.0),
            ]);
        }
        t
    }

    /// Render as a Markdown section for EXPERIMENTS.md.
    pub fn to_markdown(&self) -> String {
        format!(
            "### {} — {}\n\n{}\n\nmax error: {:.1}%\n",
            self.id,
            self.name,
            self.to_table().to_markdown(),
            self.max_error() * 100.0
        )
    }
}

impl std::fmt::Display for ExperimentRecord {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "[{}] {}", self.id, self.name)?;
        write!(f, "{}", self.to_table())?;
        write!(f, "\nmax error: {:.1}%", self.max_error() * 100.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_accumulate_to_max() {
        let mut r = ExperimentRecord::new("Table II", "Megatron throughput");
        r.compare("145B", 148.0, 147.0);
        r.compare("1T", 163.0, 144.3);
        assert!((r.max_error() - (163.0 - 144.3) / 163.0).abs() < 1e-12);
        assert!(r.within(0.12));
        assert!(!r.within(0.10));
    }

    #[test]
    fn zero_paper_value_handled() {
        let c = Comparison::new("x", 0.0, 0.0);
        assert_eq!(c.relative_error(), 0.0);
        let c = Comparison::new("x", 0.0, 1.0);
        assert!(c.relative_error().is_infinite());
    }

    #[test]
    fn renders_markdown_section() {
        let mut r = ExperimentRecord::new("Fig. 2a", "DP validation");
        r.compare("8 GPUs speedup", 6.2, 6.4);
        let md = r.to_markdown();
        assert!(md.starts_with("### Fig. 2a"));
        assert!(md.contains("| 8 GPUs speedup |"));
        assert!(md.contains("max error"));
    }

    #[test]
    fn empty_record_has_zero_error() {
        let r = ExperimentRecord::new("x", "y");
        assert_eq!(r.max_error(), 0.0);
        assert!(r.within(0.0));
        assert!(r.to_string().contains("[x]"));
    }
}
