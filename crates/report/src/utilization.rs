//! Device-utilization tables from the CLI's `--metrics-out` JSON.
//!
//! The observability layer (`amped-obs`) serializes each instrumented run
//! as a `RunReport` JSON document; this module renders that document back
//! into a terminal table: per-device busy
//! fractions from the simulated timeline, the DES queue-depth peak, and a
//! summary of every counter the run recorded.

use serde_json::Value;

use crate::table::Table;

/// Render a `--metrics-out` document as a two-column `metric / value`
/// table: one row per simulated device (busy fraction by pipeline stage),
/// the mean busy fraction, the `sim.des.max_queue_depth` peak when the
/// discrete-event simulator ran, and every recorded counter.
///
/// Sections that the run did not produce (e.g. no devices for a purely
/// analytical run) are simply absent; malformed or missing fields never
/// panic, they render as skipped rows.
pub fn utilization_table(metrics: &Value) -> Table {
    let mut t = Table::new(["metric", "value"]);

    let devices = metrics
        .get("devices")
        .and_then(Value::as_array)
        .map(Vec::as_slice)
        .unwrap_or(&[]);
    let mut busy_sum = 0.0;
    let mut busy_count = 0usize;
    for d in devices {
        let (Some(device), Some(stage), Some(busy)) = (
            d.get("device").and_then(Value::as_u64),
            d.get("stage").and_then(Value::as_u64),
            d.get("busy_fraction").and_then(Value::as_f64),
        ) else {
            continue;
        };
        busy_sum += busy;
        busy_count += 1;
        t.row([
            format!("device {device} (stage {stage}) busy"),
            format!("{:.1}%", busy * 100.0),
        ]);
    }
    if busy_count > 0 {
        t.row([
            "mean device busy".to_string(),
            format!("{:.1}%", busy_sum / busy_count as f64 * 100.0),
        ]);
    }

    if let Some(depth) = metrics
        .get("gauges")
        .and_then(|g| g.get("sim.des.max_queue_depth"))
        .and_then(Value::as_f64)
    {
        t.row(["event-queue depth peak".to_string(), format!("{depth:.0}")]);
    }

    if let Some(counters) = metrics.get("counters").and_then(Value::as_object) {
        for (name, value) in counters {
            if let Some(v) = value.as_u64() {
                t.row([name.clone(), v.to_string()]);
            }
        }
    }

    t
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"{
        "command": "simulate",
        "phases": [{"name": "search.explore", "seconds": 0.25}],
        "counters": {
            "sim.des.events_processed": 1234,
            "sim.des.runs": 2
        },
        "gauges": {"sim.des.max_queue_depth": 17.0},
        "devices": [
            {"device": 0, "stage": 0, "busy_fraction": 0.8},
            {"device": 1, "stage": 1, "busy_fraction": 0.6}
        ]
    }"#;

    #[test]
    fn renders_devices_gauge_peak_and_counters() {
        let v: Value = serde_json::from_str(SAMPLE).unwrap();
        let t = utilization_table(&v);
        let csv = t.to_csv();
        assert!(csv.contains("device 0 (stage 0) busy,80.0%"), "{csv}");
        assert!(csv.contains("device 1 (stage 1) busy,60.0%"), "{csv}");
        assert!(csv.contains("mean device busy,70.0%"), "{csv}");
        assert!(csv.contains("event-queue depth peak,17"), "{csv}");
        assert!(csv.contains("sim.des.events_processed,1234"), "{csv}");
        assert_eq!(t.num_rows(), 2 + 1 + 1 + 2);
    }

    #[test]
    fn analytical_runs_skip_device_and_queue_rows() {
        let v: Value = serde_json::from_str(
            r#"{"command": "estimate", "phases": [],
                "counters": {"backend.analytical.evaluations": 3},
                "gauges": {}, "devices": []}"#,
        )
        .unwrap();
        let t = utilization_table(&v);
        let csv = t.to_csv();
        assert!(!csv.contains("busy"));
        assert!(!csv.contains("depth"));
        assert!(csv.contains("backend.analytical.evaluations,3"));
        assert_eq!(t.num_rows(), 1);
    }

    #[test]
    fn malformed_documents_render_empty_not_panic() {
        for doc in ["{}", r#"{"devices": "nope"}"#, r#"{"counters": [1,2]}"#] {
            let v: Value = serde_json::from_str(doc).unwrap();
            assert_eq!(utilization_table(&v).num_rows(), 0, "{doc}");
        }
    }
}
