//! Aligned text tables with ASCII, Markdown and CSV rendering.

/// A rectangular table of strings with a header row.
#[derive(Debug, Clone, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given column headers.
    pub fn new<I, S>(headers: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row<I, S>(&mut self, cells: I) -> &mut Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row width {} does not match {} columns",
            row.len(),
            self.headers.len()
        );
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    fn widths(&self) -> Vec<usize> {
        let mut w: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                w[i] = w[i].max(cell.chars().count());
            }
        }
        w
    }

    /// Render with space-padded columns and a dash separator line.
    pub fn to_ascii(&self) -> String {
        let w = self.widths();
        let fmt_row = |cells: &[String]| {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>width$}", c, width = w[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let mut out = fmt_row(&self.headers);
        out.push('\n');
        out.push_str(&"-".repeat(w.iter().sum::<usize>() + 2 * (w.len().saturating_sub(1))));
        for row in &self.rows {
            out.push('\n');
            out.push_str(&fmt_row(row));
        }
        out
    }

    /// Render as GitHub-flavoured Markdown.
    pub fn to_markdown(&self) -> String {
        let line = |cells: &[String]| format!("| {} |", cells.join(" | "));
        let mut out = line(&self.headers);
        out.push('\n');
        out.push_str(&format!(
            "|{}|",
            self.headers.iter().map(|_| "---").collect::<Vec<_>>().join("|")
        ));
        for row in &self.rows {
            out.push('\n');
            out.push_str(&line(row));
        }
        out
    }

    /// Render as CSV (naive quoting: cells containing commas are quoted).
    pub fn to_csv(&self) -> String {
        let quote = |c: &String| {
            if c.contains(',') || c.contains('"') {
                format!("\"{}\"", c.replace('"', "\"\""))
            } else {
                c.clone()
            }
        };
        let line = |cells: &[String]| cells.iter().map(quote).collect::<Vec<_>>().join(",");
        let mut out = line(&self.headers);
        for row in &self.rows {
            out.push('\n');
            out.push_str(&line(row));
        }
        out
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.to_ascii())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new(["model", "TFLOP/s", "error"]);
        t.row(["145B", "147.0", "0.6%"]);
        t.row(["1T", "144.3", "11.5%"]);
        t
    }

    #[test]
    fn ascii_aligns_columns() {
        let s = sample().to_ascii();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[1].chars().next(), Some('-'));
        // All rows same width.
        assert_eq!(lines[0].len(), lines[2].len());
    }

    #[test]
    fn markdown_has_separator() {
        let md = sample().to_markdown();
        assert!(md.contains("|---|---|---|"));
        assert!(md.starts_with("| model"));
    }

    #[test]
    fn csv_quotes_commas() {
        let mut t = Table::new(["a", "b"]);
        t.row(["1,5", "x\"y"]);
        let csv = t.to_csv();
        assert!(csv.contains("\"1,5\""));
        assert!(csv.contains("\"x\"\"y\""));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_rejected() {
        Table::new(["a", "b"]).row(["only-one"]);
    }

    #[test]
    fn display_matches_ascii() {
        let t = sample();
        assert_eq!(t.to_string(), t.to_ascii());
        assert_eq!(t.num_rows(), 2);
    }
}
