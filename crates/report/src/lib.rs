//! # amped-report — tables, charts and experiment records
//!
//! The paper communicates through tables (I–IV) and figures (1–11); this
//! crate regenerates them as terminal artifacts: aligned ASCII/Markdown
//! tables, CSV series for external plotting, ASCII bar/line charts, and
//! paper-vs-measured experiment records with relative errors.
//!
//! # Example
//!
//! ```
//! use amped_report::Table;
//!
//! let mut t = Table::new(["GPUs", "speedup"]);
//! t.row(["2", "1.00"]);
//! t.row(["4", "1.84"]);
//! let ascii = t.to_ascii();
//! assert!(ascii.contains("GPUs"));
//! assert!(t.to_csv().starts_with("GPUs,speedup"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod artifacts;
pub mod builder;
pub mod chart;
pub mod histogram;
pub mod record;
pub mod resilience;
pub mod sweep;
pub mod table;
pub mod utilization;

pub use builder::ReportBuilder;
pub use chart::{BarChart, LineChart, Series};
pub use histogram::histogram_table;
pub use record::{Comparison, ExperimentRecord};
pub use resilience::resilience_table;
pub use sweep::{sweep_chart, sweep_series, sweep_table};
pub use table::Table;
pub use utilization::utilization_table;
