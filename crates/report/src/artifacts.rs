//! The canonical machine-readable artifacts for estimates, searches,
//! sweeps and recommendations.
//!
//! Both front-ends — the `amped` CLI's `--json` paths and the
//! `amped-serve` HTTP endpoints — render their responses through these
//! builders, which is what makes a server response *byte-identical* to the
//! equivalent CLI invocation (pinned by the CLI's differential test). Keep
//! any schema change here, in one place, so the two front-ends cannot
//! drift apart.

use amped_core::{CorrelatedReport, Estimate, ResilienceReport};
use amped_infer::InferEstimate;
use amped_search::{
    serving_pareto_front, Candidate, Recommendation, SearchStats, ServingCandidate,
    ServingSearchStats, Sweep,
};
use serde_json::Value;

/// Stamp the scenario-schema version onto a top-level JSON artifact, as
/// its first key. Every versioned document a front-end emits — estimate,
/// search, recommend — carries the same `schema_version` the `schema`
/// command and `/v1/schema` endpoint report, so a consumer can tell which
/// scenario contract produced it.
fn with_schema_version(value: Value) -> Value {
    match value {
        Value::Object(mut entries) => {
            entries.insert(
                0,
                (
                    "schema_version".to_string(),
                    Value::Str(amped_configs::schema::SCHEMA_VERSION.to_string()),
                ),
            );
            Value::Object(entries)
        }
        other => other,
    }
}

/// The estimate artifact: the [`Estimate`] document, or an
/// `{ "estimate": ..., "resilience": ... }` bundle when a
/// checkpoint/restart expectation is layered on top. Either shape leads
/// with `schema_version`.
pub fn estimate_value(estimate: &Estimate, resilience: Option<&ResilienceReport>) -> Value {
    with_schema_version(match resilience {
        Some(report) => {
            serde_json::json!({ "estimate": estimate, "resilience": report })
        }
        None => serde_json::to_value(estimate),
    })
}

/// One ranked search row. `backend` reports which cost model priced the
/// row: `"sim"` after a simulator-refinement pass, `"analytical"`
/// otherwise.
pub fn search_row(c: &Candidate) -> Value {
    let backend = if c.refined.is_some() { "sim" } else { "analytical" };
    serde_json::json!({
        "tp": [c.parallelism.tp_intra(), c.parallelism.tp_inter()],
        "pp": [c.parallelism.pp_intra(), c.parallelism.pp_inter()],
        "dp": [c.parallelism.dp_intra(), c.parallelism.dp_inter()],
        "days": c.ranking_estimate().days(),
        "tflops_per_gpu": c.ranking_estimate().tflops_per_gpu,
        "fits_memory": c.fits_memory,
        "backend": backend,
        "expected_days": c.resilience.as_ref().map(|r| r.expected_days()),
    })
}

/// The search artifact: the top `top` ranked rows.
pub fn search_rows(results: &[Candidate], top: usize) -> Value {
    let rows: Vec<Value> = results.iter().take(top).map(search_row).collect();
    serde_json::to_value(&rows)
}

/// The full search artifact: the ranked rows plus the memory-rejection
/// accounting, naming which capacity inequality each rejected mapping
/// first failed. Both front-ends (`amped search --json` and
/// `/v1/search`) render through this builder.
pub fn search_value(results: &[Candidate], top: usize, stats: &SearchStats) -> Value {
    with_schema_version(serde_json::json!({
        "rows": search_rows(results, top),
        "memory_rejected": {
            "total": stats.memory_rejected.total(),
            "weights": stats.memory_rejected.weights,
            "gradients": stats.memory_rejected.gradients,
            "optimizer": stats.memory_rejected.optimizer,
            "activations": stats.memory_rejected.activations,
        },
    }))
}

/// The recommend artifact: the winning mapping with its alternatives,
/// lint findings and knob leverage.
pub fn recommend_value(rec: &Recommendation) -> Value {
    let alternatives: Vec<Value> = rec.alternatives.iter().map(search_row).collect();
    let diagnostics: Vec<String> = rec.diagnostics.iter().map(|d| d.to_string()).collect();
    let tornado: Vec<Value> = rec
        .tornado
        .iter()
        .map(|r| serde_json::json!({ "knob": r.knob.name(), "speedup": r.speedup() }))
        .collect();
    with_schema_version(serde_json::json!({
        "best": search_row(&rec.best),
        "microbatches": rec.best.estimate.num_microbatches,
        "alternatives": alternatives,
        "margin": rec.margin(),
        "diagnostics": diagnostics,
        "top_knob": rec.top_knob().map(|k| k.name()),
        "tornado": tornado,
    }))
}

/// The infer artifact: the [`InferEstimate`] document with a leading
/// `schema_version` — what `amped infer --json` and `POST /v1/infer`
/// return, byte-identically.
pub fn infer_value(estimate: &InferEstimate) -> Value {
    with_schema_version(serde_json::to_value(estimate))
}

/// One ranked serving-search row.
pub fn serving_row(c: &ServingCandidate, pareto: bool) -> Value {
    serde_json::json!({
        "tp": [c.parallelism.tp_intra(), c.parallelism.tp_inter()],
        "pp": [c.parallelism.pp_intra(), c.parallelism.pp_inter()],
        "dp": [c.parallelism.dp_intra(), c.parallelism.dp_inter()],
        "batch": c.batch,
        "ttft_s": c.estimate.ttft,
        "tpot_s": c.estimate.tpot,
        "request_latency_s": c.estimate.request_latency,
        "tokens_per_sec": c.estimate.tokens_per_sec,
        "memory_bytes": c.estimate.memory_total(),
        "fits_memory": c.fits_memory,
        "pareto": pareto,
    })
}

/// The serving-search artifact: the top `top` latency-ranked rows (each
/// flagged with its latency/throughput/memory Pareto-front membership,
/// computed over the full kept set) plus the KV-capacity rejection
/// accounting. Both front-ends (`amped search --workload infer --json`
/// and `/v1/search?workload=infer`) render through this builder.
pub fn serving_search_value(
    results: &[ServingCandidate],
    top: usize,
    stats: &ServingSearchStats,
) -> Value {
    let front = serving_pareto_front(results);
    let on_front =
        |c: &ServingCandidate| front.iter().any(|f| std::ptr::eq::<ServingCandidate>(*f, c));
    let rows: Vec<Value> = results
        .iter()
        .take(top)
        .map(|c| serving_row(c, on_front(c)))
        .collect();
    with_schema_version(serde_json::json!({
        "workload": "infer",
        "rows": rows,
        "memory_rejected": {
            "total": stats.memory_rejected.total(),
            "weights": stats.memory_rejected.weights,
            "kv_cache": stats.memory_rejected.kv_cache,
        },
    }))
}

/// The resilience artifact: the estimate bundled with the
/// checkpoint/restart expectation and — when a failure-domain tree priced
/// the scenario — the correlated accounting (placement blast radii, fatal
/// and elastic rates, shrink overhead). Without a correlated report the
/// shape is byte-identical to [`estimate_value`] with a resilience
/// report, so scenarios that never mention failure domains keep their
/// exact historical artifact. Leads with `schema_version` either way.
pub fn resilience_value(
    estimate: &Estimate,
    report: &ResilienceReport,
    correlated: Option<&CorrelatedReport>,
) -> Value {
    with_schema_version(match correlated {
        None => serde_json::json!({ "estimate": estimate, "resilience": report }),
        Some(c) => serde_json::json!({
            "estimate": estimate,
            "resilience": report,
            "correlated": c,
        }),
    })
}

/// The sweep JSON artifact: the CSV grid and the per-batch winners as
/// structured rows, led by `schema_version` — what `sweep --json` and
/// `/v1/sweep?json=true` return.
pub fn sweep_value(sweep: &Sweep) -> Value {
    let winners: Vec<Value> = sweep
        .winners()
        .into_iter()
        .map(|(batch, winner)| serde_json::json!({ "batch": batch, "winner": winner }))
        .collect();
    with_schema_version(serde_json::json!({
        "csv": sweep.to_csv(),
        "winners": winners,
    }))
}

/// The sweep artifact: the CSV grid plus the per-batch winner line, as the
/// CLI has always printed it (text, not JSON — sweeps are spreadsheets).
pub fn sweep_text(sweep: &Sweep) -> String {
    let mut out = sweep.to_csv();
    out.push_str("\n\nwinners: ");
    for (b, w) in sweep.winners() {
        out.push_str(&format!("{b}:{w} "));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use amped_core::TrainingConfig;
    use amped_search::SearchEngine;

    fn fixture() -> (
        amped_core::TransformerModel,
        amped_core::AcceleratorSpec,
        amped_core::SystemSpec,
    ) {
        let model = amped_core::TransformerModel::builder("artifact-test")
            .layers(8)
            .hidden_size(512)
            .heads(8)
            .seq_len(128)
            .vocab_size(2000)
            .build()
            .unwrap();
        let accel = amped_core::AcceleratorSpec::builder("A100")
            .frequency_hz(1.41e9)
            .cores(108)
            .mac_units(4, 512, 8)
            .nonlin_units(192, 4, 32)
            .memory(80e9, 2.0e12)
            .build()
            .unwrap();
        let system = amped_core::SystemSpec::new(
            1,
            8,
            amped_core::Link::new(5e-6, 2.4e12),
            amped_core::Link::new(1e-5, 2e11),
            8,
        )
        .unwrap();
        (model, accel, system)
    }

    #[test]
    fn estimate_value_is_bare_serialization_plus_leading_schema_version() {
        let (model, accel, system) = fixture();
        let p = amped_core::Parallelism::builder().tp(8, 1).build().unwrap();
        let est = amped_core::Estimator::new(&model, &accel, &system, &p)
            .estimate(&TrainingConfig::new(64, 10).unwrap())
            .unwrap();
        let value = estimate_value(&est, None);
        // The document is the bare Estimate with one extra leading key.
        let Value::Object(entries) = &value else {
            panic!("estimate artifact must be an object");
        };
        assert_eq!(entries[0].0, "schema_version");
        assert_eq!(
            entries[0].1.as_str(),
            Some(amped_configs::schema::SCHEMA_VERSION)
        );
        let bare = serde_json::to_value(&est);
        let Value::Object(bare_entries) = &bare else {
            panic!("estimate serializes to an object");
        };
        assert_eq!(&entries[1..], bare_entries.as_slice());
    }

    #[test]
    fn every_json_artifact_leads_with_the_schema_version() {
        let (model, accel, system) = fixture();
        let training = TrainingConfig::new(64, 10).unwrap();
        let (results, stats) = SearchEngine::new(&model, &accel, &system)
            .with_memory_filter(true)
            .search_with_stats(&training)
            .unwrap();
        let rec = SearchEngine::new(&model, &accel, &system)
            .with_memory_filter(true)
            .recommend(&training)
            .unwrap()
            .expect("fixture has a feasible mapping");
        for value in [
            search_value(&results, 3, &stats),
            recommend_value(&rec),
        ] {
            let Value::Object(entries) = value else {
                panic!("artifact must be an object");
            };
            assert_eq!(entries[0].0, "schema_version");
        }
    }

    #[test]
    fn resilience_value_without_domains_is_the_historical_estimate_bundle() {
        let (model, accel, system) = fixture();
        let p = amped_core::Parallelism::builder().tp(8, 1).build().unwrap();
        let est = amped_core::Estimator::new(&model, &accel, &system, &p)
            .estimate(&TrainingConfig::new(64, 10).unwrap())
            .unwrap();
        let report = amped_core::ResilienceParams::new(4380.0 * 3600.0, 8)
            .unwrap()
            .with_restart(300.0)
            .report(est.total_time.get())
            .unwrap();
        let plain = serde_json::to_string(&resilience_value(&est, &report, None)).unwrap();
        let historical = serde_json::to_string(&estimate_value(&est, Some(&report))).unwrap();
        assert_eq!(plain, historical);

        // With a domain tree, the artifact gains a `correlated` section and
        // still leads with the schema version.
        let tree = amped_core::FailureDomainTree::new(8, 4, 2)
            .unwrap()
            .with_rack_mtbf(720.0 * 3600.0);
        let placement = amped_core::DomainPlacement::replica_major(8, 1, 1, 1, &tree);
        let params = amped_core::ResilienceParams::new(4380.0 * 3600.0, 8)
            .unwrap()
            .with_restart(300.0);
        let corr = amped_core::CorrelatedResilience::new(params, tree, placement)
            .unwrap()
            .report(est.total_time.get())
            .unwrap();
        let value = resilience_value(&est, &corr.flat_report(), Some(&corr));
        let Value::Object(entries) = &value else {
            panic!("resilience artifact must be an object");
        };
        assert_eq!(entries[0].0, "schema_version");
        let text = serde_json::to_string_pretty(&value).unwrap();
        for key in ["\"correlated\"", "\"placement\"", "\"fatal_rate_per_s\""] {
            assert!(text.contains(key), "missing {key} in {text}");
        }
    }

    #[test]
    fn sweep_value_leads_with_the_version_and_structures_the_winners() {
        let (model, accel, system) = fixture();
        let engine = SearchEngine::new(&model, &accel, &system);
        let p = amped_core::Parallelism::builder().tp(8, 1).build().unwrap();
        let sweep = amped_search::Sweep::run(
            &engine,
            &[("tp8".to_string(), p)],
            &[64, 128],
            10,
        )
        .unwrap();
        let value = sweep_value(&sweep);
        let Value::Object(entries) = &value else {
            panic!("sweep artifact must be an object");
        };
        assert_eq!(entries[0].0, "schema_version");
        let csv = value.get("csv").and_then(Value::as_str).unwrap();
        assert!(csv.starts_with("batch,tp8"), "{csv}");
        let winners = value.get("winners").and_then(Value::as_array).unwrap();
        assert_eq!(winners.len(), 2);
        assert_eq!(winners[0].get("winner").and_then(Value::as_str), Some("tp8"));
    }

    #[test]
    fn search_rows_take_top_and_name_the_backend() {
        let (model, accel, system) = fixture();
        let results = SearchEngine::new(&model, &accel, &system)
            .search(&TrainingConfig::new(64, 10).unwrap())
            .unwrap();
        assert!(results.len() > 2);
        let rows = search_rows(&results, 2);
        let text = serde_json::to_string_pretty(&rows).unwrap();
        assert_eq!(text.matches("\"backend\"").count(), 2);
        assert!(text.contains("\"analytical\""));
    }

    #[test]
    fn search_value_bundles_rows_with_rejection_accounting() {
        let (model, accel, system) = fixture();
        let training = TrainingConfig::new(64, 10).unwrap();
        let (results, stats) = SearchEngine::new(&model, &accel, &system)
            .with_memory_filter(true)
            .search_with_stats(&training)
            .unwrap();
        let doc = search_value(&results, 3, &stats);
        let text = serde_json::to_string_pretty(&doc).unwrap();
        for key in [
            "\"rows\"",
            "\"memory_rejected\"",
            "\"weights\"",
            "\"gradients\"",
            "\"optimizer\"",
            "\"activations\"",
        ] {
            assert!(text.contains(key), "missing {key} in {text}");
        }
        assert_eq!(text.matches("\"backend\"").count(), 3.min(results.len()));
    }

    #[test]
    fn infer_value_is_bare_serialization_plus_leading_schema_version() {
        let (model, accel, system) = fixture();
        let p = amped_core::Parallelism::builder().tp(8, 1).build().unwrap();
        let scenario = amped_core::Scenario::new(model, accel, system, p);
        let est = amped_infer::InferEstimator::new(&scenario)
            .estimate(&amped_infer::InferenceConfig::new(128, 32, 2).unwrap())
            .unwrap();
        let value = infer_value(&est);
        let Value::Object(entries) = &value else {
            panic!("infer artifact must be an object");
        };
        assert_eq!(entries[0].0, "schema_version");
        assert_eq!(
            entries[0].1.as_str(),
            Some(amped_configs::schema::SCHEMA_VERSION)
        );
        let bare = serde_json::to_value(&est);
        let Value::Object(bare_entries) = &bare else {
            panic!("infer estimate serializes to an object");
        };
        assert_eq!(&entries[1..], bare_entries.as_slice());
    }

    #[test]
    fn serving_search_value_bundles_rows_with_kv_accounting() {
        let (model, accel, system) = fixture();
        let request = amped_infer::InferenceConfig::new(128, 32, 1).unwrap();
        let (results, stats) = amped_search::ServingSearch::new(&model, &accel, &system)
            .search_with_stats(&request)
            .unwrap();
        assert!(!results.is_empty());
        let doc = serving_search_value(&results, 3, &stats);
        let Value::Object(entries) = &doc else {
            panic!("serving artifact must be an object");
        };
        assert_eq!(entries[0].0, "schema_version");
        let text = serde_json::to_string_pretty(&doc).unwrap();
        for key in [
            "\"workload\"",
            "\"rows\"",
            "\"ttft_s\"",
            "\"tpot_s\"",
            "\"tokens_per_sec\"",
            "\"memory_rejected\"",
            "\"kv_cache\"",
            "\"pareto\"",
        ] {
            assert!(text.contains(key), "missing {key} in {text}");
        }
        // The latency winner leads and sits on the Pareto front.
        let rows = doc.get("rows").and_then(Value::as_array).unwrap();
        assert_eq!(rows[0].get("pareto"), Some(&Value::Bool(true)));
    }

    #[test]
    fn recommend_value_carries_the_evidence() {
        let (model, accel, system) = fixture();
        let rec = SearchEngine::new(&model, &accel, &system)
            .with_memory_filter(true)
            .recommend(&TrainingConfig::new(64, 10).unwrap())
            .unwrap()
            .expect("fixture has a feasible mapping");
        let text = serde_json::to_string_pretty(&recommend_value(&rec)).unwrap();
        for key in ["\"best\"", "\"alternatives\"", "\"diagnostics\"", "\"tornado\""] {
            assert!(text.contains(key), "missing {key} in {text}");
        }
    }
}
