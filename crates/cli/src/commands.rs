//! Subcommand implementations for the `amped` binary.
//!
//! Every command returns `amped_core::Result<String>`: user mistakes become
//! [`Error::Usage`], unreadable files become [`Error::Io`], and model-layer
//! failures propagate typed — `main` maps them all to a non-zero exit.

use std::sync::Arc;

use amped_configs::pipeline::{FlagReader, FlagSet, Resolution, ScenarioDraft, Source};
use amped_configs::registry;
use amped_configs::scenario::{FailureDomainsSection, ResilienceSection, ResolvedScenario};
use amped_core::{
    AnalyticalBackend, CorrelatedReport, CorrelatedResilience, CostBackend, Error, Estimator,
    ObservedBackend, Parallelism, ResilienceReport, Result, DEFAULT_NODE_MTBF_HOURS,
};
use amped_infer::{AnalyticalInferBackend, InferBackend, ObservedInferBackend};
use amped_memory::{MemoryModel, OptimizerSpec};
use amped_obs::Observer;
use amped_report::Table;
use amped_search::{
    placement_for, DomainGoodput, EnumerationOptions, GoodputOptions, PlacementChoice,
    SearchEngine, ServingSearch, ServingSweepOptions, Sweep,
};
use amped_sim::{FaultPlan, SimBackend, SimConfig};

use crate::args::Args;

const HELP: &str = "\
amped — analytical model for performance in distributed training of transformers

usage: amped <command> [flags]

commands:
  presets                     list model, accelerator and scenario presets
  schema                      print the versioned scenario schema (JSON):
                              every section, field, type and flag mapping
  estimate                    predict training time for one mapping
  infer                       price a serving workload: TTFT, TPOT, request
                              latency, tokens/s and KV-cache footprint
  detail                      per-layer attribution of an estimate
  search                      rank all parallelism mappings on a system
                              (--workload infer ranks serving mappings)
  recommend                   best mapping + lint + knob leverage in one shot
  sweep                       batch-size sweep over named mappings (CSV)
  simulate                    discrete-event simulation of one iteration
  trace                       simulate and emit Chrome-trace JSON
  memory                      per-device memory footprint of a mapping
  energy                      energy, cost and CO2 of a run
  resilience                  expected time under failures (checkpoint/restart)
  sensitivity                 which knob moves the training time most
  check                       lint a launch configuration for footguns
  serve                       long-lived HTTP service answering estimate/
                              search/recommend/sweep/resilience queries
  loadtest                    replay concurrent mixed traffic against a
                              running server; write BENCH_serve.json
  help                        this text

scenario flags (every command below resolves its scenario through one
layered pipeline — built-in defaults < --preset < --config < flags — the
same precedence the HTTP API applies to ?preset=, request body, and query
parameters):
  --preset NAME               start from a named scenario preset
                              (see `amped presets`, kind `scenario`)
  --config FILE               scenario file overlay (JSON; fields not set
                              in the file keep their lower-layer values)
  --dump-resolved             print the resolved scenario with per-field
                              provenance instead of running the command
  --model NAME                model preset (see `amped presets`)
  --accel NAME                accelerator preset (v100|p100|a100|h100)
  --nodes N                   number of nodes                  [default 1]
  --per-node N                accelerators per node            [default 8]
  --nics N                    NICs per node                    [default per-node]
  --intra-gbps G              intra-node bandwidth, Gbit/s     [default 2400]
  --inter-gbps G              per-NIC bandwidth, Gbit/s        [default 200]
  --tp I[,X] --pp I[,X] --dp I[,X]   intra,inter parallel degrees
  --batch B                   global batch size                [default 512]
  --batches N                 number of batches                [default 1]
  --microbatches N            explicit microbatch count
  --eff E                     constant efficiency in (0,1]
  --bits B                    uniform precision in bits        [default 16]
  --recompute                 enable activation recomputation
  --json                      machine-readable output
                              (estimate/search/recommend/sweep/resilience)
  --top K                     rows to print for search         [default 10]
  --jobs N                    worker threads for search/recommend/sweep
                              (0 = one per CPU)                [default 0]
  --prune                     skip search candidates that cannot beat the
                              best time seen (same winner, fewer rows)
  --backend NAME              cost backend for estimate/sweep:
                              analytical | sim      [default analytical]
  --refine-sim K              search/recommend: re-rank the analytical top K
                              through the simulator             [default 0]
  --memory-filter             search only: drop candidates whose footprint
                              does not fit device memory
  --no-batch                  search only: evaluate candidates one at a time
                              instead of through the batched fast path
                              (results are bit-identical either way)

observability flags (estimate/sweep/search/simulate/resilience):
  --metrics-out FILE          write a JSON run report: per-phase timings,
                              search counters, cache hit rates, DES internals,
                              per-device busy fractions
  --trace-out FILE            write Chrome-trace JSON (load in Perfetto):
                              search spans per worker thread; on simulate, the
                              device timeline (pid = pipeline stage,
                              tid = device, checkpoint/recompute categories)
  -v                          append a human-readable metrics summary
                              (instrumentation is off unless one of these is
                              given, and never changes any result)

serving flags (infer; search with --workload infer — they resolve the
scenario's `inference` section through the same layered pipeline as
every other flag family):
  --prompt N                  prompt (prefill) tokens          [default 512]
  --decode N                  generated tokens per request     [default 128]
  --serve-batch B             concurrent sequences per replica [default 1]
  --kv-bits B                 KV-cache precision in bits       [default 16]
  --workload NAME             search objective: train | infer
                              (infer ranks by request latency and flags the
                              TTFT/TPOT/throughput/memory Pareto frontier)
                              [default train]
  --max-serve-batch B         search --workload infer: top of the
                              power-of-two batch ladder swept per mapping
                              [default 64]

resilience flags (resilience; --mtbf also on estimate, --goodput on
search/recommend, --seed on resilience/simulate, --stragglers on simulate):
  --mtbf HOURS                per-node mean time between failures
                              (resilience default 4380 = 6 months)
  --restart S                 restart cost after a failure    [default 300]
  --ckpt-gbps G               checkpoint write bandwidth per device, Gbit/s
                              [default 16 = 2 GB/s]
  --ckpt-interval S           fixed checkpoint interval (default: Young/Daly)
  --goodput [HOURS]           search/recommend: rank by expected time under
                              failures (MTBF defaults to 4380 h)
  --seed N                    simulate/resilience: inject seeded faults and
                              replay the whole run (with --batches)
  --stragglers N[xF]          simulate only: N random stragglers slowed by
                              factor F                       [default F 1.5]

failure-domain flags (resilience; search/recommend when --goodput is on —
they extend the node-failure model with correlated rack/pod outages, spot
preemption and elastic shrink/regrow recovery):
  --domains N[,R]             domain tree shape: nodes per rack, racks per
                              pod                            [default 8,4]
  --rack-mtbf HOURS           per-rack mean time between outages
  --pod-mtbf HOURS            per-pod mean time between outages
  --preemption-mtbf HOURS     per-node spot preemption MTBF (survivable
                              under elastic recovery)
  --regrow-delay S            capacity-regrow delay after a survivable
                              outage                         [default 600]
  --placement NAME            device layout onto the tree: auto |
                              replica-major | stage-major    [default auto]

serve flags (serve only; request bodies are scenario JSON files, responses
the same artifacts the --json flags print):
  --port P                    TCP port on 127.0.0.1 (0 = ephemeral)
                              [default 8750]
  --jobs N                    worker threads (0 = one per CPU)  [default 0]
  --queue-depth N             bounded request queue; beyond it requests get
                              429 + Retry-After                [default 64]
  --timeout-ms MS             per-request deadline from enqueue (504 past
                              it)                           [default 30000]
  --access-log FILE           append one JSON line per request: endpoint,
                              status, bytes, queue/handler microseconds
  -v                          serve: mirror the access log to stderr
                              (per-endpoint latency histograms are always
                              on — GET /v1/metrics?format=prometheus)

loadtest flags (loadtest only; drives a live `amped serve` instance):
  --addr HOST:PORT            target server             [default 127.0.0.1:8750]
  --clients N                 concurrent client threads          [default 4]
  --requests N                requests per client                [default 8]
  --preset NAME               scenario preset each request carries
                              [default dev-small]
  --out FILE                  report path           [default BENCH_serve.json]
  --json                      print the report JSON instead of the table
";

/// The cost backend selected by `--backend` (analytical when absent).
/// With an observer, evaluations are recorded: the simulator backend
/// self-instruments (spans, `backend.sim.evaluations` and the `sim.des.*`
/// series), the analytical one goes through [`ObservedBackend`].
fn backend_for(args: &Args, observer: Option<Arc<Observer>>) -> Result<Box<dyn CostBackend>> {
    match args.get_or("backend", "analytical") {
        "analytical" => Ok(match observer {
            Some(obs) => Box::new(ObservedBackend::new(Box::new(AnalyticalBackend), obs)),
            None => Box::new(AnalyticalBackend),
        }),
        "sim" => Ok(match observer {
            Some(obs) => Box::new(SimBackend::new().with_observer(obs)),
            None => Box::new(SimBackend::new()),
        }),
        other => Err(Error::usage(format!(
            "unknown backend `{other}`; use analytical|sim"
        ))),
    }
}

/// The `--metrics-out` / `--trace-out` / `-v` observability session of one
/// command invocation.
///
/// When none of the three flags is given the session is disabled:
/// [`ObsSession::observer`] returns `None`, nothing is ever attached to the
/// engines, and the command runs exactly the uninstrumented code path —
/// the zero-overhead-when-disabled contract. When enabled, instrumentation
/// is passive (clock reads and atomic bumps), so results are bit-identical
/// either way.
struct ObsSession {
    observer: Arc<Observer>,
    metrics_out: Option<String>,
    trace_out: Option<String>,
    verbose: bool,
}

impl ObsSession {
    fn from_args(args: &Args) -> Self {
        ObsSession {
            observer: Arc::new(Observer::new()),
            metrics_out: args.get("metrics-out").map(String::from),
            trace_out: args.get("trace-out").map(String::from),
            verbose: args.switch("v") || args.switch("verbose"),
        }
    }

    fn enabled(&self) -> bool {
        self.metrics_out.is_some() || self.trace_out.is_some() || self.verbose
    }

    /// The observer to attach to engines — `None` when the session is
    /// disabled, so disabled runs never pay even the passive recording.
    fn observer(&self) -> Option<Arc<Observer>> {
        self.enabled().then(|| Arc::clone(&self.observer))
    }

    /// Write `--metrics-out` / `--trace-out` files and append the `-v`
    /// summary to `out`. `trace_json` overrides the observer-span trace
    /// (the simulator commands export their device timeline instead).
    fn finish_with(
        &self,
        command: &str,
        trace_json: Option<String>,
        out: &mut String,
    ) -> Result<()> {
        if !self.enabled() {
            return Ok(());
        }
        let report = self.observer.report(command);
        if let Some(path) = &self.metrics_out {
            std::fs::write(path, report.to_json())
                .map_err(|e| Error::io(path, e.to_string()))?;
        }
        if let Some(path) = &self.trace_out {
            let json = trace_json.unwrap_or_else(|| self.observer.chrome_trace());
            std::fs::write(path, json).map_err(|e| Error::io(path, e.to_string()))?;
        }
        if self.verbose {
            out.push_str("\n\n");
            out.push_str(&report.summary());
        }
        Ok(())
    }

    fn finish(&self, command: &str, out: &mut String) -> Result<()> {
        self.finish_with(command, None, out)
    }
}

/// Route a parsed command line to its implementation.
pub fn dispatch(args: &Args) -> Result<String> {
    match args.command.as_deref() {
        None | Some("help") => Ok(HELP.to_string()),
        Some("presets") => presets(),
        Some("schema") => to_json(&amped_configs::schema::schema_value()),
        Some("estimate") => estimate(args),
        Some("infer") => infer(args),
        Some("detail") => detail(args),
        Some("search") => search(args),
        Some("recommend") => recommend(args),
        Some("sweep") => sweep(args),
        Some("simulate") => simulate(args),
        Some("trace") => trace(args),
        Some("memory") => memory(args),
        Some("energy") => energy(args),
        Some("resilience") => resilience(args),
        Some("sensitivity") => sensitivity(args),
        Some("check") => check(args),
        Some("serve") => serve(args),
        Some("loadtest") => loadtest(args),
        Some(other) => Err(Error::usage(format!(
            "unknown command `{other}`; try `amped help`"
        ))),
    }
}

/// Pretty-print a serializable value, mapping the (practically
/// unreachable) serializer failure to a typed error.
fn to_json<T: serde::Serialize>(value: &T) -> Result<String> {
    serde_json::to_string_pretty(value).map_err(|e| Error::invalid("json", e.to_string()))
}

fn presets() -> Result<String> {
    let mut t = Table::new(["kind", "name", "details"]);
    for name in registry::model_names() {
        let m = registry::model(name).expect("listed names resolve");
        t.row([
            "model".to_string(),
            name.to_string(),
            format!(
                "{} layers, h={}, {} heads, {:.1}B params",
                m.num_layers(),
                m.hidden_size(),
                m.num_heads(),
                m.total_parameters() / 1e9
            ),
        ]);
    }
    for name in registry::accelerator_names() {
        let a = registry::accelerator(name).expect("listed names resolve");
        t.row([
            "accel".to_string(),
            name.to_string(),
            format!(
                "{:.0} TFLOP/s fp16 peak, {:.0} GiB",
                a.peak_flops_per_sec(16) / 1e12,
                a.memory_bytes() / (1u64 << 30) as f64
            ),
        ]);
    }
    for name in registry::scenario_names() {
        t.row([
            "scenario".to_string(),
            name.to_string(),
            "complete scenario overlay for --preset / ?preset=".to_string(),
        ]);
    }
    Ok(t.to_ascii())
}

/// [`Args`] as a [`FlagReader`], so the configs pipeline can collect the
/// scenario flags without the CLI touching raw JSON sections.
struct ArgsReader<'a>(&'a Args);

impl FlagReader for ArgsReader<'_> {
    fn value(&self, key: &str) -> Option<String> {
        self.0.get(key).map(String::from)
    }

    fn switch(&self, key: &str) -> bool {
        self.0.switch(key)
    }
}

/// Resolve a command's scenario through the layered pipeline:
/// built-in defaults < `base` (command-specific defaults) < `--preset`
/// < `--config` < flags. The identical stacking runs in `amped-serve`
/// for `?preset=`, the request body and query parameters, which is what
/// keeps the two front-ends byte-identical.
fn resolution(
    args: &Args,
    set: FlagSet,
    base: Option<serde_json::Value>,
) -> Result<Resolution> {
    let mut draft = ScenarioDraft::new();
    if let Some(doc) = base {
        draft.push(Source::Defaults, doc)?;
    }
    if let Some(name) = args.get("preset") {
        draft.preset(name)?;
    }
    if let Some(path) = args.get("config") {
        let json = std::fs::read_to_string(path).map_err(|e| Error::io(path, e.to_string()))?;
        draft.push_json(Source::File, &json)?;
    }
    draft.flags(&ArgsReader(args), set)?;
    draft.resolve()
}

/// The `--dump-resolved` artifact when the switch is given: the merged
/// scenario document plus per-field provenance, instead of running the
/// command.
fn dump_resolved(args: &Args, r: &Resolution) -> Option<Result<String>> {
    args.switch("dump-resolved").then(|| to_json(&r.dump_value()))
}

/// The bytes each device writes per checkpoint: its weight + optimizer
/// shard under this scenario's mapping.
fn per_device_ckpt_bytes(s: &ResolvedScenario) -> f64 {
    let ub = s.parallelism.microbatch_size(s.training.global_batch());
    let n_ub = s.parallelism.num_microbatches(s.training.global_batch());
    MemoryModel::new(&s.model, &s.parallelism)
        .with_precision(s.precision)
        .with_optimizer(OptimizerSpec::adam_mixed_precision())
        .footprint(ub, n_ub)
        .checkpoint_bytes()
}

/// The checkpoint/restart expected-time report for a run whose fault-free
/// duration is `fault_free_s`.
fn expected_time_report(
    s: &ResolvedScenario,
    section: &ResilienceSection,
    fault_free_s: f64,
) -> Result<ResilienceReport> {
    section
        .params(s.system.num_nodes(), per_device_ckpt_bytes(s))?
        .report(fault_free_s)
}

/// The parsed `placement` spelling of a `failure_domains` section (the
/// resolver already vetted it; this converts to the enumerator's type).
fn placement_choice(fd: &FailureDomainsSection) -> Result<PlacementChoice> {
    PlacementChoice::parse(&fd.placement).ok_or_else(|| {
        Error::usage(format!(
            "unknown layout `{}`; use auto, replica-major or stage-major",
            fd.placement
        ))
    })
}

/// The correlated expected-time report when the scenario carries a
/// `failure_domains` section: the rack/pod tree, this mapping's
/// deterministic placement onto it, and elastic recovery, priced over the
/// independent node-failure base. `None` when no section is present —
/// the historical flat model stands alone.
fn correlated_report(
    s: &ResolvedScenario,
    section: &ResilienceSection,
    fault_free_s: f64,
) -> Result<Option<CorrelatedReport>> {
    let Some(fd) = &s.failure_domains else {
        return Ok(None);
    };
    let tree = fd.tree(s.system.num_nodes())?;
    let placement = placement_for(&s.parallelism, &s.system, &tree, placement_choice(fd)?);
    let base = section.params(s.system.num_nodes(), per_device_ckpt_bytes(s))?;
    let params = CorrelatedResilience::new(base, tree, placement)?.with_elastic(fd.elastic()?);
    Ok(Some(params.report(fault_free_s)?))
}

/// The `--goodput` expected-time options for search/recommend: the MTBF,
/// restart and checkpoint knobs from the flags, plus the scenario's
/// `failure_domains` section when one resolved (domain flags are live on
/// these commands whenever `--goodput` is).
fn goodput_options(args: &Args, s: &ResolvedScenario) -> Result<GoodputOptions> {
    let mtbf_hours: f64 = args.parse_or("goodput", DEFAULT_NODE_MTBF_HOURS)?;
    let mut opts = GoodputOptions::new(mtbf_hours * 3600.0);
    opts.restart_s = args.parse_or("restart", opts.restart_s)?;
    let gbps: f64 = args.parse_or("ckpt-gbps", 16.0)?;
    opts.ckpt_write_bytes_per_s = gbps * 1e9 / 8.0;
    if let Some(v) = args.get("ckpt-interval") {
        opts.interval_s = Some(
            v.parse()
                .map_err(|_| Error::usage(format!("invalid --ckpt-interval: {v}")))?,
        );
    }
    if let Some(fd) = &s.failure_domains {
        opts = opts.with_failure_domains(DomainGoodput {
            tree: fd.tree(s.system.num_nodes())?,
            elastic: Some(fd.elastic()?),
            placement: placement_choice(fd)?,
        });
    }
    Ok(opts)
}

fn estimate(args: &Args) -> Result<String> {
    let r = resolution(args, FlagSet::with_resilience(), None)?;
    if let Some(dump) = dump_resolved(args, &r) {
        return dump;
    }
    let s = &r.scenario;
    let obs = ObsSession::from_args(args);
    let backend = backend_for(args, obs.observer())?;
    let estimate = backend.evaluate(&s.to_scenario(), &s.training)?;
    // A resilience section (--mtbf, a preset, or a scenario file) layers
    // the analytical checkpoint/restart model on top of the fault-free
    // estimate.
    let report = match &s.resilience {
        Some(section) => Some(expected_time_report(s, section, estimate.total_time.get())?),
        None => None,
    };
    if args.switch("json") {
        // Observability files are still written; the -v summary never
        // pollutes machine-readable output.
        obs.finish("estimate", &mut String::new())?;
        return to_json(&amped_report::artifacts::estimate_value(
            &estimate,
            report.as_ref(),
        ));
    }
    let mut out = format!(
        "{} on {} x {} ({} nodes x {}/node) via {} backend\n{}",
        s.model.name(),
        s.system.total_accelerators(),
        s.accelerator.name(),
        s.system.num_nodes(),
        s.system.accels_per_node(),
        backend.name(),
        estimate
    );
    if let Some(r) = &report {
        out.push_str(&format!("\n{r}"));
    }
    obs.finish("estimate", &mut out)?;
    Ok(out)
}

fn infer(args: &Args) -> Result<String> {
    // The infer command always has an inference section to price: an
    // empty overlay just above the built-in defaults brings in the serde
    // defaults, so presets, --config and the serving flags all override
    // it through the normal layering — identically to `POST /v1/infer`.
    let base = serde_json::json!({ "inference": {} });
    let r = resolution(args, FlagSet::with_inference(), Some(base))?;
    if let Some(dump) = dump_resolved(args, &r) {
        return dump;
    }
    let s = &r.scenario;
    let obs = ObsSession::from_args(args);
    let section = s
        .inference
        .ok_or_else(|| Error::usage("infer needs an inference section"))?;
    let config = section.params()?;
    let backend: Box<dyn InferBackend> = match obs.observer() {
        Some(o) => Box::new(ObservedInferBackend::new(Box::new(AnalyticalInferBackend), o)),
        None => Box::new(AnalyticalInferBackend),
    };
    let estimate = backend.evaluate(&s.to_scenario(), &config)?;
    if args.switch("json") {
        obs.finish("infer", &mut String::new())?;
        return to_json(&amped_report::artifacts::infer_value(&estimate));
    }
    let mut out = format!(
        "{} served on {} x {} ({} nodes x {}/node) via {} backend\n\
         prompt {} + decode {} tokens @ batch {} ({}-bit KV cache)\n{}",
        s.model.name(),
        s.system.total_accelerators(),
        s.accelerator.name(),
        s.system.num_nodes(),
        s.system.accels_per_node(),
        backend.name(),
        config.prompt_tokens(),
        config.decode_tokens(),
        config.batch(),
        config.kv_bits(),
        estimate
    );
    obs.finish("infer", &mut out)?;
    Ok(out)
}

fn resilience(args: &Args) -> Result<String> {
    // The resilience command always has a section to work with: a default
    // MTBF overlay sits just above the built-in defaults, so presets,
    // files and flags all override it through the normal layering.
    let base = serde_json::json!({
        "resilience": { "node_mtbf_hours": DEFAULT_NODE_MTBF_HOURS }
    });
    let r = resolution(args, FlagSet::with_failure_domains(), Some(base))?;
    if let Some(dump) = dump_resolved(args, &r) {
        return dump;
    }
    let s = &r.scenario;
    let obs = ObsSession::from_args(args);
    let backend = backend_for(args, obs.observer())?;
    let estimate = backend.evaluate(&s.to_scenario(), &s.training)?;
    let section = s
        .resilience
        .ok_or_else(|| Error::usage("resilience needs an MTBF"))?;
    // A `failure_domains` section layers correlated rack/pod outages and
    // elastic recovery on the flat model; without one the report below is
    // the historical independent-exponential one, bit for bit.
    let correlated = correlated_report(s, &section, estimate.total_time.get())?;
    let report = match &correlated {
        Some(c) => c.flat_report(),
        None => expected_time_report(s, &section, estimate.total_time.get())?,
    };
    if args.switch("json") {
        obs.finish("resilience", &mut String::new())?;
        return to_json(&amped_report::artifacts::resilience_value(
            &estimate,
            &report,
            correlated.as_ref(),
        ));
    }
    let mut out = format!(
        "{} on {} accelerators ({} nodes, node MTBF {} h) via {} backend\n{report}",
        s.model.name(),
        s.system.total_accelerators(),
        s.system.num_nodes(),
        section.node_mtbf_hours,
        backend.name(),
    );
    if let Some(c) = &correlated {
        out.push_str(&format!("\n{c}"));
    }
    // --seed cross-checks the analytical expectation against one seeded
    // fault-injected replay in the discrete-event simulator.
    if let Some(seed) = args.get("seed") {
        let seed: u64 = seed
            .parse()
            .map_err(|_| Error::usage(format!("invalid --seed: {seed}")))?;
        let mut plan = FaultPlan::seeded(seed)
            // Node MTBF spread over the node's devices: same system-level
            // failure rate, expressed per simulated device.
            .with_device_mtbf(section.node_mtbf_s() * s.system.accels_per_node() as f64)
            .with_restart(section.restart_s)
            .with_ckpt_write_bw(section.ckpt_write_bytes_per_s());
        if let Some(interval) = section.interval_s {
            plan = plan.with_ckpt_interval(interval);
        }
        if let Some(fd) = &s.failure_domains {
            plan = plan
                .with_domain_tree(fd.tree(s.system.num_nodes())?)
                .with_regrow(fd.regrow_delay_s);
            if let Some(hours) = fd.preemption_mtbf_hours {
                plan = plan.with_preemption(hours * 3600.0);
            }
        }
        let mut cfg = SimConfig::new(&s.model, &s.accelerator, &s.system, &s.parallelism)
            .with_precision(s.precision)
            .with_efficiency(s.efficiency.clone());
        if let Some(o) = obs.observer() {
            cfg = cfg.with_observer(o);
        }
        let run =
            cfg.simulate_run(s.training.global_batch(), s.training.num_batches(), &plan)?;
        let deviation = (run.total_time_s - report.expected_s) / report.expected_s * 100.0;
        out.push_str(&format!(
            "\nseeded simulation (seed {seed}): {:.2} s total, {} failure(s), {} checkpoint(s)\n  vs analytical expectation {:.2} s ({:+.1}%)",
            run.total_time_s, run.num_failures, run.num_checkpoints, report.expected_s, deviation
        ));
        // The fault replay is the interesting trace here: training, lost
        // work, restarts and checkpoint writes per device.
        let trace_json = obs
            .trace_out
            .is_some()
            .then(|| amped_sim::trace::run_to_chrome_trace(&run, s.parallelism.pp()));
        obs.finish_with("resilience", trace_json, &mut out)?;
        return Ok(out);
    }
    obs.finish("resilience", &mut out)?;
    Ok(out)
}

fn search(args: &Args) -> Result<String> {
    match args.get_or("workload", "train") {
        "train" => search_train(args),
        "infer" => search_infer(args),
        other => Err(Error::usage(format!(
            "unknown workload `{other}`; use train|infer"
        ))),
    }
}

/// `search --workload infer`: sweep every serving mapping × batch point,
/// rank by request latency, and flag the Pareto frontier.
fn search_infer(args: &Args) -> Result<String> {
    // Same empty-section base as `infer`, so the serving flags and the
    // scenario's `inference` section shape the swept request identically
    // on both front-ends.
    let base = serde_json::json!({ "inference": {} });
    let r = resolution(args, FlagSet::with_inference(), Some(base))?;
    if let Some(dump) = dump_resolved(args, &r) {
        return dump;
    }
    let s = &r.scenario;
    let obs = ObsSession::from_args(args);
    let section = s
        .inference
        .ok_or_else(|| Error::usage("search --workload infer needs an inference section"))?;
    let request = section.params()?;
    let mut engine = ServingSearch::new(&s.model, &s.accelerator, &s.system)
        .with_precision(s.precision)
        .with_sweep(ServingSweepOptions {
            max_batch: args.parse_or("max-serve-batch", 64)?,
            ..ServingSweepOptions::default()
        })
        .with_parallelism(args.parse_or("jobs", 0)?)
        .with_pruning(args.switch("prune"));
    if let Some(o) = obs.observer() {
        engine = engine.with_observer(o);
    }
    let (results, stats) = engine.search_with_stats(&request)?;
    let top: usize = args.parse_or("top", 10)?;
    if args.switch("json") {
        obs.finish("search", &mut String::new())?;
        return to_json(&amped_report::artifacts::serving_search_value(
            &results, top, &stats,
        ));
    }
    let front = amped_search::serving_pareto_front(&results);
    let on_front = |c: &amped_search::ServingCandidate| {
        front
            .iter()
            .any(|f| std::ptr::eq::<amped_search::ServingCandidate>(*f, c))
    };
    let mut t = Table::new([
        "#", "tp", "pp", "replicas", "batch", "ttft", "tpot", "tok/s", "memory", "pareto",
    ]);
    for (i, c) in results.iter().take(top).enumerate() {
        t.row([
            format!("{}", i + 1),
            format!("{}x{}", c.parallelism.tp_intra(), c.parallelism.tp_inter()),
            format!("{}x{}", c.parallelism.pp_intra(), c.parallelism.pp_inter()),
            format!("{}", c.estimate.replicas),
            format!("{}", c.batch),
            format!("{:.3} ms", c.estimate.ttft.get() * 1e3),
            format!("{:.3} ms", c.estimate.tpot.get() * 1e3),
            format!("{:.0}", c.estimate.tokens_per_sec),
            amped_core::units::format_bytes(c.estimate.memory_total()),
            if on_front(c) { "*" } else { "" }.to_string(),
        ]);
    }
    let mut out = format!(
        "{} serving points for {} on {} accelerators \
         (prompt {} + decode {}); top {top} by request latency:\n{}",
        results.len(),
        s.model.name(),
        s.system.total_accelerators(),
        request.prompt_tokens(),
        request.decode_tokens(),
        t.to_ascii()
    );
    if stats.memory_rejected.total() > 0 {
        let rej = &stats.memory_rejected;
        out.push_str(&format!(
            "\n\n{} point(s) dropped by the KV-capacity filter; first failing \
             inequality: weights {}, kv_cache {}",
            rej.total(),
            rej.weights,
            rej.kv_cache
        ));
    }
    obs.finish("search", &mut out)?;
    Ok(out)
}

fn search_train(args: &Args) -> Result<String> {
    // --goodput [HOURS] ranks by expected time under failures instead of
    // the fault-free total. With it on, the failure-domain flags are live
    // too, and a default-MTBF resilience base satisfies the domain
    // section's prerequisite through the normal layering.
    let goodput_on = args.switch("goodput") || args.get("goodput").is_some();
    let mtbf_hours: f64 = args.parse_or("goodput", DEFAULT_NODE_MTBF_HOURS)?;
    let set = FlagSet {
        failure_domains: goodput_on,
        ..FlagSet::default()
    };
    let base = goodput_on.then(|| {
        serde_json::json!({
            "resilience": { "node_mtbf_hours": mtbf_hours }
        })
    });
    let r = resolution(args, set, base)?;
    if let Some(dump) = dump_resolved(args, &r) {
        return dump;
    }
    let s = &r.scenario;
    let obs = ObsSession::from_args(args);
    let mut engine = SearchEngine::new(&s.model, &s.accelerator, &s.system)
        .with_precision(s.precision)
        .with_efficiency(s.efficiency.clone())
        .with_engine_options(s.options)
        .with_enumeration(EnumerationOptions::default())
        .with_parallelism(args.parse_or("jobs", 0)?)
        .with_pruning(args.switch("prune"))
        .with_batching(!args.switch("no-batch"))
        .with_memory_filter(args.switch("memory-filter"))
        .with_refine_sim(args.parse_or("refine-sim", 0)?);
    if let Some(o) = obs.observer() {
        engine = engine.with_observer(o);
    }
    if goodput_on {
        engine = engine.with_goodput(goodput_options(args, s)?);
    }
    let (results, stats) = engine.search_with_stats(&s.training)?;
    let top: usize = args.parse_or("top", 10)?;
    let backend_of = |c: &amped_search::Candidate| {
        if c.refined.is_some() {
            "sim"
        } else {
            "analytical"
        }
    };
    if args.switch("json") {
        obs.finish("search", &mut String::new())?;
        return to_json(&amped_report::artifacts::search_value(&results, top, &stats));
    }
    let mut t = Table::new(["#", "tp", "pp", "dp", "time", "TFLOP/s/GPU", "fits mem", "backend"]);
    for (i, c) in results.iter().take(top).enumerate() {
        t.row([
            format!("{}", i + 1),
            format!("{}x{}", c.parallelism.tp_intra(), c.parallelism.tp_inter()),
            format!("{}x{}", c.parallelism.pp_intra(), c.parallelism.pp_inter()),
            format!("{}x{}", c.parallelism.dp_intra(), c.parallelism.dp_inter()),
            c.ranking_estimate().total_time.to_string(),
            format!("{:.1}", c.ranking_estimate().tflops_per_gpu),
            if c.fits_memory { "yes" } else { "NO" }.to_string(),
            backend_of(c).to_string(),
        ]);
    }
    let mut out = format!(
        "{} candidate mappings for {} on {} accelerators; top {top}:\n{}",
        results.len(),
        s.model.name(),
        s.system.total_accelerators(),
        t.to_ascii()
    );
    if stats.memory_rejected.total() > 0 {
        let r = &stats.memory_rejected;
        out.push_str(&format!(
            "\n\n{} mapping(s) dropped by the memory filter; first failing inequality: \
             weights {}, gradients {}, optimizer {}, activations {}",
            r.total(),
            r.weights,
            r.gradients,
            r.optimizer,
            r.activations
        ));
    }
    if goodput_on {
        let shown = top.min(results.len());
        out.push_str(&format!(
            "\n\nexpected time under failures (ranking objective):\n{}",
            amped_report::resilience_table(&results[..shown]).to_ascii()
        ));
    }
    obs.finish("search", &mut out)?;
    Ok(out)
}

fn simulate(args: &Args) -> Result<String> {
    let r = resolution(args, FlagSet::default(), None)?;
    if let Some(dump) = dump_resolved(args, &r) {
        return dump;
    }
    let s = &r.scenario;
    let obs = ObsSession::from_args(args);
    let mut cfg = SimConfig::new(&s.model, &s.accelerator, &s.system, &s.parallelism)
        .with_precision(s.precision)
        .with_efficiency(s.efficiency.clone());
    if let Some(o) = obs.observer() {
        cfg = cfg.with_observer(o);
    }
    // --seed switches to a fault-injected whole-run replay.
    if let Some(seed) = args.get("seed") {
        let seed: u64 = seed
            .parse()
            .map_err(|_| Error::usage(format!("invalid --seed: {seed}")))?;
        let mut plan = FaultPlan::seeded(seed).with_restart(args.parse_or("restart", 300.0)?);
        if let Some((count, factor)) = args.straggler_spec("stragglers")? {
            plan = plan.with_random_stragglers(count, factor);
        }
        if let Some(v) = args.get("mtbf") {
            let hours: f64 = v
                .parse()
                .map_err(|_| Error::usage(format!("invalid --mtbf: {v}")))?;
            plan = plan.with_device_mtbf(hours * 3600.0 * s.system.accels_per_node() as f64);
        }
        if let Some(v) = args.get("ckpt-interval") {
            let interval: f64 = v
                .parse()
                .map_err(|_| Error::usage(format!("invalid --ckpt-interval: {v}")))?;
            plan = plan.with_ckpt_interval(interval);
        }
        let gbps: f64 = args.parse_or("ckpt-gbps", 16.0)?;
        plan = plan.with_ckpt_write_bw(gbps * 1e9 / 8.0);
        let run = cfg.simulate_run(s.training.global_batch(), s.training.num_batches(), &plan)?;
        let mut out = format!(
            "fault-injected run (seed {seed}): {:.4} s over {} batches\n  \
             fault-free: {:.4} s   checkpoints: {} ({:.4} s)   rework: {:.4} s\n  \
             failures: {}   ckpt interval: {} iteration(s)   goodput: {:.1}%",
            run.total_time_s,
            s.training.num_batches(),
            run.fault_free_time_s,
            run.num_checkpoints,
            run.checkpoint_time_s,
            run.rework_time_s,
            run.num_failures,
            run.ckpt_interval_iters,
            run.goodput() * 100.0
        );
        // Export the replay itself: train/ckpt/lost/restart slices per
        // device, pid = pipeline stage.
        let trace_json = obs
            .trace_out
            .is_some()
            .then(|| amped_sim::trace::run_to_chrome_trace(&run, s.parallelism.pp()));
        obs.finish_with("simulate", trace_json, &mut out)?;
        return Ok(out);
    }
    if args.get("stragglers").is_some() || args.get("mtbf").is_some() {
        return Err(Error::usage(
            "--stragglers/--mtbf on simulate need --seed N to draw the fault plan",
        ));
    }
    let result = cfg.simulate_iteration(s.training.global_batch())?;
    let mut out = format!(
        "simulated iteration: {:.4} s  (mean utilization {:.1}%)\n",
        result.iteration_time,
        result.mean_utilization * 100.0
    );
    let devices = result.timeline.num_devices().min(16);
    for d in 0..devices {
        out.push_str(&format!(
            "dev {d:>2} |{}| {:.0}%\n",
            result.timeline.ascii_trace(d, 60),
            result.device_stats[d].utilization(result.iteration_time) * 100.0
        ));
    }
    // The device timeline, grouped by pipeline stage in Perfetto.
    let trace_json = obs.trace_out.is_some().then(|| {
        amped_sim::trace::to_chrome_trace_staged(&result.timeline, s.parallelism.pp())
    });
    obs.finish_with("simulate", trace_json, &mut out)?;
    Ok(out)
}

fn detail(args: &Args) -> Result<String> {
    let r = resolution(args, FlagSet::default(), None)?;
    if let Some(dump) = dump_resolved(args, &r) {
        return dump;
    }
    let s = &r.scenario;
    let detailed = Estimator::new(&s.model, &s.accelerator, &s.system, &s.parallelism)
        .with_precision(s.precision)
        .with_efficiency(s.efficiency.clone())
        .estimate_detailed(&s.training)?;
    let mut out = format!("{detailed}

hottest layers:
");
    for l in detailed.hottest_layers(5) {
        out.push_str(&format!(
            "  layer {:>3}: {:.3e} s ({:.1}% of the iteration)
",
            l.index,
            l.total(),
            l.total() / detailed.estimate.time_per_iteration.get() * 100.0
        ));
    }
    Ok(out)
}

fn recommend(args: &Args) -> Result<String> {
    // --goodput wires in exactly as on `search`: the recommendation rides
    // on the same ranking, so the winner is the expected-time-best
    // mapping under the (possibly domain-correlated) failure model.
    let goodput_on = args.switch("goodput") || args.get("goodput").is_some();
    let mtbf_hours: f64 = args.parse_or("goodput", DEFAULT_NODE_MTBF_HOURS)?;
    let set = FlagSet {
        failure_domains: goodput_on,
        ..FlagSet::default()
    };
    let base = goodput_on.then(|| {
        serde_json::json!({
            "resilience": { "node_mtbf_hours": mtbf_hours }
        })
    });
    let r = resolution(args, set, base)?;
    if let Some(dump) = dump_resolved(args, &r) {
        return dump;
    }
    let s = &r.scenario;
    let obs = ObsSession::from_args(args);
    // --refine-sim K re-ranks the analytical top K through the simulator
    // before picking the winner, exactly as on `search`.
    let mut engine = SearchEngine::new(&s.model, &s.accelerator, &s.system)
        .with_precision(s.precision)
        .with_efficiency(s.efficiency.clone())
        .with_engine_options(s.options)
        .with_memory_filter(true)
        .with_parallelism(args.parse_or("jobs", 0)?)
        .with_refine_sim(args.parse_or("refine-sim", 0)?);
    if let Some(o) = obs.observer() {
        engine = engine.with_observer(o);
    }
    if goodput_on {
        engine = engine.with_goodput(goodput_options(args, s)?);
    }
    match engine.recommend(&s.training)? {
        Some(rec) => {
            if args.switch("json") {
                obs.finish("recommend", &mut String::new())?;
                return to_json(&amped_report::artifacts::recommend_value(&rec));
            }
            let mut out = rec.to_string();
            obs.finish("recommend", &mut out)?;
            Ok(out)
        }
        None => Err(Error::usage(
            "no memory-feasible mapping; shard more (TP/PP), enable recomputation, or use bigger devices",
        )),
    }
}

fn sweep(args: &Args) -> Result<String> {
    let r = resolution(args, FlagSet::default(), None)?;
    if let Some(dump) = dump_resolved(args, &r) {
        return dump;
    }
    let s = &r.scenario;
    // Compare the canonical inter-node strategies at the given node shape,
    // TP filling the node, across a batch ladder.
    let per_node = s.system.accels_per_node();
    let nodes = s.system.num_nodes();
    let mut mappings: Vec<(String, Parallelism)> = Vec::new();
    let dp = Parallelism::builder().tp(per_node, 1).dp(1, nodes).build()?;
    mappings.push(("dp-inter".into(), dp));
    if nodes > 1 {
        let pp_x = nodes.min(s.model.num_layers());
        if nodes % pp_x == 0 {
            let pp = Parallelism::builder()
                .tp(per_node, 1)
                .pp(1, pp_x)
                .dp(1, nodes / pp_x)
                .build()?;
            mappings.push(("pp-inter".into(), pp));
        }
        if s.model.num_heads() >= 2 * per_node && nodes % 2 == 0 {
            let tp = Parallelism::builder()
                .tp(per_node, 2)
                .dp(1, nodes / 2)
                .build()?;
            mappings.push(("tp-inter2".into(), tp));
        }
    }
    let base = s.training.global_batch();
    let batches: Vec<usize> = [1usize, 2, 4].iter().map(|m| base * m).collect();
    let obs = ObsSession::from_args(args);
    let mut engine = SearchEngine::new(&s.model, &s.accelerator, &s.system)
        .with_precision(s.precision)
        .with_efficiency(s.efficiency.clone())
        .with_engine_options(s.options)
        .with_parallelism(args.parse_or("jobs", 0)?);
    if let Some(o) = obs.observer() {
        engine = engine.with_observer(o);
    }
    // The default analytical sweep tunes microbatches per cell; an explicit
    // backend prices the mappings exactly as constructed.
    let sweep = match args.get("backend") {
        None => Sweep::run(&engine, &mappings, &batches, s.training.num_batches()),
        Some(_) => {
            let backend = backend_for(args, obs.observer())?;
            Sweep::run_backend(
                &engine,
                backend.as_ref(),
                &mappings,
                &batches,
                s.training.num_batches(),
            )
        }
    }?;
    if args.switch("json") {
        obs.finish("sweep", &mut String::new())?;
        return to_json(&amped_report::artifacts::sweep_value(&sweep));
    }
    let mut out = amped_report::artifacts::sweep_text(&sweep);
    obs.finish("sweep", &mut out)?;
    Ok(out)
}

fn trace(args: &Args) -> Result<String> {
    let r = resolution(args, FlagSet::default(), None)?;
    if let Some(dump) = dump_resolved(args, &r) {
        return dump;
    }
    let s = &r.scenario;
    let result = SimConfig::new(&s.model, &s.accelerator, &s.system, &s.parallelism)
        .with_precision(s.precision)
        .with_efficiency(s.efficiency.clone())
        .simulate_iteration(s.training.global_batch())?;
    Ok(amped_sim::trace::to_chrome_trace(&result.timeline))
}

fn energy(args: &Args) -> Result<String> {
    use amped_energy::{CostModel, EnergyEstimate, PowerModel};
    let r = resolution(args, FlagSet::default(), None)?;
    if let Some(dump) = dump_resolved(args, &r) {
        return dump;
    }
    let s = &r.scenario;
    let estimate = Estimator::new(&s.model, &s.accelerator, &s.system, &s.parallelism)
        .with_precision(s.precision)
        .with_efficiency(s.efficiency.clone())
        .estimate(&s.training)?;
    let power = PowerModel::from_accelerator(&s.accelerator);
    let energy =
        EnergyEstimate::from_estimate(&estimate, &power, s.training.num_batches());
    let cost = CostModel::cloud_a100();
    Ok(format!(
        "run: {} batches of {} on {} accelerators, {:.2} days
         energy: {energy}
         cost:   ${:.0} (cloud rates)   CO2: {:.1} t",
        s.training.num_batches(),
        s.training.global_batch(),
        estimate.total_workers,
        estimate.days(),
        cost.usd(&energy, estimate.total_workers, estimate.total_time.get()),
        cost.kg_co2(&energy) / 1000.0
    ))
}

fn sensitivity(args: &Args) -> Result<String> {
    use amped_core::SensitivityAnalysis;
    let r = resolution(args, FlagSet::default(), None)?;
    if let Some(dump) = dump_resolved(args, &r) {
        return dump;
    }
    let s = &r.scenario;
    let factor: f64 = args.parse_or("factor", 2.0)?;
    let analysis = SensitivityAnalysis::new(&s.model, &s.accelerator, &s.system, &s.parallelism)
        .with_precision(s.precision)
        .with_efficiency(s.efficiency.clone());
    let tornado = analysis.tornado(factor, &s.training)?;
    let mut t = Table::new(["knob", &format!("{factor}x better"), "speedup"]);
    for r in &tornado {
        t.row([
            r.knob.name().to_string(),
            format!("{:.3e} -> {:.3e} s/sample", r.baseline_per_sample, r.improved_per_sample),
            format!("{:+.1}%", r.speedup() * 100.0),
        ]);
    }
    Ok(format!(
        "sensitivity of {} on {} accelerators (each knob improved {factor}x):
{}",
        s.model.name(),
        s.system.total_accelerators(),
        t.to_ascii()
    ))
}

fn check(args: &Args) -> Result<String> {
    let r = resolution(args, FlagSet::default(), None)?;
    if let Some(dump) = dump_resolved(args, &r) {
        return dump;
    }
    let s = &r.scenario;
    let diagnostics =
        amped_core::check_scenario(&s.model, &s.system, &s.parallelism, &s.training);
    if diagnostics.is_empty() {
        return Ok("configuration looks sane: no warnings".to_string());
    }
    let mut out = format!("{} finding(s):
", diagnostics.len());
    for d in diagnostics {
        out.push_str(&format!("  {d}
"));
    }
    Ok(out)
}

/// `amped serve` — run the HTTP query service until SIGINT (or a
/// `POST /v1/shutdown`), then report what it served. The listening line
/// goes straight to stdout before blocking so callers (and the CI smoke
/// test) can discover an ephemeral port.
fn serve(args: &Args) -> Result<String> {
    let port: u16 = args.parse_or("port", 8750)?;
    let config = amped_serve::ServeConfig {
        addr: format!("127.0.0.1:{port}"),
        jobs: args.parse_or("jobs", 0)?,
        queue_depth: args.parse_or("queue-depth", 64)?,
        timeout_ms: args.parse_or("timeout-ms", 30_000)?,
        handle_sigint: true,
        access_log: args.get("access-log").map(String::from),
        verbose: args.switch("v"),
    };
    let server = amped_serve::Server::bind(config)?;
    println!("amped-serve listening on {}", server.local_addr()?);
    let summary = server.run()?;
    Ok(format!("amped-serve: {summary}"))
}

/// `amped loadtest` — replay concurrent mixed traffic against a running
/// server and record what it delivered. Writes the versioned
/// `BENCH_serve.json` report (`--out`) and prints either the raw JSON
/// (`--json`) or a per-endpoint quantile table rendered by the same
/// `amped_report::histogram_table` the metrics views use.
fn loadtest(args: &Args) -> Result<String> {
    let config = amped_serve::LoadTestConfig {
        addr: args.get_or("addr", "127.0.0.1:8750").to_string(),
        clients: args.parse_or("clients", 4)?,
        requests_per_client: args.parse_or("requests", 8)?,
        preset: args.get_or("preset", "dev-small").to_string(),
        ..amped_serve::LoadTestConfig::default()
    };
    let report = amped_serve::loadtest::run(&config)?;
    let value = report.to_value();
    let json = to_json(&value)?;
    let out = args.get_or("out", "BENCH_serve.json");
    std::fs::write(out, format!("{json}\n")).map_err(|e| Error::io(out, e.to_string()))?;
    if args.switch("json") {
        return Ok(json);
    }
    let mut text = format!(
        "loadtest {}: {} requests ({} clients x {}), {:.2} req/s over {:.2}s\n\
         errors {:.1}%  429 rejections {:.1}%  cache hit rate {:.1}% ({}/{})\n\n\
         client-observed latency, microseconds:\n{}\nreport written to {out}",
        config.addr,
        report.requests,
        report.clients,
        report.requests_per_client,
        report.req_per_sec,
        report.duration_s,
        report.error_rate * 100.0,
        report.rejected_429_rate * 100.0,
        report.cache_hit_rate * 100.0,
        report.cache_hits,
        report.cache_lookups,
        amped_report::histogram_table(value.get("endpoints").unwrap_or(&value)).to_ascii(),
    );
    if report.requests > 0 && report.error_rate == 0.0 {
        text.push_str("\nall requests succeeded");
    }
    Ok(text)
}

fn memory(args: &Args) -> Result<String> {
    let r = resolution(args, FlagSet::default(), None)?;
    if let Some(dump) = dump_resolved(args, &r) {
        return dump;
    }
    let s = &r.scenario;
    let mem = MemoryModel::new(&s.model, &s.parallelism)
        .with_precision(s.precision)
        .with_optimizer(OptimizerSpec::adam_mixed_precision());
    let ub = s.parallelism.microbatch_size(s.training.global_batch());
    let n_ub = s.parallelism.num_microbatches(s.training.global_batch());
    let fp = mem.footprint(ub, n_ub);
    Ok(format!(
        "per-device footprint at ub={ub:.1} x{n_ub}: {}\ncapacity {}: {}",
        fp,
        amped_core::units::format_bytes(s.accelerator.memory_bytes()),
        if fp.total() <= s.accelerator.memory_bytes() {
            "fits"
        } else {
            "DOES NOT FIT"
        }
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(cmd: &str) -> Result<String> {
        dispatch(&Args::parse(cmd.split_whitespace().map(String::from)))
    }

    #[test]
    fn help_lists_commands() {
        let h = run("help").unwrap();
        assert!(h.contains("estimate") && h.contains("search"));
        assert_eq!(run("").unwrap(), h);
    }

    #[test]
    fn presets_lists_models_and_accels() {
        let p = run("presets").unwrap();
        assert!(p.contains("gpt3-175b") && p.contains("a100"));
    }

    #[test]
    fn estimate_runs_with_defaults() {
        let out = run("estimate --model mingpt-85m --accel v100 --per-node 8 --dp 8 --batch 64")
            .unwrap();
        assert!(out.contains("total"));
        assert!(out.contains("TFLOP/s/GPU"));
    }

    #[test]
    fn estimate_json_is_valid() {
        let out =
            run("estimate --model mingpt-85m --accel v100 --per-node 8 --dp 8 --batch 64 --json")
                .unwrap();
        let v: serde_json::Value = serde_json::from_str(&out).unwrap();
        assert!(v.get("tflops_per_gpu").is_some());
    }

    #[test]
    fn search_returns_table() {
        let out =
            run("search --model mingpt-85m --accel v100 --nodes 2 --per-node 4 --batch 64 --top 5")
                .unwrap();
        assert!(out.contains("candidate mappings"));
    }

    #[test]
    fn search_jobs_and_prune_keep_the_winner() {
        let serial =
            run("search --model mingpt-85m --accel v100 --nodes 2 --per-node 4 --batch 64 --top 1 --jobs 1")
                .unwrap();
        let tuned =
            run("search --model mingpt-85m --accel v100 --nodes 2 --per-node 4 --batch 64 --top 1 --jobs 2 --prune")
                .unwrap();
        // Same top row (the candidate count in the header may shrink).
        let row = |s: &str| s.lines().last().unwrap().to_string();
        assert_eq!(row(&serial), row(&tuned), "{serial}\nvs\n{tuned}");
    }

    #[test]
    fn estimate_backend_flag_selects_the_cost_backend() {
        let analytical =
            run("estimate --model mingpt-85m --accel v100 --per-node 8 --dp 8 --batch 64 --backend analytical")
                .unwrap();
        assert!(analytical.contains("via analytical backend"), "{analytical}");
        let sim =
            run("estimate --model mingpt-85m --accel v100 --per-node 8 --dp 8 --batch 64 --backend sim")
                .unwrap();
        assert!(sim.contains("via sim backend"), "{sim}");
        assert!(sim.contains("total"));
        assert!(
            run("estimate --model mingpt-85m --accel v100 --per-node 8 --dp 8 --batch 64 --backend bogus")
                .is_err()
        );
    }

    #[test]
    fn search_refine_sim_reprices_the_top_block() {
        let out = run(
            "search --model mingpt-85m --accel v100 --nodes 2 --per-node 4 --batch 64 --top 5 --refine-sim 3 --jobs 2",
        )
        .unwrap();
        assert!(out.contains("candidate mappings"), "{out}");
        assert!(out.contains("sim"), "refined rows must be marked: {out}");
        let json = run(
            "search --model mingpt-85m --accel v100 --nodes 2 --per-node 4 --batch 64 --top 3 --refine-sim 3 --json",
        )
        .unwrap();
        let v: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert!(v["rows"]
            .as_array()
            .unwrap()
            .iter()
            .any(|r| r["backend"] == "sim"));
        assert!(v["memory_rejected"]["total"].as_u64().is_some(), "{json}");
    }

    #[test]
    fn search_memory_filter_keeps_only_feasible_mappings() {
        let out = run(
            "search --model mingpt-85m --accel v100 --nodes 2 --per-node 4 --batch 64 --top 5 --memory-filter",
        )
        .unwrap();
        assert!(out.contains("yes"), "{out}");
        assert!(!out.contains("NO"), "filtered search must not list misfits: {out}");
    }

    #[test]
    fn search_no_batch_is_byte_identical_to_the_batched_default() {
        let base = "search --model mingpt-85m --accel v100 --nodes 2 --per-node 4 --batch 64 --top 5 --memory-filter --json";
        let batched = run(base).unwrap();
        let scalar = run(&format!("{base} --no-batch")).unwrap();
        assert_eq!(batched, scalar);
        let v: serde_json::Value = serde_json::from_str(&batched).unwrap();
        assert!(v["memory_rejected"]["total"].as_u64().is_some(), "{batched}");
    }

    #[test]
    fn sweep_backend_flag_prices_through_the_simulator() {
        let out = run(
            "sweep --model mingpt-85m --accel v100 --nodes 4 --per-node 2 --batch 64 --backend sim",
        )
        .unwrap();
        assert!(out.starts_with("batch,dp-inter"), "{out}");
        assert!(out.contains("winners:"));
    }

    #[test]
    fn simulate_prints_traces() {
        let out = run("simulate --model mingpt-85m --accel v100 --per-node 4 --pp 4 --dp 1 --batch 16")
            .unwrap();
        assert!(out.contains("dev  0"));
    }

    #[test]
    fn memory_reports_fit() {
        let out = run("memory --model mingpt-85m --accel v100 --per-node 1 --dp 1 --batch 8").unwrap();
        assert!(out.contains("fits") || out.contains("DOES NOT FIT"));
    }

    #[test]
    fn detail_prints_hottest_layers() {
        let out = run("detail --model mingpt-85m --accel v100 --per-node 8 --dp 8 --batch 64")
            .unwrap();
        assert!(out.contains("hottest layers"));
        assert!(out.contains("dense"));
    }

    #[test]
    fn recommend_gives_mapping_and_knob() {
        let out = run("recommend --model mingpt-85m --accel v100 --nodes 2 --per-node 4 --batch 128")
            .unwrap();
        assert!(out.contains("recommended mapping"), "{out}");
        assert!(out.contains("highest-leverage knob"), "{out}");
    }

    #[test]
    fn sweep_emits_csv_and_winners() {
        let out = run("sweep --model mingpt-85m --accel v100 --nodes 4 --per-node 2 --batch 64")
            .unwrap();
        assert!(out.starts_with("batch,dp-inter"));
        assert!(out.contains("winners:"));
    }

    #[test]
    fn trace_is_valid_chrome_json() {
        let out = run("trace --model mingpt-85m --accel v100 --per-node 4 --pp 4 --dp 1 --batch 16")
            .unwrap();
        let v: serde_json::Value = serde_json::from_str(&out).unwrap();
        assert!(!v.as_array().unwrap().is_empty());
    }

    #[test]
    fn energy_reports_cost() {
        let out = run("energy --model mingpt-85m --accel v100 --per-node 8 --dp 8 --batch 64 --batches 100")
            .unwrap();
        assert!(out.contains("MWh") && out.contains("CO2"));
    }

    #[test]
    fn config_file_drives_estimate() {
        let dir = std::env::temp_dir().join("amped-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("scenario.json");
        std::fs::write(
            &path,
            r#"{
                "model": { "preset": "mingpt-85m" },
                "accelerator": { "preset": "v100" },
                "system": { "nodes": 1, "accels_per_node": 8,
                            "intra_gbps": 2400.0, "inter_gbps": 100.0, "nics_per_node": 1 },
                "parallelism": { "dp": [8, 1] },
                "training": { "global_batch": 64, "num_batches": 2 }
            }"#,
        )
        .unwrap();
        let out = run(&format!("estimate --config {}", path.display())).unwrap();
        assert!(out.contains("minGPT-85M"));
        assert!(run("estimate --config /nonexistent.json").is_err());
    }

    #[test]
    fn sensitivity_ranks_knobs() {
        let out =
            run("sensitivity --model mingpt-85m --accel v100 --per-node 8 --dp 8 --batch 64")
                .unwrap();
        assert!(out.contains("accelerator frequency"));
        assert!(out.contains("speedup"));
    }

    #[test]
    fn check_lints_bad_configs() {
        // TP across nodes over the default HDR network: warned.
        let out = run(
            "check --model megatron-145b --accel a100 --nodes 4 --per-node 8 --nics 1 --tp 8,4 --dp 1,1 --batch 4096",
        )
        .unwrap();
        assert!(out.contains("tp-inter-slow-links"), "{out}");
        // A sane config is clean.
        let ok = run(
            "check --model megatron-145b --accel a100 --nodes 4 --per-node 8 --tp 8,1 --dp 1,4 --batch 4096",
        )
        .unwrap();
        assert!(ok.contains("no warnings"), "{ok}");
    }

    #[test]
    fn unknown_command_and_presets_error() {
        assert!(run("frobnicate").is_err());
        assert!(run("estimate --model nosuch").is_err());
        assert!(run("estimate --accel nosuch").is_err());
    }

    #[test]
    fn malformed_flags_are_typed_usage_errors() {
        for cmd in [
            "frobnicate",
            "estimate --model nosuch",
            "estimate --batch lots",
            "estimate --eff high",
            "estimate --microbatches some",
            "estimate --tp 1,2,3",
            "estimate --backend bogus",
            "simulate --model mingpt-85m --accel v100 --per-node 4 --dp 4 --batch 16 --seed nope",
            "simulate --model mingpt-85m --accel v100 --per-node 4 --dp 4 --batch 16 --seed 1 --stragglers many",
            "resilience --model mingpt-85m --accel v100 --per-node 8 --dp 8 --batch 64 --mtbf soon",
        ] {
            let err = run(cmd).unwrap_err();
            assert!(matches!(err, Error::Usage { .. }), "{cmd}: {err:?}");
        }
    }

    #[test]
    fn missing_config_file_is_a_typed_io_error() {
        let err = run("estimate --config /nonexistent/amped.json").unwrap_err();
        assert!(matches!(err, Error::Io { .. }), "{err:?}");
        assert!(err.to_string().contains("/nonexistent/amped.json"));
    }

    #[test]
    fn malformed_config_file_is_rejected() {
        let dir = std::env::temp_dir().join("amped-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("broken.json");
        std::fs::write(&path, "{ definitely not json").unwrap();
        let err = run(&format!("estimate --config {}", path.display())).unwrap_err();
        assert!(err.to_string().contains("malformed"), "{err}");
    }

    #[test]
    fn fault_flags_without_seed_are_rejected() {
        let err = run(
            "simulate --model mingpt-85m --accel v100 --per-node 4 --dp 4 --batch 16 --stragglers 2",
        )
        .unwrap_err();
        assert!(err.to_string().contains("--seed"), "{err}");
    }

    #[test]
    fn resilience_reports_expected_time() {
        let out = run("resilience --model mingpt-85m --accel v100 --nodes 2 --per-node 4 --dp 4,2 --batch 64 --batches 100")
            .unwrap();
        assert!(out.contains("expected"), "{out}");
        assert!(out.contains("Young/Daly"), "{out}");
        assert!(out.contains("node MTBF 4380 h"), "{out}");
    }

    #[test]
    fn resilience_json_bundles_estimate_and_report() {
        let out = run("resilience --model mingpt-85m --accel v100 --nodes 2 --per-node 4 --dp 4,2 --batch 64 --batches 100 --mtbf 1000 --json")
            .unwrap();
        let v: serde_json::Value = serde_json::from_str(&out).unwrap();
        let est = v.get("estimate").unwrap();
        assert!(est.get("tflops_per_gpu").is_some());
        let res = v.get("resilience").unwrap();
        assert!(res.get("expected_s").unwrap().as_f64().unwrap() > 0.0);
    }

    #[test]
    fn resilience_seed_cross_checks_the_simulator() {
        let out = run("resilience --model mingpt-85m --accel v100 --per-node 4 --dp 4 --batch 16 --batches 20 --mtbf 2 --seed 7")
            .unwrap();
        assert!(out.contains("seeded simulation (seed 7)"), "{out}");
        assert!(out.contains("vs analytical expectation"), "{out}");
    }

    #[test]
    fn estimate_mtbf_layers_resilience_onto_the_estimate() {
        let plain =
            run("estimate --model mingpt-85m --accel v100 --per-node 8 --dp 8 --batch 64 --json")
                .unwrap();
        let v: serde_json::Value = serde_json::from_str(&plain).unwrap();
        assert!(v.get("resilience").is_none(), "no --mtbf, no wrapper: {plain}");
        let wrapped = run(
            "estimate --model mingpt-85m --accel v100 --per-node 8 --dp 8 --batch 64 --mtbf 4380 --json",
        )
        .unwrap();
        let v: serde_json::Value = serde_json::from_str(&wrapped).unwrap();
        assert!(v.get("estimate").unwrap().get("tflops_per_gpu").is_some());
        let res = v.get("resilience").unwrap();
        assert!(res.get("expected_s").unwrap().as_f64().unwrap() > 0.0);
    }

    #[test]
    fn simulate_seeded_run_reports_failures_and_checkpoints() {
        let out = run(
            "simulate --model mingpt-85m --accel v100 --per-node 4 --pp 4 --dp 1 --batch 16 --batches 20 --seed 42 --mtbf 1 --stragglers 1x2.0",
        )
        .unwrap();
        assert!(out.contains("fault-injected run (seed 42)"), "{out}");
        assert!(out.contains("failures:"), "{out}");
        assert!(out.contains("goodput:"), "{out}");
    }

    #[test]
    fn search_goodput_ranks_by_expected_time() {
        let out = run(
            "search --model mingpt-85m --accel v100 --nodes 2 --per-node 4 --batch 64 --top 5 --goodput 1000",
        )
        .unwrap();
        assert!(out.contains("expected time under failures"), "{out}");
        assert!(out.contains("expected days"), "{out}");
        let json = run(
            "search --model mingpt-85m --accel v100 --nodes 2 --per-node 4 --batch 64 --top 3 --goodput 1000 --json",
        )
        .unwrap();
        let v: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert!(v["rows"]
            .as_array()
            .unwrap()
            .iter()
            .all(|r| r.get("expected_days").unwrap().as_f64().unwrap() > 0.0));
    }

    #[test]
    fn config_resilience_section_feeds_the_resilience_command() {
        let dir = std::env::temp_dir().join("amped-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("resilient-scenario.json");
        std::fs::write(
            &path,
            r#"{
                "model": { "preset": "mingpt-85m" },
                "accelerator": { "preset": "v100" },
                "system": { "nodes": 2, "accels_per_node": 4,
                            "intra_gbps": 2400.0, "inter_gbps": 100.0, "nics_per_node": 1 },
                "parallelism": { "dp": [4, 2] },
                "training": { "global_batch": 64, "num_batches": 100 },
                "resilience": { "node_mtbf_hours": 500.0, "restart_s": 60.0 }
            }"#,
        )
        .unwrap();
        let out = run(&format!("resilience --config {}", path.display())).unwrap();
        assert!(out.contains("node MTBF 500 h"), "{out}");
        // A flag overrides the file.
        let out = run(&format!("resilience --config {} --mtbf 250", path.display())).unwrap();
        assert!(out.contains("node MTBF 250 h"), "{out}");
    }

    fn obs_dir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("amped-cli-obs-test").join(name);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn search_obs_flags_write_valid_json_without_changing_output() {
        let dir = obs_dir("search");
        let metrics = dir.join("metrics.json");
        let trace = dir.join("trace.json");
        let base = "search --model mingpt-85m --accel v100 --nodes 2 --per-node 4 \
                    --batch 64 --top 3 --jobs 2";
        let bare = run(base).unwrap();
        let observed = run(&format!(
            "{base} --metrics-out {} --trace-out {}",
            metrics.display(),
            trace.display()
        ))
        .unwrap();
        // Instrumentation never perturbs results: byte-identical report.
        assert_eq!(bare, observed);

        let m: serde_json::Value =
            serde_json::from_str(&std::fs::read_to_string(&metrics).unwrap()).unwrap();
        assert_eq!(m["command"], "search");
        let c = &m["counters"];
        let n = |key: &str| {
            c.get(key)
                .and_then(serde_json::Value::as_u64)
                .unwrap_or_else(|| panic!("missing counter {key} in {c:?}"))
        };
        assert_eq!(
            n("search.candidates.generated"),
            n("search.candidates.pruned") + n("search.candidates.evaluated")
        );
        assert_eq!(
            n("search.candidates.evaluated"),
            n("search.candidates.kept") + n("search.candidates.memory_rejected")
        );
        assert_eq!(
            n("search.cache.lookups"),
            n("search.cache.hits") + n("search.cache.misses")
        );
        assert!(n("search.candidates.generated") > 0);
        assert!(!m["phases"].as_array().unwrap().is_empty());

        let t: serde_json::Value =
            serde_json::from_str(&std::fs::read_to_string(&trace).unwrap()).unwrap();
        let events = t.as_array().unwrap();
        assert!(!events.is_empty());
        assert!(events
            .iter()
            .all(|e| e["ph"] == "X" && e.get("ts").is_some() && e.get("name").is_some()));
    }

    #[test]
    fn verbose_switch_appends_the_run_summary() {
        let base = "estimate --model mingpt-85m --accel v100 --per-node 8 --dp 8 --batch 64";
        let quiet = run(base).unwrap();
        let verbose = run(&format!("{base} -v")).unwrap();
        assert!(verbose.starts_with(&quiet), "summary must append, not mutate");
        assert!(verbose.contains("backend.analytical.evaluations"), "{verbose}");
    }

    #[test]
    fn simulate_trace_out_exports_the_device_timeline() {
        let dir = obs_dir("simulate");
        let trace = dir.join("trace.json");
        let metrics = dir.join("metrics.json");
        run(&format!(
            "simulate --model mingpt-85m --accel v100 --per-node 4 --pp 4 --dp 1 --batch 16 \
             --trace-out {} --metrics-out {}",
            trace.display(),
            metrics.display()
        ))
        .unwrap();
        let t: serde_json::Value =
            serde_json::from_str(&std::fs::read_to_string(&trace).unwrap()).unwrap();
        let cats: Vec<&str> = t
            .as_array()
            .unwrap()
            .iter()
            .filter_map(|e| e["cat"].as_str())
            .collect();
        assert!(cats.contains(&"compute"), "{cats:?}");
        let m: serde_json::Value =
            serde_json::from_str(&std::fs::read_to_string(&metrics).unwrap()).unwrap();
        assert!(m["counters"]["sim.des.events_processed"].as_u64().unwrap() > 0);
        assert!(!m["devices"].as_array().unwrap().is_empty());
    }

    #[test]
    fn seeded_simulate_trace_has_checkpoint_and_recompute_slices() {
        let dir = obs_dir("simulate-seeded");
        let trace = dir.join("trace.json");
        run(&format!(
            "simulate --model mingpt-85m --accel v100 --per-node 4 --pp 4 --dp 1 --batch 16 \
             --batches 200 --seed 7 --mtbf 0.0001 --ckpt-interval 1 --trace-out {}",
            trace.display()
        ))
        .unwrap();
        let t: serde_json::Value =
            serde_json::from_str(&std::fs::read_to_string(&trace).unwrap()).unwrap();
        let cats: Vec<&str> = t
            .as_array()
            .unwrap()
            .iter()
            .filter_map(|e| e["cat"].as_str())
            .collect();
        assert!(cats.contains(&"ckpt"), "{cats:?}");
        assert!(cats.contains(&"recompute"), "no failures replayed: {cats:?}");
    }

    #[test]
    fn schema_is_versioned_and_self_describing() {
        let out = run("schema").unwrap();
        let doc: serde_json::Value = serde_json::from_str(&out).unwrap();
        assert_eq!(
            doc.get("schema_version").and_then(serde_json::Value::as_str),
            Some(amped_configs::schema::SCHEMA_VERSION)
        );
        for key in ["layers", "scenario", "scenario_presets"] {
            assert!(doc.get(key).is_some(), "schema missing `{key}`:\n{out}");
        }
    }

    #[test]
    fn scenario_presets_drive_commands() {
        let out = run("estimate --preset dev-small").unwrap();
        assert!(out.contains("minGPT-85M"), "{out}");
        let err = run("estimate --preset nope").unwrap_err();
        assert!(matches!(err, Error::Usage { .. }), "{err:?}");
        assert!(err.to_string().contains("unknown scenario preset"), "{err}");
        // The presets listing advertises scenario presets alongside
        // models and accelerators.
        let listing = run("presets").unwrap();
        assert!(listing.contains("dev-small"), "{listing}");
    }

    #[test]
    fn dump_resolved_names_the_layer_behind_every_field() {
        let out = run("estimate --preset dev-small --batch 128 --dump-resolved").unwrap();
        let doc: serde_json::Value = serde_json::from_str(&out).unwrap();
        assert!(doc.get("schema_version").is_some());
        let batch = doc
            .get("scenario")
            .and_then(|s| s.get("training"))
            .and_then(|t| t.get("global_batch"))
            .and_then(serde_json::Value::as_i64);
        assert_eq!(batch, Some(128), "{out}");
        let provenance = doc.get("provenance").expect("dump has provenance");
        assert_eq!(
            provenance
                .get("training.global_batch")
                .and_then(serde_json::Value::as_str),
            Some("flags (--batch)"),
            "{out}"
        );
        assert_eq!(
            provenance.get("model").and_then(serde_json::Value::as_str),
            Some("preset `dev-small`"),
            "{out}"
        );
    }

    #[test]
    fn flags_override_config_file_fields() {
        let dir = std::env::temp_dir().join("amped-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("layered-scenario.json");
        std::fs::write(
            &path,
            r#"{
                "model": { "preset": "mingpt-85m" },
                "accelerator": { "preset": "v100" },
                "system": { "nodes": 1, "accels_per_node": 8,
                            "intra_gbps": 2400.0, "inter_gbps": 100.0, "nics_per_node": 1 },
                "parallelism": { "dp": [8, 1] },
                "training": { "global_batch": 64, "num_batches": 2 }
            }"#,
        )
        .unwrap();
        let out = run(&format!(
            "estimate --config {} --batch 128 --dump-resolved",
            path.display()
        ))
        .unwrap();
        let doc: serde_json::Value = serde_json::from_str(&out).unwrap();
        let scenario = doc.get("scenario").unwrap();
        // The flag wins the field it names; the file keeps the rest.
        assert_eq!(
            scenario
                .get("training")
                .and_then(|t| t.get("global_batch"))
                .and_then(serde_json::Value::as_i64),
            Some(128)
        );
        assert_eq!(
            scenario
                .get("training")
                .and_then(|t| t.get("num_batches"))
                .and_then(serde_json::Value::as_i64),
            Some(2)
        );
        let provenance = doc.get("provenance").unwrap();
        assert_eq!(
            provenance
                .get("training.num_batches")
                .and_then(serde_json::Value::as_str),
            Some("scenario file")
        );
    }

    #[test]
    fn resilience_domains_flags_add_the_correlated_report() {
        let base = "resilience --model mingpt-85m --accel v100 --nodes 16 --per-node 1 \
                    --dp 1,4 --pp 1,4 --batch 64 --batches 100 --mtbf 1000";
        let flat = run(base).unwrap();
        assert!(!flat.contains("correlated"), "no domain flags, no correlated block: {flat}");
        let out = run(&format!("{base} --domains 4,2 --rack-mtbf 720")).unwrap();
        assert!(out.contains("under correlated outages"), "{out}");
        assert!(out.contains("placement replica-major"), "{out}");
        // An explicit layout overrides the enumerator's pick.
        let forced = run(&format!(
            "{base} --domains 4,2 --rack-mtbf 720 --placement stage-major"
        ))
        .unwrap();
        assert!(forced.contains("placement stage-major"), "{forced}");
        let err = run(&format!("{base} --placement diagonal")).unwrap_err();
        assert!(matches!(err, Error::Usage { .. }), "{err:?}");
    }

    #[test]
    fn resilience_json_with_domains_leads_with_the_version() {
        let base = "resilience --model mingpt-85m --accel v100 --nodes 16 --per-node 1 \
                    --dp 1,4 --pp 1,4 --batch 64 --batches 100 --mtbf 1000 --json";
        let flat = run(base).unwrap();
        let v: serde_json::Value = serde_json::from_str(&flat).unwrap();
        assert_eq!(v["schema_version"], amped_configs::schema::SCHEMA_VERSION);
        assert!(v.get("correlated").is_none(), "{flat}");
        let out = run(&format!("{base} --domains 4,2 --rack-mtbf 720 --preemption-mtbf 168"))
            .unwrap();
        let v: serde_json::Value = serde_json::from_str(&out).unwrap();
        assert!(out.trim_start().starts_with("{\n  \"schema_version\""), "{out}");
        let c = v.get("correlated").unwrap();
        assert!(c["expected_s"].as_f64().unwrap() > 0.0);
        assert!(c["placement"]["strategy"].as_str().is_some(), "{out}");
        assert!(c["elastic_rate_per_s"].as_f64().unwrap() > 0.0, "{out}");
    }

    #[test]
    fn resilience_seed_replays_domain_outages() {
        let out = run(
            "resilience --model mingpt-85m --accel v100 --nodes 4 --per-node 1 --dp 1,2 \
             --pp 1,2 --batch 16 --batches 20 --mtbf 2 --domains 2,2 --rack-mtbf 4 --seed 7",
        )
        .unwrap();
        assert!(out.contains("under correlated outages"), "{out}");
        assert!(out.contains("seeded simulation (seed 7)"), "{out}");
        assert!(out.contains("vs analytical expectation"), "{out}");
    }

    #[test]
    fn search_goodput_domains_stay_deterministic_across_jobs() {
        let base = "search --model mingpt-85m --accel v100 --nodes 4 --per-node 2 --batch 64 \
                    --top 5 --goodput 1000 --domains 2,2 --rack-mtbf 500 --json";
        let serial = run(&format!("{base} --jobs 1")).unwrap();
        let threaded = run(&format!("{base} --jobs 4")).unwrap();
        assert_eq!(serial, threaded, "goodput-with-domains ranking must not depend on --jobs");
        let v: serde_json::Value = serde_json::from_str(&serial).unwrap();
        assert!(v["rows"]
            .as_array()
            .unwrap()
            .iter()
            .all(|r| r["expected_days"].as_f64().unwrap() > 0.0));
        // Domain flags without --goodput are not live on search.
        let err = run(
            "search --model mingpt-85m --accel v100 --nodes 4 --per-node 2 --batch 64 \
             --rack-mtbf 500 --domains 2,2",
        );
        assert!(err.is_ok(), "gated flags are simply ignored: {err:?}");
    }

    #[test]
    fn recommend_goodput_ranks_by_expected_time() {
        let out = run(
            "recommend --model mingpt-85m --accel v100 --nodes 4 --per-node 2 --batch 128 \
             --goodput 1000 --domains 2,2 --rack-mtbf 500",
        )
        .unwrap();
        assert!(out.contains("recommended mapping"), "{out}");
    }

    #[test]
    fn sweep_json_leads_with_the_version_and_names_winners() {
        let out = run(
            "sweep --model mingpt-85m --accel v100 --nodes 4 --per-node 2 --batch 64 --json",
        )
        .unwrap();
        assert!(out.trim_start().starts_with("{\n  \"schema_version\""), "{out}");
        let v: serde_json::Value = serde_json::from_str(&out).unwrap();
        assert!(v["csv"].as_str().unwrap().starts_with("batch,dp-inter"), "{out}");
        let winners = v["winners"].as_array().unwrap();
        assert!(!winners.is_empty());
        assert!(winners.iter().all(|w| {
            w["batch"].as_u64().is_some() && w["winner"].as_str().is_some()
        }));
    }

    #[test]
    fn resilience_flags_without_an_mtbf_are_rejected() {
        let err = run("estimate --restart 60").unwrap_err();
        assert!(matches!(err, Error::Usage { .. }), "{err:?}");
        assert!(err.to_string().contains("resilience"), "{err}");
    }
}
