//! `amped` — command line interface to the AMPeD performance model.
//!
//! Subcommands:
//!
//! * `presets` — list built-in model/accelerator presets
//! * `estimate` — predict training time and breakdown for one mapping
//! * `search` — rank every parallelism mapping on a system
//! * `simulate` — run the discrete-event simulator on one mapping
//! * `memory` — per-device memory footprint of a mapping
//! * `resilience` — expected time under failures (checkpoint/restart model)
//!
//! Run `amped help` for flags.
//!
//! Exit codes: 0 success, 2 for usage errors (bad flags, unknown names),
//! 1 for everything else (unreadable files, model-layer failures).

mod args;
mod commands;

use std::process::ExitCode;

fn main() -> ExitCode {
    let parsed = args::Args::parse(std::env::args().skip(1));
    match commands::dispatch(&parsed) {
        Ok(output) => {
            println!("{output}");
            ExitCode::SUCCESS
        }
        Err(error) => {
            eprintln!("error: {error}");
            match error {
                amped_core::Error::Usage { .. } => ExitCode::from(2),
                _ => ExitCode::FAILURE,
            }
        }
    }
}
