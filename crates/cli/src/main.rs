//! `amped` — command line interface to the AMPeD performance model.
//!
//! Subcommands:
//!
//! * `presets` — list built-in model/accelerator presets
//! * `estimate` — predict training time and breakdown for one mapping
//! * `search` — rank every parallelism mapping on a system
//! * `simulate` — run the discrete-event simulator on one mapping
//! * `memory` — per-device memory footprint of a mapping
//!
//! Run `amped help` for flags.

mod args;
mod commands;

use std::process::ExitCode;

fn main() -> ExitCode {
    let parsed = args::Args::parse(std::env::args().skip(1));
    match commands::dispatch(&parsed) {
        Ok(output) => {
            println!("{output}");
            ExitCode::SUCCESS
        }
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}
