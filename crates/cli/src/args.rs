//! Minimal flag parsing for the `amped` binary (kept dependency-free).
//!
//! Malformed values surface as [`amped_core::Error::Usage`] so the binary
//! can exit non-zero with a typed message instead of panicking.

use std::collections::HashMap;

use amped_core::Error;

/// Parsed command line: a subcommand, `--key value` flags and bare
/// positionals.
#[derive(Debug, Clone, Default)]
pub struct Args {
    /// The first bare token (the subcommand).
    pub command: Option<String>,
    flags: HashMap<String, String>,
    switches: Vec<String>,
}

impl Args {
    /// Parse from an iterator of tokens (usually `std::env::args().skip(1)`).
    ///
    /// `--key value` becomes a flag; `--key` followed by another `--flag`
    /// or nothing becomes a boolean switch. A single-dash alphabetic token
    /// (`-v`) is a short boolean switch, queryable by its bare name
    /// (`switch("v")`).
    pub fn parse<I: IntoIterator<Item = String>>(tokens: I) -> Self {
        let mut out = Args::default();
        let mut iter = tokens.into_iter().peekable();
        while let Some(tok) = iter.next() {
            if let Some(key) = tok.strip_prefix("--") {
                if let Some(value) = iter.next_if(|n| !n.starts_with("--")) {
                    out.flags.insert(key.to_string(), value);
                } else {
                    out.switches.push(key.to_string());
                }
            } else if let Some(short) = tok
                .strip_prefix('-')
                .filter(|rest| !rest.is_empty() && rest.chars().all(|c| c.is_ascii_alphabetic()))
            {
                out.switches.push(short.to_string());
            } else if out.command.is_none() {
                out.command = Some(tok);
            }
        }
        out
    }

    /// The raw value of `--key`, if present.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.flags.get(key).map(String::as_str)
    }

    /// The value of `--key`, or `default`.
    pub fn get_or<'a>(&'a self, key: &str, default: &'a str) -> &'a str {
        self.get(key).unwrap_or(default)
    }

    /// Parse `--key` as `T`, or return `default` when absent.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Usage`] when the value does not parse.
    pub fn parse_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, Error> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| Error::usage(format!("invalid value for --{key}: {v}"))),
        }
    }

    /// Whether the boolean switch `--key` was given.
    pub fn switch(&self, key: &str) -> bool {
        self.switches.iter().any(|s| s == key)
    }

    /// Parse a `--stragglers 3` or `--stragglers 3x2.5`-style count with an
    /// optional slowdown factor (default 1.5).
    ///
    /// # Errors
    ///
    /// Returns [`Error::Usage`] for malformed specs.
    pub fn straggler_spec(&self, key: &str) -> Result<Option<(usize, f64)>, Error> {
        let Some(v) = self.get(key) else {
            return Ok(None);
        };
        let bad = || Error::usage(format!("bad --{key}: {v} (expects COUNT or COUNTxFACTOR)"));
        let (count, factor) = match v.split_once('x') {
            Some((n, f)) => (
                n.parse().map_err(|_| bad())?,
                f.parse().map_err(|_| bad())?,
            ),
            None => (v.parse().map_err(|_| bad())?, 1.5),
        };
        Ok(Some((count, factor)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(String::from))
    }

    #[test]
    fn parses_command_flags_and_switches() {
        let a = args("estimate --model gpt3 --batch 1536 --json");
        assert_eq!(a.command.as_deref(), Some("estimate"));
        assert_eq!(a.get("model"), Some("gpt3"));
        assert_eq!(a.parse_or("batch", 0usize).unwrap(), 1536);
        assert!(a.switch("json"));
        assert!(!a.switch("quiet"));
    }

    #[test]
    fn bad_value_reports_key_as_a_usage_error() {
        let a = args("x --batch lots");
        let err = a.parse_or("batch", 0usize).unwrap_err();
        assert!(matches!(err, Error::Usage { .. }), "{err:?}");
        assert!(err.to_string().contains("--batch"));
    }

    #[test]
    fn straggler_specs() {
        assert_eq!(args("x").straggler_spec("stragglers").unwrap(), None);
        assert_eq!(
            args("x --stragglers 3").straggler_spec("stragglers").unwrap(),
            Some((3, 1.5))
        );
        assert_eq!(
            args("x --stragglers 2x4.0").straggler_spec("stragglers").unwrap(),
            Some((2, 4.0))
        );
        assert!(args("x --stragglers 2xfast").straggler_spec("stragglers").is_err());
        assert!(args("x --stragglers many").straggler_spec("stragglers").is_err());
    }

    #[test]
    fn adjacent_switches() {
        let a = args("run --fast --model m");
        assert!(a.switch("fast"));
        assert_eq!(a.get("model"), Some("m"));
    }

    #[test]
    fn short_switches() {
        let a = args("estimate -v --model gpt3");
        assert_eq!(a.command.as_deref(), Some("estimate"));
        assert!(a.switch("v"));
        assert_eq!(a.get("model"), Some("gpt3"));
        // A leading short switch never swallows the subcommand.
        let b = args("-v simulate");
        assert!(b.switch("v"));
        assert_eq!(b.command.as_deref(), Some("simulate"));
        // Non-alphabetic single-dash tokens are not switches (they may be
        // negative values consumed by --key parsing, or plain noise).
        assert!(!args("x -5").switch("5"));
    }
}

#[cfg(test)]
mod fuzz {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn parser_never_panics(tokens in prop::collection::vec("[-a-z0-9,.]{0,12}", 0..16)) {
            let args = Args::parse(tokens.into_iter());
            // Exercise the accessors too.
            let _ = args.get("model");
            let _ = args.get_or("accel", "a100");
            let _ = args.switch("json");
            let _ = args.parse_or::<usize>("batch", 1);
            let _ = args.straggler_spec("stragglers");
        }

        #[test]
        fn flags_round_trip(key in "[a-z]{1,8}", value in "[a-z0-9]{1,8}") {
            let args = Args::parse(vec![format!("--{key}"), value.clone()]);
            prop_assert_eq!(args.get(&key), Some(value.as_str()));
        }
    }
}
