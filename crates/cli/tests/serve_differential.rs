//! Differential test: server responses are byte-identical to the CLI.
//!
//! For every compute endpoint, the body answered by an in-process
//! `amped-serve` server must equal — byte for byte — the stdout of the
//! equivalent `amped` CLI invocation (minus the trailing newline
//! `println!` appends). Both front-ends parse scenarios with
//! `amped-configs` and render through `amped_report::artifacts`; this test
//! is the tripwire that keeps them from drifting apart, at any worker
//! count and any cache warmth.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::process::Command;

use amped_serve::{ServeConfig, Server};

/// The small fixture: quick to price, still exercises multi-node search.
const SMALL: &str = r#"{
    "model": { "preset": "mingpt-85m" },
    "accelerator": { "preset": "v100" },
    "system": { "nodes": 2, "accels_per_node": 4,
                "intra_gbps": 2400.0, "inter_gbps": 100.0, "nics_per_node": 1 },
    "parallelism": { "dp": [4, 2] },
    "training": { "global_batch": 64, "num_batches": 10 },
    "resilience": { "node_mtbf_hours": 1000.0 }
}"#;

/// The paper's flagship scenario: megatron-145b on a real cluster shape,
/// with recomputation on (exercising the engine-options plumbing).
const MEGATRON: &str = r#"{
    "model": { "preset": "megatron-145b" },
    "accelerator": { "preset": "a100" },
    "system": { "nodes": 16, "accels_per_node": 8,
                "intra_gbps": 2400.0, "inter_gbps": 200.0, "nics_per_node": 8 },
    "parallelism": { "tp": [8, 1], "pp": [1, 8], "dp": [1, 2], "microbatches": 16 },
    "training": { "global_batch": 1024, "num_batches": 100 },
    "precision_bits": 16,
    "activation_recompute": true
}"#;

/// The correlated-failure fixture: a rack/pod tree plus spot preemption
/// over the SMALL-style base, exercising the `failure_domains` section
/// end to end (placement enumerator, elastic recovery, versioned
/// artifact) through both front-ends.
const DOMAINS: &str = r#"{
    "model": { "preset": "mingpt-85m" },
    "accelerator": { "preset": "v100" },
    "system": { "nodes": 8, "accels_per_node": 1,
                "intra_gbps": 2400.0, "inter_gbps": 100.0, "nics_per_node": 1 },
    "parallelism": { "dp": [1, 4], "pp": [1, 2] },
    "training": { "global_batch": 64, "num_batches": 10 },
    "resilience": { "node_mtbf_hours": 1000.0 },
    "failure_domains": { "shape": [2, 2], "rack_mtbf_hours": 720.0,
                         "preemption_mtbf_hours": 168.0, "regrow_delay_s": 300.0 }
}"#;

/// The serving fixture: LLaMA-65B from one TP=8 node with a quantized KV
/// cache, exercising the `inference` section and `/v1/infer` end to end.
const INFER: &str = r#"{
    "model": { "preset": "llama-65b" },
    "accelerator": { "preset": "a100" },
    "system": { "nodes": 1, "accels_per_node": 8,
                "intra_gbps": 2400.0, "inter_gbps": 200.0, "nics_per_node": 8 },
    "parallelism": { "tp": [8, 1] },
    "training": { "global_batch": 8, "num_batches": 1 },
    "inference": { "prompt_tokens": 1024, "decode_tokens": 256,
                   "batch": 8, "kv_bits": 8 }
}"#;

fn write_scenario(name: &str, body: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("amped-serve-differential");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    std::fs::write(&path, body).unwrap();
    path
}

/// Run the real `amped` binary and return its stdout (trailing newline
/// stripped — `main` prints the command output with `println!`).
fn cli(args: &[&str]) -> String {
    let out = Command::new(env!("CARGO_BIN_EXE_amped"))
        .args(args)
        .output()
        .expect("amped binary runs");
    assert!(
        out.status.success(),
        "CLI failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).expect("CLI stdout is UTF-8");
    stdout
        .strip_suffix('\n')
        .map(String::from)
        .unwrap_or(stdout)
}

/// Run the real `amped` binary expecting failure; return the typed error
/// message (stderr minus the `error: ` prefix `main` prints) and assert
/// the usage exit code.
fn cli_failure(args: &[&str]) -> String {
    let out = Command::new(env!("CARGO_BIN_EXE_amped"))
        .args(args)
        .output()
        .expect("amped binary runs");
    assert_eq!(
        out.status.code(),
        Some(2),
        "amped {} should exit 2 (usage)",
        args.join(" ")
    );
    let stderr = String::from_utf8(out.stderr).expect("CLI stderr is UTF-8");
    stderr
        .strip_prefix("error: ")
        .expect("CLI errors start with `error: `")
        .trim_end_matches('\n')
        .to_string()
}

/// Send one request and return `(status, payload)`.
fn request(addr: SocketAddr, method: &str, target: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let head = format!(
        "{method} {target} HTTP/1.1\r\nHost: localhost\r\nContent-Length: {}\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).unwrap();
    stream.write_all(body.as_bytes()).unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).unwrap();
    let (head, payload) = raw.split_once("\r\n\r\n").expect("response has body");
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("response has a status line");
    (status, payload.to_string())
}

/// POST a scenario at a server and return the 200 body.
fn post(addr: SocketAddr, target: &str, body: &str) -> String {
    let (status, payload) = request(addr, "POST", target, body);
    assert_eq!(status, 200, "{target} did not answer 200:\n{payload}");
    payload
}

/// The `error` field of a JSON error response.
fn error_message(payload: &str) -> String {
    let doc: serde_json::Value = serde_json::from_str(payload).expect("error body is JSON");
    doc.get("error")
        .and_then(serde_json::Value::as_str)
        .unwrap_or_else(|| panic!("no `error` field in {payload}"))
        .to_string()
}

/// Bind an in-process server on an ephemeral port.
fn start_server() -> (
    SocketAddr,
    amped_serve::ServerHandle,
    std::thread::JoinHandle<amped_core::Result<amped_serve::ServeSummary>>,
) {
    let server = Server::bind(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        jobs: 2,
        queue_depth: 16,
        timeout_ms: 600_000,
        handle_sigint: false,
        ..ServeConfig::default()
    })
    .expect("bind");
    let addr = server.local_addr().unwrap();
    let handle = server.handle();
    let thread = std::thread::spawn(move || server.run());
    (addr, handle, thread)
}

#[test]
fn server_responses_are_byte_identical_to_the_cli() {
    let server = Server::bind(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        jobs: 3, // deliberately not the CLI's default: identity must not depend on it
        queue_depth: 16,
        timeout_ms: 600_000,
        handle_sigint: false,
        ..ServeConfig::default()
    })
    .expect("bind");
    let addr = server.local_addr().unwrap();
    let handle = server.handle();
    let thread = std::thread::spawn(move || server.run());

    let small = write_scenario("small.json", SMALL);
    let megatron = write_scenario("megatron.json", MEGATRON);
    let domains = write_scenario("domains.json", DOMAINS);
    let infer = write_scenario("infer.json", INFER);
    let cases: &[(&str, &str, &std::path::Path, &[&str])] = &[
        // (endpoint+query, body, config path, extra CLI flags)
        ("/v1/estimate", SMALL, &small, &["estimate", "--json"]),
        ("/v1/estimate", MEGATRON, &megatron, &["estimate", "--json"]),
        // The serving estimate, from a scenario file and with the
        // request shape overridden through the flag/parameter layer.
        ("/v1/infer", INFER, &infer, &["infer", "--json"]),
        (
            "/v1/infer?prompt=512&serve-batch=4&kv-bits=16",
            INFER,
            &infer,
            &[
                "infer",
                "--json",
                "--prompt",
                "512",
                "--serve-batch",
                "4",
                "--kv-bits",
                "16",
            ],
        ),
        // A serving estimate whose defaults come entirely from the
        // empty-section base both front-ends layer in.
        ("/v1/infer", SMALL, &small, &["infer", "--json"]),
        // The serving-mapping sweep, pruned and parallel — the ranking
        // contract says neither may change a byte.
        (
            "/v1/search?workload=infer&top=5&jobs=2&prune=true",
            INFER,
            &infer,
            &[
                "search",
                "--json",
                "--workload",
                "infer",
                "--top",
                "5",
                "--jobs",
                "2",
                "--prune",
            ],
        ),
        (
            "/v1/search?top=5&jobs=2",
            SMALL,
            &small,
            &["search", "--json", "--top", "5", "--jobs", "2"],
        ),
        (
            "/v1/search?top=3&prune=true&refine-sim=2",
            SMALL,
            &small,
            &["search", "--json", "--top", "3", "--prune", "--refine-sim", "2"],
        ),
        (
            "/v1/recommend?refine-sim=2",
            SMALL,
            &small,
            &["recommend", "--json", "--refine-sim", "2"],
        ),
        ("/v1/sweep?jobs=2", SMALL, &small, &["sweep", "--jobs", "2"]),
        (
            "/v1/sweep?jobs=2&json=true",
            SMALL,
            &small,
            &["sweep", "--jobs", "2", "--json"],
        ),
        ("/v1/resilience", SMALL, &small, &["resilience", "--json"]),
        // The correlated model: one scenario file, one `correlated`
        // artifact section, byte-identical across front-ends.
        ("/v1/resilience", DOMAINS, &domains, &["resilience", "--json"]),
        // Goodput ranking under failure domains, with the domain shape
        // arriving through the flag/parameter layer on both sides.
        (
            "/v1/search?top=4&jobs=2&goodput=1000&domains=2,2&rack-mtbf=500",
            SMALL,
            &small,
            &[
                "search",
                "--json",
                "--top",
                "4",
                "--jobs",
                "2",
                "--goodput",
                "1000",
                "--domains",
                "2,2",
                "--rack-mtbf",
                "500",
            ],
        ),
    ];

    for (target, body, config, cli_args) in cases {
        // Twice: the second pass answers from a warm cache pool and must
        // not differ by a byte.
        let cold = post(addr, target, body);
        let warm = post(addr, target, body);
        assert_eq!(cold, warm, "{target}: warm cache changed the response");

        let mut args: Vec<&str> = cli_args.to_vec();
        let config = config.to_str().unwrap();
        args.extend_from_slice(&["--config", config]);
        let expected = cli(&args);
        assert_eq!(
            cold, expected,
            "{target} diverged from `amped {}`",
            args.join(" ")
        );
    }

    handle.shutdown();
    thread.join().unwrap().expect("clean shutdown");
}

#[test]
fn resolved_scenarios_and_schema_are_byte_identical_across_front_ends() {
    let (addr, handle, thread) = start_server();

    // Pure flags vs pure query parameters: one resolution pipeline, so
    // the provenance-annotated dumps must match byte for byte.
    let flags_dump = cli(&[
        "estimate",
        "--model",
        "gpt2-xl",
        "--accel",
        "h100",
        "--nodes",
        "4",
        "--per-node",
        "4",
        "--tp",
        "2,1",
        "--batch",
        "128",
        "--dump-resolved",
    ]);
    let params_dump = post(
        addr,
        "/v1/estimate?model=gpt2-xl&accel=h100&nodes=4&per-node=4&tp=2,1&batch=128&resolved=true",
        "{}",
    );
    assert_eq!(flags_dump, params_dump, "flags and query parameters resolved differently");

    // All four layers at once: defaults < preset < file/body < flags.
    let small = write_scenario("small-dump.json", SMALL);
    let layered_cli = cli(&[
        "resilience",
        "--preset",
        "dev-small",
        "--config",
        small.to_str().unwrap(),
        "--mtbf",
        "100",
        "--dump-resolved",
    ]);
    let layered_serve = post(addr, "/v1/resilience?preset=dev-small&mtbf=100&resolved=true", SMALL);
    assert_eq!(layered_cli, layered_serve, "layered resolution diverged");
    assert!(layered_cli.contains("\"schema_version\""));
    assert!(layered_cli.contains("\"provenance\""));

    // Every scenario endpoint honors the dump switch, even the
    // text-rendering sweep.
    let sweep_dump = post(addr, "/v1/sweep?resolved=true", SMALL);
    assert_eq!(
        sweep_dump,
        cli(&["sweep", "--config", small.to_str().unwrap(), "--dump-resolved"])
    );

    // The serving endpoint layers its empty-section base identically, so
    // the dump shows the `inference` defaults and flag overrides with the
    // same provenance either way.
    let infer = write_scenario("infer-dump.json", INFER);
    let infer_cli = cli(&[
        "infer",
        "--config",
        infer.to_str().unwrap(),
        "--decode",
        "64",
        "--dump-resolved",
    ]);
    let infer_serve = post(addr, "/v1/infer?decode=64&resolved=true", INFER);
    assert_eq!(infer_cli, infer_serve, "infer resolution diverged");
    assert!(infer_cli.contains("\"inference\""));
    assert!(infer_cli.contains("flags (--decode)"));

    // The self-describing schema is one document served twice, not two
    // documents.
    let (status, serve_schema) = request(addr, "GET", "/v1/schema", "");
    assert_eq!(status, 200);
    assert_eq!(cli(&["schema"]), serve_schema);

    handle.shutdown();
    thread.join().unwrap().expect("clean shutdown");
}

#[test]
fn histogram_tables_render_identically_across_front_ends() {
    let (addr, handle, thread) = start_server();

    // Warm the server with compute traffic so latency histograms exist,
    // then snapshot its run report.
    post(addr, "/v1/search?top=3&jobs=1", SMALL);
    let (status, metrics) = request(addr, "GET", "/v1/metrics", "");
    assert_eq!(status, 200);
    let serve_doc: serde_json::Value = serde_json::from_str(&metrics).expect("metrics JSON");

    // CLI side: the same run-report shape through `--metrics-out`.
    let small = write_scenario("hist-small.json", SMALL);
    let out = std::env::temp_dir()
        .join("amped-serve-differential")
        .join("hist-metrics.json");
    cli(&[
        "search",
        "--json",
        "--top",
        "3",
        "--jobs",
        "1",
        "--config",
        small.to_str().unwrap(),
        "--metrics-out",
        out.to_str().unwrap(),
    ]);
    let cli_doc: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&out).unwrap()).expect("run report JSON");

    // One shared renderer, one contract, both front-ends: rendering the
    // whole run report equals rendering its bare `histograms` section,
    // byte for byte.
    for doc in [&serve_doc, &cli_doc] {
        let whole = amped_report::histogram_table(doc).to_ascii();
        let section = amped_report::histogram_table(&doc["histograms"]).to_ascii();
        assert_eq!(whole, section, "wrapper changed the rendered bytes");
    }

    // The serve report carries real per-endpoint latency rows.
    let serve_table = amped_report::histogram_table(&serve_doc);
    assert!(
        serve_table.to_csv().contains("serve.http.search.us"),
        "{}",
        serve_table.to_csv()
    );

    // Identical summary content renders identical bytes no matter which
    // front end produced the surrounding document: graft the serve
    // section into a CLI-shaped wrapper and compare.
    let grafted = serde_json::json!({
        "command": "search",
        "histograms": serve_doc["histograms"].clone(),
    });
    assert_eq!(
        amped_report::histogram_table(&grafted).to_ascii(),
        serve_table.to_ascii()
    );

    handle.shutdown();
    thread.join().unwrap().expect("clean shutdown");
}

#[test]
fn validation_errors_are_byte_identical_across_front_ends() {
    let (addr, handle, thread) = start_server();
    let bad_field = r#"{ "system": { "nodez": 4 } }"#;
    let bad_file = write_scenario("bad-field.json", bad_field);
    let bad_file = bad_file.to_str().unwrap();

    let cases: &[(&[&str], &str, &str)] = &[
        // Unknown field in the file/body layer, attributed to its source.
        (&["estimate", "--config", bad_file], "/v1/estimate", bad_field),
        // Malformed value in the flag/parameter layer, naming the flag.
        (&["estimate", "--nodes", "lots"], "/v1/estimate?nodes=lots", "{}"),
        // Unknown scenario preset.
        (&["search", "--preset", "nope"], "/v1/search?preset=nope", "{}"),
        // Unknown model preset, caught at resolve time with provenance.
        (&["estimate", "--model", "nosuch"], "/v1/estimate?model=nosuch", "{}"),
        // Unknown search workload, rejected before any resolution.
        (
            &["search", "--workload", "batch"],
            "/v1/search?workload=batch",
            "{}",
        ),
        // A serving request shape the inference model refuses.
        (
            &["infer", "--prompt", "0"],
            "/v1/infer?prompt=0",
            "{}",
        ),
    ];
    for (cli_args, target, body) in cases {
        let expected = cli_failure(cli_args);
        let (status, payload) = request(addr, "POST", target, body);
        assert_eq!(status, 400, "{target}: expected 400, got {status}:\n{payload}");
        assert_eq!(
            error_message(&payload),
            expected,
            "{target} error diverged from `amped {}`",
            cli_args.join(" ")
        );
    }

    handle.shutdown();
    thread.join().unwrap().expect("clean shutdown");
}
